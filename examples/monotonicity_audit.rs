//! Monotonicity audit of a trained tabular model: for every feature the
//! ground truth says is monotone, certify (or fail to certify) that the
//! trained network's score respects that direction around test inputs.
//!
//! This is the property family where difference tracking is *essential*:
//! the non-relational baselines bound the two executions independently and
//! essentially never certify.
//!
//! Run with: `cargo run --release --example monotonicity_audit`

use raven::{verify_monotonicity, Method, MonotonicityProblem, RavenConfig};
use raven_nn::data::synth_credit;
use raven_nn::train::{train_classifier, TrainConfig};
use raven_nn::{ActKind, NetworkBuilder};

fn main() {
    let (ds, spec) = synth_credit(300, 0.05, 44);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(ds.input_dim)
        .dense(12, 141)
        .activation(ActKind::Sigmoid)
        .dense(12, 142)
        .activation(ActKind::Sigmoid)
        .dense(2, 143)
        .build();
    let report = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 60,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 9,
            adversarial: None,
        },
    );
    println!(
        "credit model trained: accuracy {:.1}% | ground-truth monotone features: \
         increasing {:?}, decreasing {:?}",
        100.0 * report.final_accuracy,
        spec.increasing,
        spec.decreasing,
    );

    let plan = net.to_plan();
    let audit_points = 8;
    println!(
        "\ncertifying score monotonicity over {audit_points} test points (tau = 0.1, eps = 0.01):"
    );
    println!(
        "{:>8} {:>4}  {:>8} {:>8} {:>8} {:>8} {:>8}",
        "feature", "dir", "box", "zonotope", "deeppoly", "io-lp", "raven"
    );
    let features: Vec<(usize, bool)> = spec
        .increasing
        .iter()
        .map(|&f| (f, true))
        .chain(spec.decreasing.iter().map(|&f| (f, false)))
        .collect();
    for (feature, increasing) in features {
        let mut certified = [0usize; 5];
        for x in test.inputs.iter().take(audit_points) {
            let problem = MonotonicityProblem {
                plan: plan.clone(),
                center: x.clone(),
                eps: 0.01,
                feature,
                tau: 0.1,
                // Score: logit(class 1) − logit(class 0).
                output_weights: vec![-1.0, 1.0],
                increasing,
            };
            for (slot, method) in Method::all().into_iter().enumerate() {
                let res = verify_monotonicity(&problem, method, &RavenConfig::default());
                if res.verified {
                    certified[slot] += 1;
                }
            }
        }
        let pct = |c: usize| format!("{:.0}%", 100.0 * c as f64 / audit_points as f64);
        println!(
            "{:>8} {:>4}  {:>8} {:>8} {:>8} {:>8} {:>8}",
            format!("x{feature}"),
            if increasing { "inc" } else { "dec" },
            pct(certified[0]),
            pct(certified[1]),
            pct(certified[2]),
            pct(certified[3]),
            pct(certified[4]),
        );
    }
    println!(
        "\nA trained network need not be globally monotone — the audit reports where \
         monotonicity is *provable*; RaVeN's difference tracking is what makes any \
         certification possible."
    );
}
