//! Quickstart: certify robustness against a universal adversarial
//! perturbation (UAP) in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use raven::{verify_uap, Method, RavenConfig, UapProblem};
use raven_nn::{ActKind, NetworkBuilder};

fn main() {
    // A small, hand-seeded ReLU network: 4 inputs, 3 classes.
    let net = NetworkBuilder::new(4)
        .dense(8, 1)
        .activation(ActKind::Relu)
        .dense(8, 2)
        .activation(ActKind::Relu)
        .dense(3, 3)
        .build();

    // Three inputs, labelled by the network itself (so the batch is
    // correctly classified by construction).
    let inputs = vec![
        vec![0.2, 0.8, 0.5, 0.4],
        vec![0.7, 0.3, 0.6, 0.5],
        vec![0.4, 0.4, 0.9, 0.1],
    ];
    let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
    println!("clean predictions: {labels:?}");

    // Can one shared ℓ∞ perturbation of radius ε flip them?
    for eps in [0.01, 0.03, 0.05, 0.1] {
        let problem = UapProblem {
            plan: net.to_plan(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let result = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        println!(
            "eps = {eps:>4}: certified worst-case accuracy ≥ {:>5.1}% \
             (hamming ≤ {:.2}, {} of {} robust individually, {:.0} ms)",
            100.0 * result.worst_case_accuracy,
            result.worst_case_hamming,
            result.individually_verified,
            problem.k(),
            result.solve_millis,
        );
    }
}
