//! End-to-end UAP certification study: train a classifier on the synthetic
//! digit task, then compare all four verification methods across
//! perturbation radii and sandwich the certificates against an empirical
//! UAP attack.
//!
//! Run with: `cargo run --release --example uap_certification`

use raven::{verify_uap, Method, RavenConfig, UapProblem};
use raven_nn::attack;
use raven_nn::data::synth_digits;
use raven_nn::train::{train_classifier, TrainConfig};
use raven_nn::{ActKind, NetworkBuilder};

fn main() {
    // 1. Data + training (everything deterministic).
    let ds = synth_digits(6, 4, 280, 0.15, 42);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(train.input_dim)
        .dense(24, 101)
        .activation(ActKind::Relu)
        .dense(24, 102)
        .activation(ActKind::Relu)
        .dense(train.num_classes, 103)
        .build();
    let report = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 35,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 7,
            adversarial: None,
        },
    );
    println!(
        "trained 36-24-24-4 ReLU net: train accuracy {:.1}%, test accuracy {:.1}%",
        100.0 * report.final_accuracy,
        100.0 * test.accuracy_of(|x| net.classify(x)),
    );

    // 2. A batch of k correctly classified test inputs.
    let k = 3;
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (x, &y) in test.inputs.iter().zip(&test.labels) {
        if net.classify(x) == y {
            inputs.push(x.clone());
            labels.push(y);
            if inputs.len() == k {
                break;
            }
        }
    }
    let plan = net.to_plan();

    // 3. Certified worst-case accuracy per method and ε, plus the attack.
    println!(
        "\n{:>5}  {:>6} {:>9} {:>9} {:>6} {:>6}  {:>7}",
        "eps", "box", "zonotope", "deeppoly", "io-lp", "raven", "attack"
    );
    for eps in [0.02, 0.04, 0.06, 0.08, 0.10, 0.12] {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let mut cells = Vec::new();
        for method in Method::all() {
            let res = verify_uap(&problem, method, &RavenConfig::default());
            cells.push(res.worst_case_accuracy);
        }
        let atk = attack::uap(&net, &inputs, &labels, eps, 25, eps / 5.0);
        println!(
            "{eps:>5.2}  {:>5.1}% {:>8.1}% {:>8.1}% {:>5.1}% {:>5.1}%  {:>6.1}%",
            100.0 * cells[0],
            100.0 * cells[1],
            100.0 * cells[2],
            100.0 * cells[3],
            100.0 * cells[4],
            100.0 * atk.accuracy,
        );
        assert!(
            cells[4] <= atk.accuracy + 1e-9,
            "certificate must lower-bound the attack"
        );
    }
    println!(
        "\nEvery certified value is a sound lower bound; the attack column is an upper bound."
    );
}
