//! Worst-case hamming distance certification for label strings.
//!
//! A "string" is a sequence of k digit images classified one by one; the
//! predicted string is the sequence of labels. An adversary applying one
//! shared perturbation to every digit can corrupt at most
//! `worst_case_hamming` positions — exactly the relational property the
//! paper certifies for sequence pipelines (OCR, plate readers, …).
//!
//! Run with: `cargo run --release --example hamming_strings`

use raven::{verify_uap, Method, RavenConfig, UapProblem};
use raven_nn::data::synth_digits;
use raven_nn::train::{train_classifier, TrainConfig};
use raven_nn::{ActKind, NetworkBuilder};

fn main() {
    let ds = synth_digits(6, 4, 280, 0.12, 77);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(train.input_dim)
        .dense(20, 51)
        .activation(ActKind::Relu)
        .dense(20, 52)
        .activation(ActKind::Relu)
        .dense(train.num_classes, 53)
        .build();
    train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 35,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 5,
            adversarial: None,
        },
    );

    // Assemble a 5-character "string" of correctly classified digits.
    let string_len = 5;
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (x, &y) in test.inputs.iter().zip(&test.labels) {
        if net.classify(x) == y {
            inputs.push(x.clone());
            labels.push(y);
            if inputs.len() == string_len {
                break;
            }
        }
    }
    let rendered: String = labels.iter().map(|l| char::from(b'0' + *l as u8)).collect();
    println!("clean predicted string: \"{rendered}\" (length {string_len})");

    let plan = net.to_plan();
    println!(
        "\n{:>5}  {:>14} {:>14}",
        "eps", "deeppoly bound", "raven bound"
    );
    for eps in [0.02, 0.05, 0.08, 0.11] {
        let problem = UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        };
        let dp = verify_uap(
            &problem,
            Method::DeepPolyIndividual,
            &RavenConfig::default(),
        );
        let rv = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        println!(
            "{eps:>5.2}  {:>14.2} {:>14.2}",
            dp.worst_case_hamming, rv.worst_case_hamming
        );
        assert!(rv.worst_case_hamming <= dp.worst_case_hamming + 1e-9);
    }
    println!(
        "\nBounds are certified maxima on the number of corrupted string positions \
         under one shared perturbation; lower is tighter."
    );
}
