//! Custom input-relational properties through the generic
//! [`raven::relational`] API.
//!
//! The built-in verifiers (UAP, hamming, monotonicity) are instances of one
//! pattern: several executions whose inputs are affine functions of shared
//! scenario variables, plus a linear query over their outputs. This example
//! certifies two properties that have no dedicated verifier:
//!
//! 1. **Output stability under shared perturbation** — how far apart can the
//!    logits of two fixed inputs drift when both receive the same
//!    perturbation?
//! 2. **Symmetry sensitivity** — how much can the network's score differ
//!    between an input and its horizontally mirrored version under a shared
//!    perturbation of both?
//!
//! Run with: `cargo run --release --example custom_relational`

use raven::relational::{solve, InputCoord, OutputQuery, RelationalProblem};
use raven::{PairStrategy, RavenConfig};
use raven_interval::Interval;
use raven_lp::Direction;
use raven_nn::{ActKind, NetworkBuilder};

fn main() {
    let side = 4;
    let dim = side * side;
    let net = NetworkBuilder::new(dim)
        .dense(12, 31)
        .activation(ActKind::Relu)
        .dense(8, 32)
        .activation(ActKind::Relu)
        .dense(3, 33)
        .build();
    let plan = net.to_plan();

    // Property 1: shared-perturbation output drift between two inputs.
    let za: Vec<f64> = (0..dim).map(|i| 0.45 + 0.02 * ((i % 5) as f64)).collect();
    let zb: Vec<f64> = (0..dim).map(|i| 0.55 - 0.015 * ((i % 7) as f64)).collect();
    println!("property 1: certified drift |out_A[c] − out_B[c]| under one shared eps-perturbation");
    for eps in [0.02, 0.05] {
        let mut problem = RelationalProblem::new(plan.clone(), vec![Interval::symmetric(eps); dim]);
        let a = problem.add_perturbed_execution(&za);
        let b = problem.add_perturbed_execution(&zb);
        for class in 0..3 {
            let query = OutputQuery::output_difference(a, b, class);
            let config = RavenConfig::default();
            let hi = solve(&problem, &query, Direction::Maximize, &config)
                .expect("lp solves")
                .value;
            let lo = solve(&problem, &query, Direction::Minimize, &config)
                .expect("lp solves")
                .value;
            println!("  eps {eps:.2}, class {class}: drift in [{lo:+.4}, {hi:+.4}]");
        }
    }

    // Property 2: mirror symmetry. Execution B sees the horizontally
    // flipped image; both share the same perturbation applied *before*
    // flipping (scenario variables index the unflipped pixels).
    println!("\nproperty 2: certified score gap between an image and its mirror");
    let eps = 0.03;
    let mut problem = RelationalProblem::new(plan.clone(), vec![Interval::symmetric(eps); dim]);
    let coords_a: Vec<InputCoord> = za
        .iter()
        .enumerate()
        .map(|(j, &z)| InputCoord::shifted(z, j))
        .collect();
    let coords_b: Vec<InputCoord> = (0..dim)
        .map(|j| {
            let (r, c) = (j / side, j % side);
            let src = r * side + (side - 1 - c);
            InputCoord::shifted(za[src], src)
        })
        .collect();
    let a = problem.add_execution(coords_a);
    let b = problem.add_execution(coords_b);
    let query = OutputQuery::new()
        .term(1.0, a, 0)
        .term(-1.0, a, 1)
        .term(-1.0, b, 0)
        .term(1.0, b, 1);
    for (label, pairs) in [
        ("without difference tracking", PairStrategy::None),
        ("with difference tracking", PairStrategy::Consecutive),
    ] {
        let config = RavenConfig {
            pairs,
            ..RavenConfig::default()
        };
        let hi = solve(&problem, &query, Direction::Maximize, &config)
            .expect("lp solves")
            .value;
        let lo = solve(&problem, &query, Direction::Minimize, &config)
            .expect("lp solves")
            .value;
        println!("  {label:<28}: score gap in [{lo:+.4}, {hi:+.4}]");
    }
    println!("\nBoth properties were expressed in a few lines — no verifier changes needed.");
}
