#!/usr/bin/env bash
# End-to-end certificate round trip against a live server: submit a job
# with certificate=1, poll it to completion, extract the certificate from
# the envelope, and replay it with the standalone `raven_check` binary.
# Fails when the job errors, no certificate comes back, or the exact
# checker rejects the replay.
# Uses the release binaries (build with `cargo build --release` first).
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN=${SERVE_BIN:-./target/release/raven_serve}
CHECK_BIN=${CHECK_BIN:-./target/release/raven_check}
ADDR=${ADDR:-127.0.0.1:8474}

for bin in "$SERVE_BIN" "$CHECK_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "check_certificate: $bin not built (run cargo build --release)" >&2
    exit 1
  fi
done

"$SERVE_BIN" --models-dir models --addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "http://$ADDR/v1/healthz" > /dev/null 2>&1; then break; fi
  sleep 0.2
done

# Async submission with certificate=1 over the committed demo batch.
body=$(awk '
  /^#/ || NF == 0 { next }
  {
    labels = labels (labels ? "," : "") $1
    row = ""
    for (i = 2; i <= NF; i++) row = row (row ? "," : "") $i
    inputs = inputs (inputs ? "," : "") "[" row "]"
  }
  END {
    printf "{\"property\":\"uap\",\"model\":\"demo\",\"eps\":0.01,\"method\":\"raven\",\"certificate\":1,\"inputs\":[%s],\"labels\":[%s]}", inputs, labels
  }' models/demo_batch.txt)
submit=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$body")
echo "submit: $submit"
job_id=$(echo "$submit" | sed -n 's/.*"job_id":\([0-9][0-9]*\).*/\1/p')
[ -n "$job_id" ] || { echo "check_certificate: no job_id in ack" >&2; exit 1; }

envelope=""
for _ in $(seq 1 100); do
  status=$(curl -sf "http://$ADDR/v1/jobs/$job_id")
  case "$status" in
    *'"status":"done"'*) envelope=$status; break ;;
    *'"status":"failed"'*|*'"status":"quarantined"'*)
      echo "check_certificate: job failed: $status" >&2; exit 1 ;;
  esac
  sleep 0.2
done
[ -n "$envelope" ] || { echo "check_certificate: job never finished" >&2; exit 1; }

case "$envelope" in
  *'"certificate":null'*)
    echo "check_certificate: run produced no certificate" >&2; exit 1 ;;
  *'"certificate":'*) ;;
  *)
    echo "check_certificate: envelope carries no certificate field" >&2; exit 1 ;;
esac

# The verdict must be byte-identical with and without certification: the
# certificate rides next to `result`, never inside it.
plain_body=${body/'"certificate":1,'/}
plain=$(curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$plain_body")
# Extract the innermost verdict object: job-status responses wrap the
# verify envelope in their own "result" field, so descend until the node
# has no further "result" child. The sed fallback relies on greedy `.*`
# matching the last "result": occurrence, which is the same inner object.
result_of() { python3 - "$1" <<'EOF' 2>/dev/null || echo "$1" | sed -n 's/.*"result":\({[^}]*}\).*/\1/p'
import json, sys
node = json.loads(sys.argv[1])
while isinstance(node.get("result"), dict):
    node = node["result"]
print(json.dumps(node, separators=(",", ":")))
EOF
}
r1=$(result_of "$envelope")
r2=$(result_of "$plain")
if [ -z "$r1" ] || [ "$r1" != "$r2" ]; then
  echo "check_certificate: verdict bytes differ with certificate=1" >&2
  echo "with   : $r1" >&2
  echo "without: $r2" >&2
  exit 1
fi

# The standalone checker unwraps the envelope itself and exits non-zero on
# rejection (1) or malformed input (2).
report=$(echo "$envelope" | "$CHECK_BIN")
echo "raven_check: $report"
case "$report" in
  *'"ok":true'*) ;;
  *) echo "check_certificate: checker did not accept" >&2; exit 1 ;;
esac

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "check_certificate: certificate replayed and accepted"
