#!/usr/bin/env bash
# Starts raven-serve, runs one verification, scrapes GET /v1/metrics, and
# validates the Prometheus text exposition:
#   * every sample line is `name[{labels}] value` in the raven_ namespace;
#   * every family has # HELP and # TYPE comments;
#   * at least 12 distinct families, spanning the solver (raven_lp_*),
#     the verifier core (raven_core_*), and the service (raven_serve_*).
# Uses the release binary (build with `cargo build --release` first).
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN=${SERVE_BIN:-./target/release/raven_serve}
ADDR=${ADDR:-127.0.0.1:8473}

if [ ! -x "$SERVE_BIN" ]; then
  echo "check_metrics: $SERVE_BIN not built (run cargo build --release)" >&2
  exit 1
fi

"$SERVE_BIN" --models-dir models --addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if curl -sf "http://$ADDR/v1/healthz" > /dev/null 2>&1; then break; fi
  sleep 0.2
done

# One real verification so the counters are live, not all-zero.
body=$(awk '
  /^#/ || NF == 0 { next }
  {
    labels = labels (labels ? "," : "") $1
    row = ""
    for (i = 2; i <= NF; i++) row = row (row ? "," : "") $i
    inputs = inputs (inputs ? "," : "") "[" row "]"
  }
  END {
    printf "{\"model\":\"demo\",\"eps\":0.01,\"method\":\"raven\",\"inputs\":[%s],\"labels\":[%s]}", inputs, labels
  }' models/demo_batch.txt)
curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$body" > /dev/null

metrics=$(curl -sf "http://$ADDR/v1/metrics")

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT

echo "$metrics" | awk '
  /^# HELP / { helped[$3] = 1; next }
  /^# TYPE / {
    typed[$3] = 1
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram")
      { print "bad TYPE: " $0; bad = 1 }
    next
  }
  /^$/ { next }
  {
    # Sample line: name[{labels}] value
    if ($0 !~ /^raven_[a-z0-9_]+(\{[^}]*\})? (\+Inf|-?[0-9.eE+-]+)$/)
      { print "malformed sample: " $0; bad = 1; next }
    name = $1
    sub(/\{.*/, "", name)
    family = name
    sub(/_(bucket|sum|count)$/, "", family)
    if (!(name in helped) && !(family in helped))
      { print "sample without HELP: " name; bad = 1 }
    if (!(name in typed) && !(family in typed))
      { print "sample without TYPE: " name; bad = 1 }
    families[family] = 1
  }
  END {
    n = 0
    for (f in families) {
      n++
      if (f ~ /^raven_lp_/) lp = 1
      if (f ~ /^raven_core_/) core = 1
      if (f ~ /^raven_serve_/) serve = 1
    }
    if (n < 12) { print "only " n " metric families (need >= 12)"; bad = 1 }
    if (!lp)    { print "no raven_lp_ metric"; bad = 1 }
    if (!core)  { print "no raven_core_ metric"; bad = 1 }
    if (!serve) { print "no raven_serve_ metric"; bad = 1 }
    if (bad) exit 1
    print "check_metrics: " n " families, exposition format valid"
  }'
