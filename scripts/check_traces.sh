#!/usr/bin/env bash
# Distributed-tracing smoke test: start raven-serve with a fleet listener
# and one raven_worker, send a traced fleet-eligible request with a
# client-supplied traceparent, and require:
#   * the response echoes the traceparent and carries a `trace` block
#     whose trace_id matches the one we sent;
#   * GET /v1/traces lists the trace and GET /v1/traces/{id} exports
#     valid JSONL containing local spans AND remote (worker) spans
#     stitched under the fleet_dispatch span;
#   * the Chrome trace-event export (`?format=chrome`) parses and holds
#     complete ("X") events from both processes.
# Build first: cargo build --release -p raven-serve
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN=${SERVE_BIN:-./target/release/raven_serve}
WORKER_BIN=${WORKER_BIN:-./target/release/raven_worker}
ADDR=${ADDR:-127.0.0.1:8485}
FLEET_ADDR=${FLEET_ADDR:-127.0.0.1:8486}

for bin in "$SERVE_BIN" "$WORKER_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "check_traces: $bin not built (cargo build --release -p raven-serve)" >&2
    exit 1
  fi
done

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/v1/healthz" > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "check_traces: server on $1 never came up" >&2
  return 1
}

body_for() {
  awk -v eps="$1" '
    /^#/ || NF == 0 { next }
    {
      labels = labels (labels ? "," : "") $1
      row = ""
      for (i = 2; i <= NF; i++) row = row (row ? "," : "") $i
      inputs = inputs (inputs ? "," : "") "[" row "]"
    }
    END {
      printf "{\"property\":\"uap\",\"model\":\"demo\",\"eps\":%s,\"method\":\"raven\",\"inputs\":[%s],\"labels\":[%s]}", eps, inputs, labels
    }' models/demo_batch.txt
}

"$SERVE_BIN" --models-dir models --addr "$ADDR" --fleet-addr "$FLEET_ADDR" \
  --trace-slow-ms 250 &
SERVE_PID=$!
PIDS+=("$SERVE_PID")
wait_http "$ADDR"

"$WORKER_BIN" --connect "$FLEET_ADDR" --models-dir models --name smoke-worker &
PIDS+=("$!")

for _ in $(seq 1 50); do
  workers=$(curl -sf "http://$ADDR/v1/healthz" | grep -o '"name":"[^"]*"' | wc -l)
  [ "$workers" -ge 1 ] && break
  sleep 0.2
done
[ "$workers" -ge 1 ] || { echo "check_traces: worker never registered" >&2; exit 1; }
echo "check_traces: worker registered"

TRACE_ID=0af7651916cd43dd8448eb211c80319c
TRACEPARENT="00-$TRACE_ID-b7ad6b7169203331-01"
response=$(curl -sf -D /tmp/check_traces_headers.$$ \
  -H "traceparent: $TRACEPARENT" \
  -X POST "http://$ADDR/v1/verify/uap" -d "$(body_for 0.03)")
grep -qi "traceparent: 00-$TRACE_ID" /tmp/check_traces_headers.$$ \
  || { echo "check_traces: response did not echo the traceparent" >&2; exit 1; }
rm -f /tmp/check_traces_headers.$$
echo "$response" | grep -q "\"trace_id\":\"$TRACE_ID\"" \
  || { echo "check_traces: envelope trace block missing or wrong id: $response" >&2; exit 1; }
echo "check_traces: traced verdict served, traceparent echoed"

curl -sf "http://$ADDR/v1/traces" | grep -q "\"trace_id\":\"$TRACE_ID\"" \
  || { echo "check_traces: /v1/traces does not list the trace" >&2; exit 1; }

curl -sf "http://$ADDR/v1/traces/$TRACE_ID" > /tmp/check_traces_jsonl
curl -sf "http://$ADDR/v1/traces/$TRACE_ID?format=chrome" > /tmp/check_traces_chrome
python3 - "$TRACE_ID" <<'EOF'
import json, sys

trace_id = sys.argv[1]
lines = [json.loads(l) for l in open("/tmp/check_traces_jsonl") if l.strip()]
meta, records = lines[0], lines[1:]
assert meta["type"] == "trace" and meta["trace_id"] == trace_id, meta
assert all(r["trace"] == trace_id for r in records), "untagged record"

spans = {r["id"]: r for r in records if r["type"] == "span"}
local = [r for r in records if not r.get("remote")]
remote = [r for r in records if r.get("remote")]
assert any(r["name"] == "request" for r in local), "no local request root"
dispatch = [r for r in local if r["name"] == "fleet_dispatch"]
assert dispatch, "no fleet_dispatch span"
assert remote, "no remote spans stitched in"
assert all(r["thread"].startswith("smoke-worker/") for r in remote), \
    "remote thread labels must be worker-prefixed"
assert any(r["parent"] == dispatch[0]["id"] for r in remote), \
    "remote roots must hang off the dispatch span"
for r in records:
    assert r["parent"] == 0 or r["parent"] in spans, f"dangling parent: {r}"

events = json.load(open("/tmp/check_traces_chrome"))["traceEvents"]
cats = {e.get("cat") for e in events if e.get("ph") == "X"}
assert "local" in cats and "remote" in cats, f"chrome export categories: {cats}"
print(f"check_traces: {len(local)} local + {len(remote)} remote records, "
      f"{len(events)} chrome events")
EOF
rm -f /tmp/check_traces_jsonl /tmp/check_traces_chrome

trap - EXIT
cleanup
echo "check_traces: one stitched trace across server and worker"
