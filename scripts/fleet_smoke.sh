#!/usr/bin/env bash
# Fleet dispatch smoke test: start raven-serve with a fleet listener, a
# healthy raven_worker, and a Byzantine raven_worker that corrupts every
# certificate it ships. Require:
#   * every verdict served through the fleet is byte-identical to a
#     fleet-less run of the same request;
#   * the Byzantine worker's results are all rejected by certificate
#     replay and the worker ends up quarantined
#     (raven_serve_fleet_quarantined_workers_total >= 1);
#   * at least one job was solved remotely (the healthy worker is used).
#
# With `--shards N` the script runs the shard-chaos variant instead:
# the server splits each UAP job into N sub-boxes, the only worker is
# SIGKILLed while it holds a shard, and the final verdict must still be
# byte-identical to a fleet-less run with
# raven_serve_fleet_shard_fallbacks_total >= 1 (the orphaned shard was
# re-solved locally; the other shards' results were kept).
#
# Byzantine modes are compiled in under the `chaos` feature, so build
# with: cargo build --release -p raven-serve --features raven-serve/chaos
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN=${SERVE_BIN:-./target/release/raven_serve}
WORKER_BIN=${WORKER_BIN:-./target/release/raven_worker}
ADDR=${ADDR:-127.0.0.1:8475}
FLEET_ADDR=${FLEET_ADDR:-127.0.0.1:8476}

SHARDS=0
if [ "${1:-}" = "--shards" ]; then
  SHARDS=${2:?"--shards needs a value"}
fi

for bin in "$SERVE_BIN" "$WORKER_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "fleet_smoke: $bin not built (cargo build --release -p raven-serve --features raven-serve/chaos)" >&2
    exit 1
  fi
done

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

wait_http() {
  for _ in $(seq 1 50); do
    if curl -sf "http://$1/v1/healthz" > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "fleet_smoke: server on $1 never came up" >&2
  return 1
}

# Fleet-eligible requests: method `raven` emits a certificate at every
# tier, which the gate demands from remote workers. Each request uses a
# distinct eps so it is a distinct job — identical bodies would be served
# from the result cache after the first solve and never reach the fleet.
EPS_LIST="0.010 0.012 0.014 0.016 0.018 0.020 0.025 0.030"
body_for() {
  awk -v eps="$1" '
    /^#/ || NF == 0 { next }
    {
      labels = labels (labels ? "," : "") $1
      row = ""
      for (i = 2; i <= NF; i++) row = row (row ? "," : "") $i
      inputs = inputs (inputs ? "," : "") "[" row "]"
    }
    END {
      printf "{\"property\":\"uap\",\"model\":\"demo\",\"eps\":%s,\"method\":\"raven\",\"inputs\":[%s],\"labels\":[%s]}", eps, inputs, labels
    }' models/demo_batch.txt
}

# Job-status responses nest the verify envelope; descend to the innermost
# verdict object so fleet and fleet-less runs compare byte-for-byte.
result_of() { python3 - "$1" <<'EOF' 2>/dev/null || echo "$1" | sed -n 's/.*"result":\({[^}]*}\).*/\1/p'
import json, sys
node = json.loads(sys.argv[1])
while isinstance(node.get("result"), dict):
    node = node["result"]
print(json.dumps(node, separators=(",", ":")))
EOF
}

# --- Reference run: no fleet at all. -----------------------------------
"$SERVE_BIN" --models-dir models --addr "$ADDR" &
SERVE_PID=$!
PIDS+=("$SERVE_PID")
wait_http "$ADDR"
BASELINE_DIR=$(mktemp -d)
for eps in $EPS_LIST; do
  baseline=$(result_of "$(curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$(body_for "$eps")")")
  [ -n "$baseline" ] || { echo "fleet_smoke: empty baseline verdict at eps=$eps" >&2; exit 1; }
  echo "$baseline" > "$BASELINE_DIR/$eps"
done
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "fleet_smoke: baseline verdicts captured"

# --- Shard-chaos run (--shards N): kill the worker mid-shard. ----------
if [ "$SHARDS" -ge 2 ]; then
  # A stalling worker holds its shard until the SIGKILL lands, so the
  # kill is guaranteed to be "mid-shard"; --workers 1 keeps the local
  # pool saturated so shards actually dispatch.
  "$SERVE_BIN" --models-dir models --addr "$ADDR" --fleet-addr "$FLEET_ADDR" \
    --workers 1 --fleet-shards "$SHARDS" --fleet-timeout-ms 5000 &
  SERVE_PID=$!
  PIDS+=("$SERVE_PID")
  wait_http "$ADDR"

  RAVEN_WORKER_CHAOS=stall \
    "$WORKER_BIN" --connect "$FLEET_ADDR" --models-dir models --name victim &
  VICTIM_PID=$!
  PIDS+=("$VICTIM_PID")
  for _ in $(seq 1 50); do
    workers=$(curl -sf "http://$ADDR/v1/healthz" | grep -c '"connected":true' || true)
    [ "$workers" -ge 1 ] && break
    sleep 0.2
  done
  [ "$workers" -ge 1 ] || { echo "fleet_smoke: victim worker never registered" >&2; exit 1; }

  eps=0.010
  VERDICT_FILE=$(mktemp)
  curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$(body_for "$eps")" > "$VERDICT_FILE" &
  CURL_PID=$!
  # Wait until the victim holds a shard, then SIGKILL it mid-shard.
  for _ in $(seq 1 100); do
    dispatched=$(curl -sf "http://$ADDR/v1/metrics" \
      | awk '$1 == "raven_serve_fleet_shard_dispatches_total" { print $2 }')
    [ "${dispatched:-0}" -ge 1 ] && break
    sleep 0.1
  done
  [ "${dispatched:-0}" -ge 1 ] || { echo "fleet_smoke: no shard was ever dispatched" >&2; exit 1; }
  kill -9 "$VICTIM_PID"
  echo "fleet_smoke: victim worker SIGKILLed mid-shard"

  wait "$CURL_PID"
  verdict=$(result_of "$(cat "$VERDICT_FILE")")
  baseline=$(cat "$BASELINE_DIR/$eps")
  if [ "$verdict" != "$baseline" ]; then
    echo "fleet_smoke: sharded verdict diverged from the fleet-less baseline" >&2
    echo "sharded  : $verdict" >&2
    echo "baseline : $baseline" >&2
    exit 1
  fi
  echo "fleet_smoke: sharded verdict byte-identical to baseline"

  metrics=$(curl -sf "http://$ADDR/v1/metrics")
  metric() { echo "$metrics" | awk -v name="$1" '$1 == name { print $2 }'; }
  fallbacks=$(metric raven_serve_fleet_shard_fallbacks_total)
  merges=$(metric raven_serve_fleet_shard_merges_total)
  echo "fleet_smoke: shard_fallbacks=$fallbacks shard_merges=$merges"
  [ "${fallbacks:-0}" -ge 1 ] || { echo "fleet_smoke: orphaned shard never fell back locally" >&2; exit 1; }
  [ "${merges:-0}" -ge 1 ] || { echo "fleet_smoke: job did not complete through the merge" >&2; exit 1; }

  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  trap - EXIT
  cleanup
  echo "fleet_smoke: shard fault contained; verdict bytes unchanged"
  exit 0
fi

# --- Fleet run: one honest worker, one Byzantine worker. ---------------
# Dispatch unconditionally (--fleet-when-saturated 0): this run probes
# the certificate gate, so every query must reach the fleet even though
# the local pool is idle, and both workers must be claimable in parallel
# so the Byzantine one keeps getting jobs until it strikes out.
"$SERVE_BIN" --models-dir models --addr "$ADDR" --fleet-addr "$FLEET_ADDR" \
  --fleet-when-saturated 0 --worker-reject-strikes 2 &
SERVE_PID=$!
PIDS+=("$SERVE_PID")
wait_http "$ADDR"

"$WORKER_BIN" --connect "$FLEET_ADDR" --models-dir models --name honest &
PIDS+=("$!")
RAVEN_WORKER_CHAOS=corrupt-duals \
  "$WORKER_BIN" --connect "$FLEET_ADDR" --models-dir models --name byzantine &
PIDS+=("$!")

for _ in $(seq 1 50); do
  workers=$(curl -sf "http://$ADDR/v1/healthz" | grep -o '"name":"[^"]*"' | wc -l)
  [ "$workers" -ge 2 ] && break
  sleep 0.2
done
[ "$workers" -ge 2 ] || { echo "fleet_smoke: workers never registered" >&2; exit 1; }
echo "fleet_smoke: both workers registered"

# Enough distinct jobs that dispatch hits the Byzantine worker until it
# strikes out; every served verdict must match its baseline bytes.
for eps in $EPS_LIST; do
  verdict=$(result_of "$(curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$(body_for "$eps")")")
  baseline=$(cat "$BASELINE_DIR/$eps")
  if [ "$verdict" != "$baseline" ]; then
    echo "fleet_smoke: verdict at eps=$eps diverged from the fleet-less baseline" >&2
    echo "fleet    : $verdict" >&2
    echo "baseline : $baseline" >&2
    exit 1
  fi
done
echo "fleet_smoke: 8/8 fleet verdicts byte-identical to baseline"

metrics=$(curl -sf "http://$ADDR/v1/metrics")
metric() { echo "$metrics" | awk -v name="$1" '$1 == name { print $2 }'; }
quarantined=$(metric raven_serve_fleet_quarantined_workers_total)
rejected=$(metric raven_serve_fleet_rejected_total)
remote=$(metric raven_serve_fleet_remote_solves_total)
echo "fleet_smoke: quarantined=$quarantined rejected=$rejected remote_solves=$remote"
[ "${quarantined:-0}" -ge 1 ] || { echo "fleet_smoke: Byzantine worker never quarantined" >&2; exit 1; }
[ "${rejected:-0}" -ge 1 ] || { echo "fleet_smoke: no certificate rejections recorded" >&2; exit 1; }
[ "${remote:-0}" -ge 1 ] || { echo "fleet_smoke: no job was solved remotely" >&2; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
cleanup
echo "fleet_smoke: Byzantine worker contained; verdict bytes unchanged"
