#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
echo "tier-1: all gates passed"
