#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md): everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace: the root package's deps don't cover member binaries
# (raven_cli, raven_serve), and check_metrics.sh below needs the latter.
cargo build --release --workspace
cargo test -q
# The explicit chaos feature must keep the fault-injection suite green
# even where debug_assertions are off (release-profile test runs).
cargo test -p raven-serve --features chaos -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
scripts/check_metrics.sh
# Solver-work regression gate: rerun the fixed obs workload and fail on a
# >20% total-pivot regression vs the committed baseline. The committed
# BENCH_obs.json is only refreshed deliberately (run obs with --out).
cargo run -p raven-bench --release --bin obs -- --out /tmp/raven_bench_obs.json \
  --check BENCH_obs.json
echo "tier-1: all gates passed"
