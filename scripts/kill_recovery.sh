#!/usr/bin/env bash
# Kill-recovery smoke test: a real raven-serve process with a write-ahead
# journal, SIGKILLed mid-flight and restarted.
#
# Asserts the durability contract end to end:
#   * a completed verdict from before the crash is served from the
#     restored cache after restart ("cached":true, no re-solve);
#   * a job that was mid-flight at the crash is re-enqueued and completes;
#   * the restarted process reports the crash (journal_clean_shutdown 0)
#     and the recovery (recovered_jobs_total >= 1) on /v1/metrics;
#   * a SIGTERM drain writes the clean-shutdown marker the *next* boot
#     reports as journal_clean_shutdown 1.
#
# Uses the release binary (build with `cargo build --release` first).
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BIN=${SERVE_BIN:-./target/release/raven_serve}
ADDR=${ADDR:-127.0.0.1:8474}

if [ ! -x "$SERVE_BIN" ]; then
  echo "kill_recovery: $SERVE_BIN not built (run cargo build --release)" >&2
  exit 1
fi

JOURNAL=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$JOURNAL"
}
trap cleanup EXIT

start_server() {
  "$SERVE_BIN" --models-dir models --addr "$ADDR" --workers 1 \
    --journal-dir "$JOURNAL" &
  SERVE_PID=$!
  for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/v1/healthz" > /dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "kill_recovery: server did not come up on $ADDR" >&2
  exit 1
}

metric() {
  curl -sf "http://$ADDR/v1/metrics" | awk -v name="$1" '$1 == name { print $2 }'
}

# Request bodies from the committed demo batch.
base_body=$(awk '
  /^#/ || NF == 0 { next }
  {
    labels = labels (labels ? "," : "") $1
    row = ""
    for (i = 2; i <= NF; i++) row = row (row ? "," : "") $i
    inputs = inputs (inputs ? "," : "") "[" row "]"
  }
  END {
    printf "\"model\":\"demo\",\"eps\":0.01,\"inputs\":[%s],\"labels\":[%s]", inputs, labels
  }' models/demo_batch.txt)
fast_body="{\"method\":\"deeppoly\",$base_body}"
slow_job="{\"property\":\"uap\",\"method\":\"box\",\"delay_millis\":8000,$base_body}"

start_server

# A completed, cacheable verdict before the crash...
before=$(curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$fast_body")
echo "$before" | grep -q '"cached":false'

# ...and a slow job that is mid-flight when the crash hits.
submitted=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$slow_job")
job_id=$(echo "$submitted" | sed -n 's/.*"job_id":\([0-9]*\).*/\1/p')
[ -n "$job_id" ] || { echo "kill_recovery: no job_id in $submitted" >&2; exit 1; }
for _ in $(seq 1 100); do
  status=$(curl -sf "http://$ADDR/v1/jobs/$job_id" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')
  [ "$status" = "running" ] && break
  sleep 0.1
done
[ "$status" = "running" ] || { echo "kill_recovery: job never ran ($status)" >&2; exit 1; }

echo "kill_recovery: SIGKILL with job $job_id running"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

start_server
echo "kill_recovery: restarted"

# The boot is flagged as crash recovery.
[ "$(metric raven_serve_journal_clean_shutdown)" = "0" ]
recovered=$(metric raven_serve_recovered_jobs_total)
awk -v n="$recovered" 'BEGIN { exit !(n >= 1) }'

# The pre-crash verdict is served from the restored cache.
after=$(curl -sf -X POST "http://$ADDR/v1/verify/uap" -d "$fast_body")
echo "$after" | grep -q '"cached":true'

# The interrupted job was re-enqueued under its id and completes.
deadline=$(( $(date +%s) + 300 ))
while :; do
  status=$(curl -sf "http://$ADDR/v1/jobs/$job_id" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')
  [ "$status" = "done" ] && break
  if [ "$status" = "failed" ] || [ "$(date +%s)" -ge "$deadline" ]; then
    echo "kill_recovery: recovered job $job_id stuck in '$status'" >&2
    exit 1
  fi
  sleep 0.5
done
echo "kill_recovery: job $job_id recovered and completed"

# SIGTERM drain writes the marker; the next boot reports a clean shutdown.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
start_server
[ "$(metric raven_serve_journal_clean_shutdown)" = "1" ]
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "kill_recovery: all durability checks passed"
