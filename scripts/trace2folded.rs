//! JSONL span trace → folded stacks, for flamegraphs.
//!
//! Converts a trace produced by `raven_cli --trace-out trace.jsonl` into
//! the "folded" format consumed by flamegraph.pl / inferno:
//!
//! ```text
//! thread;outer;inner 1234
//! ```
//!
//! one line per unique stack, value = *self* microseconds (span duration
//! minus the duration of its direct children), aggregated across
//! occurrences. Event records (`"type":"event"`) are ignored.
//!
//! Span lines may carry distributed-trace context: a `"trace":"<32 hex>"`
//! trace id (present both in the process sink when a request context is
//! installed and in `GET /v1/traces/{id}` JSONL exports) and a
//! `"remote":true` marker on spans stitched in from fleet workers (their
//! thread labels are already `worker/thread`-prefixed). `--trace <id>`
//! folds only the spans of one request.
//!
//! Single file, std only — compile and run with:
//!
//! ```text
//! rustc -O scripts/trace2folded.rs -o /tmp/trace2folded
//! /tmp/trace2folded trace.jsonl > trace.folded
//! /tmp/trace2folded --trace 0123…cdef trace.jsonl > one-request.folded
//! flamegraph.pl trace.folded > trace.svg
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

struct Span {
    name: String,
    parent: u64,
    thread: String,
    dur_us: u64,
    child_us: u64,
}

/// Lowercases and strips leading zeros so `--trace 0xABC`, `abc`, and the
/// 32-digit padded form all name the same trace.
fn normalize_trace_id(id: &str) -> String {
    let id = id.strip_prefix("0x").unwrap_or(id).to_ascii_lowercase();
    let trimmed = id.trim_start_matches('0');
    if trimmed.is_empty() { "0".to_string() } else { trimmed.to_string() }
}

/// Extracts the raw value after `"key":` — either a JSON string (returned
/// unescaped) or the bare token up to the next `,` or `}`. The sink writes
/// flat one-line objects, so no nesting has to be handled.
fn field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let mut chars = rest.chars();
    if chars.next()? == '"' {
        let mut out = String::new();
        let mut escaped = false;
        for c in chars {
            match (escaped, c) {
                (true, 'n') => out.push('\n'),
                (true, 't') => out.push('\t'),
                (true, c) => out.push(c),
                (false, '\\') => {
                    escaped = true;
                    continue;
                }
                (false, '"') => return Some(out),
                (false, c) => out.push(c),
            }
            escaped = false;
        }
        None // unterminated string: malformed line
    } else {
        Some(
            rest.chars()
                .take_while(|c| !matches!(c, ',' | '}'))
                .collect(),
        )
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --trace <id>: fold only span lines tagged with this trace id
    // (leading zeros optional — ids compare normalized).
    let mut want_trace: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        if pos + 1 >= args.len() {
            eprintln!("trace2folded: --trace needs a value");
            std::process::exit(1);
        }
        want_trace = Some(normalize_trace_id(&args[pos + 1]));
        args.drain(pos..=pos + 1);
    }
    let reader: Box<dyn Read> = match args.first().map(String::as_str) {
        None | Some("-") => Box::new(std::io::stdin()),
        Some("--help" | "-h") => {
            eprintln!("usage: trace2folded [--trace TRACE_ID] [trace.jsonl] > trace.folded");
            return;
        }
        Some(path) => Box::new(std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("trace2folded: cannot open {path}: {e}");
            std::process::exit(1);
        })),
    };

    // Pass 1: collect spans by id (children are emitted before parents —
    // spans are written on drop — so resolution must wait for the full file).
    let mut spans: HashMap<u64, Span> = HashMap::new();
    let mut skipped = 0usize;
    for line in BufReader::new(reader).lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if field(&line, "type").as_deref() != Some("span") {
            continue;
        }
        if let Some(want) = &want_trace {
            match field(&line, "trace") {
                Some(id) if normalize_trace_id(&id) == *want => {}
                _ => continue,
            }
        }
        let parsed = (|| {
            let id: u64 = field(&line, "id")?.parse().ok()?;
            Some((
                id,
                Span {
                    name: field(&line, "name")?,
                    parent: field(&line, "parent")?.parse().ok()?,
                    thread: field(&line, "thread")?,
                    dur_us: field(&line, "dur_us")?.parse().ok()?,
                    child_us: 0,
                },
            ))
        })();
        match parsed {
            Some((id, s)) => {
                spans.insert(id, s);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("trace2folded: skipped {skipped} malformed span line(s)");
    }

    // Pass 2: charge every span's duration to its parent so self time can
    // be computed, then fold each span into its ancestor stack.
    let charges: Vec<(u64, u64)> = spans.iter().map(|(_, s)| (s.parent, s.dur_us)).collect();
    for (parent, dur) in charges {
        if let Some(p) = spans.get_mut(&parent) {
            p.child_us = p.child_us.saturating_add(dur);
        }
    }

    let mut folded: HashMap<String, u64> = HashMap::new();
    for span in spans.values() {
        // Clock skew between parent and child reads can make the children
        // sum slightly exceed the parent; saturate rather than underflow.
        let self_us = span.dur_us.saturating_sub(span.child_us);
        let mut frames = vec![span.name.as_str()];
        let mut cursor = span.parent;
        while cursor != 0 {
            match spans.get(&cursor) {
                Some(p) => {
                    frames.push(p.name.as_str());
                    cursor = p.parent;
                }
                None => {
                    frames.push("[orphan]");
                    break;
                }
            }
        }
        frames.push(span.thread.as_str());
        frames.reverse();
        *folded.entry(frames.join(";")).or_insert(0) += self_us;
    }

    // Deterministic output: sort stacks lexicographically.
    let mut lines: Vec<(String, u64)> = folded.into_iter().collect();
    lines.sort();
    for (stack, us) in lines {
        println!("{stack} {us}");
    }
}
