//! Certificate types and their JSON wire format.
//!
//! A certificate is *self-contained*: it repeats the LP (bounds, rows,
//! objective) the untrusted solver claims to have solved, so the checker
//! needs no access to the original model or encoder. Whether the encoded LP
//! faithfully represents the network property remains trusted — the
//! certificate discharges the *solver*, not the encoder (see
//! ARCHITECTURE.md §10 for the exact trust boundary).
//!
//! All numbers are `f64`s serialized as plain JSON numbers; `raven-json`
//! prints the shortest round-tripping decimal, so every value crosses the
//! wire bit-exactly. Infinities (open variable bounds, branch fixes, the
//! claimed bound of an infeasible problem) are the strings `"inf"` /
//! `"-inf"`, since JSON has no non-finite numbers.

use raven_json::Json;

/// Optimization direction of a certified LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertDirection {
    /// The claimed bound is a lower bound on the minimum.
    Minimize,
    /// The claimed bound is an upper bound on the maximum.
    Maximize,
}

/// Row sense of a certified constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertSense {
    /// `Σ coeffs ≤ rhs`.
    Le,
    /// `Σ coeffs ≥ rhs`.
    Ge,
    /// `Σ coeffs = rhs`.
    Eq,
}

/// One constraint row: `Σ_j coeffs[j] · x_j (sense) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRow {
    /// Row sense.
    pub sense: CertSense,
    /// Right-hand side.
    pub rhs: f64,
    /// Sparse `(variable, coefficient)` terms.
    pub coeffs: Vec<(usize, f64)>,
}

/// The LP the untrusted solver claims to have bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct CertProblem {
    /// Optimization direction.
    pub direction: CertDirection,
    /// Per-variable lower bounds (may be `-inf`).
    pub lower: Vec<f64>,
    /// Per-variable upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    /// Indices of integer-constrained variables.
    pub integer: Vec<usize>,
    /// Constraint rows.
    pub rows: Vec<CertRow>,
    /// Sparse objective `(variable, coefficient)` terms.
    pub objective: Vec<(usize, f64)>,
}

/// Proof attached to one branch-and-bound leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum LeafProof {
    /// Weak-duality bound: sign-valid row duals whose exact dual objective
    /// over the leaf box must not beat the claimed bound.
    Bound {
        /// One dual per row, user orientation.
        duals: Vec<f64>,
    },
    /// Farkas infeasibility ray: sign-valid multipliers whose aggregated
    /// row is unsatisfiable over the leaf box.
    Farkas {
        /// One multiplier per row.
        ray: Vec<f64>,
    },
}

/// One leaf of a certified branch-and-bound tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchLeaf {
    /// Cumulative `(var, lo, hi)` bound fixes on the root-to-leaf path, in
    /// branching order (`±inf` for the open side of each branch).
    pub fixes: Vec<(usize, f64, f64)>,
    /// The leaf's bound or infeasibility proof.
    pub proof: LeafProof,
}

/// Proof that the claimed bound holds for [`CertProblem`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpProof {
    /// Single-LP weak-duality bound.
    Bound {
        /// One dual per row, user orientation.
        duals: Vec<f64>,
    },
    /// The LP itself is infeasible.
    Farkas {
        /// One multiplier per row.
        ray: Vec<f64>,
    },
    /// Branch-and-bound tree: the leaves jointly cover every integer
    /// assignment and each carries its own bound/infeasibility proof.
    Branch {
        /// Leaves in exploration order.
        leaves: Vec<BranchLeaf>,
    },
}

/// A solver-tier certificate: LP + claimed bound + proof.
#[derive(Debug, Clone, PartialEq)]
pub struct LpCertificate {
    /// The LP being bounded.
    pub problem: CertProblem,
    /// The bound the proof establishes, user orientation: the optimum is
    /// `≤ claimed_bound` for Maximize, `≥` for Minimize. `-inf`/`+inf`
    /// respectively when the problem is claimed infeasible.
    pub claimed_bound: f64,
    /// The replayable proof.
    pub proof: LpProof,
}

/// One certified activation relaxation: `ls·x + li ≤ act(x) ≤ us·x + ui`
/// on `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisNeuron {
    /// Activation kind: `"relu"`, `"leakyrelu"`, `"hardtanh"` (checked
    /// exactly) or `"sigmoid"` / `"tanh"` (counted as trusted).
    pub act: String,
    /// Negative-side slope for `"leakyrelu"`; `0` otherwise.
    pub alpha: f64,
    /// Pre-activation lower bound.
    pub lo: f64,
    /// Pre-activation upper bound.
    pub hi: f64,
    /// Lower bounding line slope.
    pub lower_slope: f64,
    /// Lower bounding line intercept.
    pub lower_intercept: f64,
    /// Upper bounding line slope.
    pub upper_slope: f64,
    /// Upper bounding line intercept.
    pub upper_intercept: f64,
}

/// Analysis-tier certificate: the per-neuron relaxations behind a
/// DeepPoly/DiffPoly bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisCertificate {
    /// Per-neuron bounding lines, checked against the activation exactly.
    pub neurons: Vec<AnalysisNeuron>,
    /// Neurons whose activation is not piecewise-linear (sigmoid/tanh):
    /// present in the analysis but not replayable exactly, so they remain
    /// trusted and are only counted.
    pub trusted: usize,
}

/// A complete verdict certificate, as emitted next to (never inside) the
/// canonical verdict JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Property kind: `"uap"`, `"mono"`, or `"lp"` for bare solver runs.
    pub kind: String,
    /// The verdict tier being certified: `"milp"`, `"lp"`, or `"analysis"`.
    pub tier: String,
    /// Whether the certified verdict came from the degradation ladder.
    pub degraded: bool,
    /// Solver-tier proof (present for the MILP/LP tiers).
    pub lp: Option<LpCertificate>,
    /// Analysis-tier relaxation records (present for analysis-tier verdicts
    /// and alongside solver tiers when the emitter includes them).
    pub analysis: Option<AnalysisCertificate>,
}

/// Serializes a possibly non-finite `f64` (`"inf"` / `"-inf"` sentinels).
fn num(x: f64) -> Json {
    if x == f64::INFINITY {
        Json::from("inf")
    } else if x == f64::NEG_INFINITY {
        Json::from("-inf")
    } else {
        Json::from(x)
    }
}

/// Parses a number or an infinity sentinel.
fn parse_num(j: &Json, what: &str) -> Result<f64, String> {
    if let Some(x) = j.as_f64() {
        return Ok(x);
    }
    match j.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        _ => Err(format!("{what}: expected number or inf sentinel")),
    }
}

fn num_list(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| num(x)).collect())
}

fn parse_num_list(j: &Json, what: &str) -> Result<Vec<f64>, String> {
    j.as_array()
        .ok_or_else(|| format!("{what}: expected array"))?
        .iter()
        .map(|v| parse_num(v, what))
        .collect()
}

fn sparse(terms: &[(usize, f64)]) -> Json {
    Json::Arr(
        terms
            .iter()
            .map(|&(j, c)| Json::Arr(vec![Json::from(j), num(c)]))
            .collect(),
    )
}

fn parse_sparse(j: &Json, what: &str) -> Result<Vec<(usize, f64)>, String> {
    j.as_array()
        .ok_or_else(|| format!("{what}: expected array"))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("{what}: expected [index, coeff] pair"))?;
            let idx = items[0]
                .as_usize()
                .ok_or_else(|| format!("{what}: bad index"))?;
            Ok((idx, parse_num(&items[1], what)?))
        })
        .collect()
}

fn proof_leaf_json(proof: &LeafProof) -> Json {
    match proof {
        LeafProof::Bound { duals } => {
            Json::obj([("type", Json::from("bound")), ("duals", num_list(duals))])
        }
        LeafProof::Farkas { ray } => {
            Json::obj([("type", Json::from("farkas")), ("ray", num_list(ray))])
        }
    }
}

fn parse_leaf_proof(j: &Json) -> Result<LeafProof, String> {
    match j.get("type").and_then(Json::as_str) {
        Some("bound") => Ok(LeafProof::Bound {
            duals: parse_num_list(j.get("duals").ok_or("proof: missing duals")?, "proof.duals")?,
        }),
        Some("farkas") => Ok(LeafProof::Farkas {
            ray: parse_num_list(j.get("ray").ok_or("proof: missing ray")?, "proof.ray")?,
        }),
        _ => Err("proof: unknown type".to_string()),
    }
}

impl LpCertificate {
    /// JSON encoding (see the module docs for the number conventions).
    pub fn to_json(&self) -> Json {
        let p = &self.problem;
        let direction = match p.direction {
            CertDirection::Minimize => "min",
            CertDirection::Maximize => "max",
        };
        let rows = Json::Arr(
            p.rows
                .iter()
                .map(|r| {
                    Json::obj([
                        (
                            "sense",
                            Json::from(match r.sense {
                                CertSense::Le => "le",
                                CertSense::Ge => "ge",
                                CertSense::Eq => "eq",
                            }),
                        ),
                        ("rhs", num(r.rhs)),
                        ("coeffs", sparse(&r.coeffs)),
                    ])
                })
                .collect(),
        );
        let proof = match &self.proof {
            LpProof::Bound { duals } => {
                Json::obj([("type", Json::from("bound")), ("duals", num_list(duals))])
            }
            LpProof::Farkas { ray } => {
                Json::obj([("type", Json::from("farkas")), ("ray", num_list(ray))])
            }
            LpProof::Branch { leaves } => Json::obj([
                ("type", Json::from("branch")),
                (
                    "leaves",
                    Json::Arr(
                        leaves
                            .iter()
                            .map(|leaf| {
                                Json::obj([
                                    (
                                        "fixes",
                                        Json::Arr(
                                            leaf.fixes
                                                .iter()
                                                .map(|&(v, lo, hi)| {
                                                    Json::Arr(vec![Json::from(v), num(lo), num(hi)])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    ("proof", proof_leaf_json(&leaf.proof)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::obj([
            ("direction", Json::from(direction)),
            ("claimed_bound", num(self.claimed_bound)),
            ("lower", num_list(&p.lower)),
            ("upper", num_list(&p.upper)),
            (
                "integer",
                Json::Arr(p.integer.iter().map(|&i| Json::from(i)).collect()),
            ),
            ("rows", rows),
            ("objective", sparse(&p.objective)),
            ("proof", proof),
        ])
    }

    /// Decodes the [`LpCertificate::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let direction = match j.get("direction").and_then(Json::as_str) {
            Some("min") => CertDirection::Minimize,
            Some("max") => CertDirection::Maximize,
            _ => return Err("lp: bad direction".to_string()),
        };
        let claimed_bound = parse_num(
            j.get("claimed_bound").ok_or("lp: missing claimed_bound")?,
            "claimed_bound",
        )?;
        let lower = parse_num_list(j.get("lower").ok_or("lp: missing lower")?, "lower")?;
        let upper = parse_num_list(j.get("upper").ok_or("lp: missing upper")?, "upper")?;
        let integer = j
            .get("integer")
            .and_then(Json::as_array)
            .ok_or("lp: missing integer")?
            .iter()
            .map(|v| v.as_usize().ok_or_else(|| "integer: bad index".to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let rows = j
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("lp: missing rows")?
            .iter()
            .map(|r| {
                let sense = match r.get("sense").and_then(Json::as_str) {
                    Some("le") => CertSense::Le,
                    Some("ge") => CertSense::Ge,
                    Some("eq") => CertSense::Eq,
                    _ => return Err("row: bad sense".to_string()),
                };
                Ok(CertRow {
                    sense,
                    rhs: parse_num(r.get("rhs").ok_or("row: missing rhs")?, "rhs")?,
                    coeffs: parse_sparse(r.get("coeffs").ok_or("row: missing coeffs")?, "coeffs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let objective = parse_sparse(
            j.get("objective").ok_or("lp: missing objective")?,
            "objective",
        )?;
        let proof_json = j.get("proof").ok_or("lp: missing proof")?;
        let proof = match proof_json.get("type").and_then(Json::as_str) {
            Some("bound") | Some("farkas") => match parse_leaf_proof(proof_json)? {
                LeafProof::Bound { duals } => LpProof::Bound { duals },
                LeafProof::Farkas { ray } => LpProof::Farkas { ray },
            },
            Some("branch") => {
                let leaves = proof_json
                    .get("leaves")
                    .and_then(Json::as_array)
                    .ok_or("branch: missing leaves")?
                    .iter()
                    .map(|leaf| {
                        let fixes = leaf
                            .get("fixes")
                            .and_then(Json::as_array)
                            .ok_or("leaf: missing fixes")?
                            .iter()
                            .map(|f| {
                                let items = f
                                    .as_array()
                                    .filter(|a| a.len() == 3)
                                    .ok_or("leaf: expected [var, lo, hi] fix")?;
                                let v = items[0].as_usize().ok_or("fix: bad var")?;
                                Ok((
                                    v,
                                    parse_num(&items[1], "fix.lo")?,
                                    parse_num(&items[2], "fix.hi")?,
                                ))
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                        Ok(BranchLeaf {
                            fixes,
                            proof: parse_leaf_proof(
                                leaf.get("proof").ok_or("leaf: missing proof")?,
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                LpProof::Branch { leaves }
            }
            _ => return Err("proof: unknown type".to_string()),
        };
        Ok(Self {
            problem: CertProblem {
                direction,
                lower,
                upper,
                integer,
                rows,
                objective,
            },
            claimed_bound,
            proof,
        })
    }
}

impl AnalysisCertificate {
    /// JSON encoding with compact per-neuron keys (certificates can carry
    /// thousands of neurons).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "neurons",
                Json::Arr(
                    self.neurons
                        .iter()
                        .map(|n| {
                            Json::obj([
                                ("act", Json::from(n.act.as_str())),
                                ("alpha", num(n.alpha)),
                                ("lo", num(n.lo)),
                                ("hi", num(n.hi)),
                                ("ls", num(n.lower_slope)),
                                ("li", num(n.lower_intercept)),
                                ("us", num(n.upper_slope)),
                                ("ui", num(n.upper_intercept)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("trusted", Json::from(self.trusted)),
        ])
    }

    /// Decodes the [`AnalysisCertificate::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let neurons = j
            .get("neurons")
            .and_then(Json::as_array)
            .ok_or("analysis: missing neurons")?
            .iter()
            .map(|n| {
                let field = |key: &str| -> Result<f64, String> {
                    parse_num(
                        n.get(key).ok_or_else(|| format!("neuron: missing {key}"))?,
                        key,
                    )
                };
                Ok(AnalysisNeuron {
                    act: n
                        .get("act")
                        .and_then(Json::as_str)
                        .ok_or("neuron: missing act")?
                        .to_string(),
                    alpha: field("alpha")?,
                    lo: field("lo")?,
                    hi: field("hi")?,
                    lower_slope: field("ls")?,
                    lower_intercept: field("li")?,
                    upper_slope: field("us")?,
                    upper_intercept: field("ui")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let trusted = j
            .get("trusted")
            .and_then(Json::as_usize)
            .ok_or("analysis: missing trusted")?;
        Ok(Self { neurons, trusted })
    }
}

impl Certificate {
    /// JSON encoding of the full certificate.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", Json::from(1.0)),
            ("kind", Json::from(self.kind.as_str())),
            ("tier", Json::from(self.tier.as_str())),
            ("degraded", Json::from(self.degraded)),
        ];
        if let Some(lp) = &self.lp {
            fields.push(("lp", lp.to_json()));
        }
        if let Some(analysis) = &self.analysis {
            fields.push(("analysis", analysis.to_json()));
        }
        Json::obj(fields)
    }

    /// Decodes the [`Certificate::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if j.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err("certificate: unsupported version".to_string());
        }
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("certificate: missing kind")?
            .to_string();
        let tier = j
            .get("tier")
            .and_then(Json::as_str)
            .ok_or("certificate: missing tier")?
            .to_string();
        let degraded = j
            .get("degraded")
            .and_then(Json::as_bool)
            .ok_or("certificate: missing degraded")?;
        let lp = match j.get("lp") {
            Some(v) => Some(LpCertificate::from_json(v)?),
            None => None,
        };
        let analysis = match j.get("analysis") {
            Some(v) => Some(AnalysisCertificate::from_json(v)?),
            None => None,
        };
        if lp.is_none() && analysis.is_none() {
            return Err("certificate: no lp or analysis section".to_string());
        }
        Ok(Self {
            kind,
            tier,
            degraded,
            lp,
            analysis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lp() -> LpCertificate {
        LpCertificate {
            problem: CertProblem {
                direction: CertDirection::Maximize,
                lower: vec![0.0, f64::NEG_INFINITY],
                upper: vec![1.0, f64::INFINITY],
                integer: vec![0],
                rows: vec![CertRow {
                    sense: CertSense::Le,
                    rhs: 0.1 + 0.2,
                    coeffs: vec![(0, 1.5), (1, -2.25)],
                }],
                objective: vec![(0, 1.0), (1, 0.125)],
            },
            claimed_bound: 1.625,
            proof: LpProof::Branch {
                leaves: vec![
                    BranchLeaf {
                        fixes: vec![(0, f64::NEG_INFINITY, 0.0)],
                        proof: LeafProof::Bound { duals: vec![0.25] },
                    },
                    BranchLeaf {
                        fixes: vec![(0, 1.0, f64::INFINITY)],
                        proof: LeafProof::Farkas { ray: vec![-1.0] },
                    },
                ],
            },
        }
    }

    #[test]
    fn lp_certificate_round_trips_bit_exactly() {
        let cert = Certificate {
            kind: "uap".to_string(),
            tier: "milp".to_string(),
            degraded: false,
            lp: Some(sample_lp()),
            analysis: Some(AnalysisCertificate {
                neurons: vec![AnalysisNeuron {
                    act: "relu".to_string(),
                    alpha: 0.0,
                    lo: -1.0,
                    hi: 0.3,
                    lower_slope: 0.0,
                    lower_intercept: 0.0,
                    upper_slope: 0.3 / 1.3,
                    upper_intercept: 0.3 / 1.3,
                }],
                trusted: 2,
            }),
        };
        let text = cert.to_json().to_string();
        let back = Certificate::from_json(&raven_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(cert, back);
        // Numbers survive a *second* trip too (shortest-round-trip floats).
        let again =
            Certificate::from_json(&raven_json::Json::parse(&back.to_json().to_string()).unwrap())
                .unwrap();
        assert_eq!(cert, again);
    }

    #[test]
    fn malformed_certificates_are_descriptive() {
        let err = Certificate::from_json(&Json::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("version"), "{err}");
        let err = Certificate::from_json(
            &Json::parse(r#"{"version":1,"kind":"lp","tier":"lp","degraded":false}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("no lp or analysis"), "{err}");
    }
}
