//! Exact dyadic-rational arithmetic: `(-1)^neg · mag · 2^exp` with an
//! arbitrary-size magnitude.
//!
//! Every number a certificate carries originates as an `f64`, and every
//! operation certificate replay performs is addition, subtraction,
//! multiplication, min/max, or comparison — all of which keep dyadic
//! rationals dyadic. That closure is the whole trick: no division and no
//! gcd ever run, magnitudes stay small (a product of two doubles plus
//! exponent alignment is a few dozen limbs), and the checker never touches
//! floating point on its accept path.

use std::cmp::Ordering;

/// An exact dyadic rational `(-1)^neg · mag · 2^exp`.
///
/// Invariants: `mag` is little-endian base-2^64 with a non-zero top limb;
/// zero is canonically `{neg: false, mag: [], exp: 0}`.
#[derive(Debug, Clone)]
pub struct Dyadic {
    neg: bool,
    mag: Vec<u64>,
    exp: i64,
}

impl Dyadic {
    /// Exact zero.
    pub fn zero() -> Self {
        Self {
            neg: false,
            mag: Vec::new(),
            exp: 0,
        }
    }

    /// Exact one.
    pub fn one() -> Self {
        Self::pow2(0)
    }

    /// Exact `2^e`.
    pub fn pow2(e: i64) -> Self {
        Self {
            neg: false,
            mag: vec![1],
            exp: e,
        }
    }

    /// Exact conversion of a finite `f64` (every finite double is a dyadic
    /// rational). `None` for NaN or ±∞.
    pub fn from_f64(x: f64) -> Option<Self> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Self::zero());
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, e) = if exp_field == 0 {
            (frac, -1074)
        } else {
            (frac | (1 << 52), exp_field - 1075)
        };
        let mut d = Self {
            neg,
            mag: vec![m],
            exp: e,
        };
        d.normalize();
        Some(d)
    }

    /// Exact conversion of an `i64`.
    pub fn from_i64(v: i64) -> Self {
        if v == 0 {
            return Self::zero();
        }
        let neg = v < 0;
        let mag = vec![v.unsigned_abs()];
        let mut d = Self { neg, mag, exp: 0 };
        d.normalize();
        d
    }

    fn normalize(&mut self) {
        while self.mag.last() == Some(&0) {
            self.mag.pop();
        }
        if self.mag.is_empty() {
            self.neg = false;
            self.exp = 0;
            return;
        }
        let mut drop = 0;
        while drop < self.mag.len() && self.mag[drop] == 0 {
            drop += 1;
        }
        if drop > 0 {
            self.mag.drain(..drop);
            self.exp += 64 * drop as i64;
        }
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg && !self.is_zero()
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.is_zero()
    }

    /// Exact negation.
    pub fn negated(&self) -> Self {
        let mut d = self.clone();
        if !d.is_zero() {
            d.neg = !d.neg;
        }
        d
    }

    /// Exact absolute value.
    pub fn abs(&self) -> Self {
        let mut d = self.clone();
        d.neg = false;
        d
    }

    /// Exact sum.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let e = self.exp.min(other.exp);
        let ma = mag_shl(&self.mag, (self.exp - e) as u64);
        let mb = mag_shl(&other.mag, (other.exp - e) as u64);
        let (neg, mag) = if self.neg == other.neg {
            (self.neg, mag_add(&ma, &mb))
        } else {
            match mag_cmp(&ma, &mb) {
                Ordering::Equal => return Self::zero(),
                Ordering::Greater => (self.neg, mag_sub(&ma, &mb)),
                Ordering::Less => (other.neg, mag_sub(&mb, &ma)),
            }
        };
        let mut d = Self { neg, mag, exp: e };
        d.normalize();
        d
    }

    /// Exact difference `self − other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.negated())
    }

    /// Exact product.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut d = Self {
            neg: self.neg != other.neg,
            mag: mag_mul(&self.mag, &other.mag),
            exp: self.exp + other.exp,
        };
        d.normalize();
        d
    }

    /// Exact three-way comparison. An inherent method rather than an
    /// `Ord` impl: the derived `PartialEq` compares representations, not
    /// values, and this crate never needs `Dyadic` as a map key.
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if other.neg {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                return if self.neg {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, false) => {}
        }
        match (self.neg, other.neg) {
            (false, true) => return Ordering::Greater,
            (true, false) => return Ordering::Less,
            _ => {}
        }
        let e = self.exp.min(other.exp);
        let ma = mag_shl(&self.mag, (self.exp - e) as u64);
        let mb = mag_shl(&other.mag, (other.exp - e) as u64);
        let m = mag_cmp(&ma, &mb);
        if self.neg {
            m.reverse()
        } else {
            m
        }
    }

    /// Exact maximum.
    pub fn max(&self, other: &Self) -> Self {
        if self.cmp(other) == Ordering::Less {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// Exact minimum.
    pub fn min(&self, other: &Self) -> Self {
        if self.cmp(other) == Ordering::Greater {
            other.clone()
        } else {
            self.clone()
        }
    }

    /// `⌊self⌋` when it fits in `i128` (`None` on overflow).
    pub fn floor_i128(&self) -> Option<i128> {
        if self.is_zero() {
            return Some(0);
        }
        let (int_mag, frac_nonzero) = if self.exp >= 0 {
            (mag_shl(&self.mag, self.exp as u64), false)
        } else {
            mag_shr(&self.mag, (-self.exp) as u64)
        };
        let int = mag_to_u128(&int_mag)?;
        if self.neg {
            let base = i128::try_from(int).ok()?.checked_neg()?;
            if frac_nonzero {
                base.checked_sub(1)
            } else {
                Some(base)
            }
        } else {
            i128::try_from(int).ok()
        }
    }

    /// `⌈self⌉` when it fits in `i128` (`None` on overflow).
    pub fn ceil_i128(&self) -> Option<i128> {
        self.negated().floor_i128().map(|v| -v)
    }

    /// Approximate `f64` value, for display only — never used in the
    /// checker's accept/reject decisions.
    pub fn approx_f64(&self) -> f64 {
        // Chunked power-of-two scaling: a single `powi` with an exponent
        // past ±1023 detours through inf/0 and loses everything.
        fn pow2_f64(mut e: i64) -> f64 {
            let mut r = 1.0f64;
            while e > 1000 {
                r *= 2f64.powi(1000);
                e -= 1000;
            }
            while e < -1000 {
                r *= 2f64.powi(-1000);
                e += 1000;
            }
            r * 2f64.powi(e as i32)
        }
        let mut v = 0.0f64;
        for (i, &limb) in self.mag.iter().enumerate() {
            v += limb as f64 * pow2_f64(64 * i as i64 + self.exp);
        }
        if self.neg {
            -v
        } else {
            v
        }
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    let la = a.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
    let lb = b.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
    if la != lb {
        return la.cmp(&lb);
    }
    for i in (0..la).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry = 0u128;
    for i in 0..n {
        let s =
            carry + a.get(i).copied().unwrap_or(0) as u128 + b.get(i).copied().unwrap_or(0) as u128;
        out.push(s as u64);
        carry = s >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// `a − b`, requiring `a ≥ b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &ai) in a.iter().enumerate() {
        let d = ai as i128 - b.get(i).copied().unwrap_or(0) as i128 - borrow;
        if d < 0 {
            out.push((d + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "mag_sub requires a >= b");
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

fn mag_shl(m: &[u64], bits: u64) -> Vec<u64> {
    if m.is_empty() || bits == 0 {
        return m.to_vec();
    }
    let limbs = (bits / 64) as usize;
    let rem = bits % 64;
    let mut out = vec![0u64; limbs];
    if rem == 0 {
        out.extend_from_slice(m);
        return out;
    }
    let mut carry = 0u64;
    for &limb in m {
        out.push((limb << rem) | carry);
        carry = limb >> (64 - rem);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `(m >> bits, any shifted-out bit was non-zero)`.
fn mag_shr(m: &[u64], bits: u64) -> (Vec<u64>, bool) {
    let limbs = (bits / 64) as usize;
    let rem = bits % 64;
    if limbs >= m.len() {
        return (Vec::new(), m.iter().any(|&x| x != 0));
    }
    let mut lost = m[..limbs].iter().any(|&x| x != 0);
    let kept = &m[limbs..];
    if rem == 0 {
        return (kept.to_vec(), lost);
    }
    lost |= kept[0] & ((1u64 << rem) - 1) != 0;
    let mut out = Vec::with_capacity(kept.len());
    for i in 0..kept.len() {
        let hi = kept.get(i + 1).copied().unwrap_or(0);
        out.push((kept[i] >> rem) | (hi << (64 - rem)));
    }
    (out, lost)
}

fn mag_to_u128(m: &[u64]) -> Option<u128> {
    let len = m.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
    match len {
        0 => Some(0),
        1 => Some(m[0] as u128),
        2 => Some(m[0] as u128 | (m[1] as u128) << 64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dy(x: f64) -> Dyadic {
        Dyadic::from_f64(x).unwrap()
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            3.25e300,
            -7.5e-310,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(dy(x).approx_f64(), x, "{x}");
        }
        assert!(Dyadic::from_f64(f64::NAN).is_none());
        assert!(Dyadic::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn arithmetic_is_exact_where_floats_are_not() {
        // Dyadic addition is exact real addition of the two doubles, so it
        // lands strictly between fl(0.3) (rounded down) and fl(0.1 + 0.2)
        // (rounded up) — neither float equals it.
        let s = dy(0.1).add(&dy(0.2));
        assert_eq!(s.cmp(&dy(0.1 + 0.2)), Ordering::Less);
        assert_eq!(s.cmp(&dy(0.3)), Ordering::Greater);
        // Products of doubles are exact dyadics (no rounding).
        let p = dy(1e160).mul(&dy(1e160));
        assert!(p.is_positive());
        let q = p.sub(&p);
        assert!(q.is_zero());
    }

    #[test]
    fn comparison_across_scales() {
        assert_eq!(dy(1e-300).cmp(&dy(1e300)), Ordering::Less);
        assert_eq!(dy(-1e-300).cmp(&dy(1e-300)), Ordering::Less);
        assert_eq!(dy(2.0).mul(&dy(0.5)).cmp(&Dyadic::one()), Ordering::Equal);
        assert_eq!(dy(-3.0).max(&dy(2.0)).cmp(&dy(2.0)), Ordering::Equal);
        assert_eq!(dy(-3.0).min(&dy(2.0)).cmp(&dy(-3.0)), Ordering::Equal);
    }

    #[test]
    fn signs_and_subtraction() {
        let a = dy(5.0).sub(&dy(7.0));
        assert!(a.is_negative());
        assert_eq!(a.cmp(&dy(-2.0)), Ordering::Equal);
        assert_eq!(a.abs().cmp(&dy(2.0)), Ordering::Equal);
        assert_eq!(a.negated().cmp(&dy(2.0)), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(dy(2.0).floor_i128(), Some(2));
        assert_eq!(dy(2.5).floor_i128(), Some(2));
        assert_eq!(dy(-2.5).floor_i128(), Some(-3));
        assert_eq!(dy(2.5).ceil_i128(), Some(3));
        assert_eq!(dy(-2.5).ceil_i128(), Some(-2));
        assert_eq!(Dyadic::zero().floor_i128(), Some(0));
        assert_eq!(dy(1e300).mul(&dy(1e300)).floor_i128(), None);
    }

    #[test]
    fn pow2_slack_scale() {
        let slack = Dyadic::pow2(-16);
        assert_eq!(slack.approx_f64(), 2f64.powi(-16));
        let scaled = slack.mul(&Dyadic::one().add(&dy(100.0).abs()));
        assert!(scaled.is_positive());
        assert_eq!(scaled.cmp(&dy(101.0 * 2f64.powi(-16))), Ordering::Equal);
    }
}
