//! Standalone certificate checker.
//!
//! Reads a certificate from a file argument or stdin and replays it in
//! exact arithmetic. Accepts either a bare certificate object or any JSON
//! envelope containing a `"certificate"` field (so a `/v1/verify/*` or
//! `/v1/jobs/<id>` response can be piped straight in). Prints a one-line
//! JSON report and exits 0 on accept, 1 on reject, 2 on malformed input.

use raven_check::{check_certificate_json, CheckError};
use raven_json::Json;
use std::io::Read;
use std::time::Instant;

fn fail(code: i32, msg: &str) -> ! {
    println!(
        "{}",
        Json::obj([("ok", Json::from(false)), ("error", Json::from(msg))])
    );
    std::process::exit(code);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: raven_check [certificate.json]   (reads stdin when no file is given)");
        eprintln!("accepts a bare certificate or an envelope with a \"certificate\" field");
        std::process::exit(0);
    }
    let text = match args.first() {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(err) => fail(2, &format!("cannot read {path}: {err}")),
        },
        None => {
            let mut buf = String::new();
            if let Err(err) = std::io::stdin().read_to_string(&mut buf) {
                fail(2, &format!("cannot read stdin: {err}"));
            }
            buf
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(err) => fail(2, &format!("invalid JSON: {err}")),
    };
    // Unwrap envelopes: descend through "result" wrappers (job-status
    // responses nest the verify envelope one level deeper) and take the
    // innermost "certificate" field if present.
    let mut node = &json;
    loop {
        if let Some(inner) = node.get("certificate") {
            node = inner;
        } else if let Some(inner) = node.get("result") {
            node = inner;
        } else {
            break;
        }
    }
    let bytes = node.to_string().len();
    let start = Instant::now();
    // One-call gate: handles both ordinary certificates and the merged
    // certificates of sharded runs (shard proofs + merge step).
    match check_certificate_json(node) {
        Ok(report) => {
            let millis = start.elapsed().as_secs_f64() * 1e3;
            let mut out = report.to_json();
            if let Json::Obj(pairs) = &mut out {
                pairs.push(("certificate_bytes".to_string(), Json::from(bytes)));
                pairs.push(("replay_millis".to_string(), Json::from(millis)));
            }
            println!("{out}");
        }
        Err(err @ CheckError::Reject(_)) => fail(1, &err.to_string()),
        Err(err @ CheckError::Malformed(_)) => fail(2, &err.to_string()),
    }
}
