//! Merged certificates for sharded UAP runs, and their exact replay.
//!
//! A sharded run splits the shared-perturbation region into sub-boxes,
//! verifies each independently (each shard emitting its own ordinary
//! [`Certificate`]), and merges the shard verdicts into one whole-region
//! verdict. The merged certificate records *everything* needed to replay
//! that pipeline: the per-shard proofs plus the merge claims, so the
//! checker re-establishes
//!
//! ```text
//! hamming(union) ≤ clamp( max_s hamming_s, 0, k − min_s iv_s )
//! ```
//!
//! with its own arithmetic rather than trusting the merger. A tampered
//! merge that claims a tighter bound than the shard minima imply — or a
//! shard claim inconsistent with that shard's replayed proof — is
//! rejected.
//!
//! The per-shard consistency slacks mirror the serve-side remote gate:
//! solver-tier claims may sit a relative `1e-6` off their certificate's
//! claimed bound (the certificate comes from a secondary certified solve),
//! analysis-tier claims must match `k − iv` to `1e-9`. The merge equalities
//! themselves are pure max/min/clamp over already-pinned `f64`s and are
//! checked to `1e-9` in both directions.

use crate::cert::Certificate;
use crate::replay::{check_certificate, CheckError, CheckReport};
use raven_json::Json;

/// One shard's contribution to the merge: the verdict fields the merge
/// arithmetic consumes, claimed by the merger and cross-checked against
/// the shard's own replayed certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardClaim {
    /// The shard's certified worst-case hamming bound.
    pub worst_case_hamming: f64,
    /// Inputs the shard certified individually robust.
    pub individually_verified: usize,
    /// The shard verdict's tier (must match the shard certificate).
    pub tier: String,
    /// The shard verdict's degraded flag (must match the certificate).
    pub degraded: bool,
}

/// A merged certificate: per-shard proofs plus the merge step.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCertificate {
    /// Executions in the batch.
    pub k: usize,
    /// ℓ∞ radius of the (whole, pre-shard) perturbation region.
    pub eps: f64,
    /// Per-shard claims, in shard order.
    pub claims: Vec<ShardClaim>,
    /// Merged worst-case hamming bound for the union.
    pub merged_hamming: f64,
    /// Merged individually-verified count (min over shards).
    pub merged_individually_verified: usize,
    /// Merged worst-case accuracy (`(k − hamming)/k`).
    pub merged_accuracy: f64,
    /// The per-shard certificates, in shard order.
    pub shards: Vec<Certificate>,
}

/// The `kind` discriminator of the merged-certificate JSON encoding.
pub const MERGE_KIND: &str = "uap-merge";

impl MergedCertificate {
    /// JSON encoding. Shard certificates embed their ordinary encoding,
    /// so each can also be extracted and replayed standalone.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(1.0)),
            ("kind", Json::from(MERGE_KIND)),
            ("k", Json::from(self.k)),
            ("eps", Json::from(self.eps)),
            (
                "claims",
                Json::Arr(
                    self.claims
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("worst_case_hamming", Json::from(c.worst_case_hamming)),
                                ("individually_verified", Json::from(c.individually_verified)),
                                ("tier", Json::from(c.tier.as_str())),
                                ("degraded", Json::from(c.degraded)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "merged",
                Json::obj([
                    ("worst_case_hamming", Json::from(self.merged_hamming)),
                    (
                        "individually_verified",
                        Json::from(self.merged_individually_verified),
                    ),
                    ("worst_case_accuracy", Json::from(self.merged_accuracy)),
                ]),
            ),
            (
                "shards",
                Json::Arr(self.shards.iter().map(Certificate::to_json).collect()),
            ),
        ])
    }

    /// Whether a JSON object carries the merged-certificate kind.
    pub fn is_merged(json: &Json) -> bool {
        json.get("kind").and_then(Json::as_str) == Some(MERGE_KIND)
    }

    /// Decodes the [`MergedCertificate::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        if json.get("version").and_then(Json::as_f64) != Some(1.0) {
            return Err("merge: unsupported version".to_string());
        }
        if !Self::is_merged(json) {
            return Err(format!("merge: kind must be {MERGE_KIND}"));
        }
        let k = json
            .get("k")
            .and_then(Json::as_usize)
            .ok_or("merge: missing k")?;
        let eps = json
            .get("eps")
            .and_then(Json::as_f64)
            .ok_or("merge: missing eps")?;
        let claims = json
            .get("claims")
            .and_then(Json::as_array)
            .ok_or("merge: missing claims")?
            .iter()
            .map(|c| {
                Ok(ShardClaim {
                    worst_case_hamming: c
                        .get("worst_case_hamming")
                        .and_then(Json::as_f64)
                        .ok_or("claim: missing worst_case_hamming")?,
                    individually_verified: c
                        .get("individually_verified")
                        .and_then(Json::as_usize)
                        .ok_or("claim: missing individually_verified")?,
                    tier: c
                        .get("tier")
                        .and_then(Json::as_str)
                        .ok_or("claim: missing tier")?
                        .to_string(),
                    degraded: c
                        .get("degraded")
                        .and_then(Json::as_bool)
                        .ok_or("claim: missing degraded")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let merged = json.get("merged").ok_or("merge: missing merged object")?;
        let merged_hamming = merged
            .get("worst_case_hamming")
            .and_then(Json::as_f64)
            .ok_or("merged: missing worst_case_hamming")?;
        let merged_individually_verified = merged
            .get("individually_verified")
            .and_then(Json::as_usize)
            .ok_or("merged: missing individually_verified")?;
        let merged_accuracy = merged
            .get("worst_case_accuracy")
            .and_then(Json::as_f64)
            .ok_or("merged: missing worst_case_accuracy")?;
        let shards = json
            .get("shards")
            .and_then(Json::as_array)
            .ok_or("merge: missing shards")?
            .iter()
            .map(Certificate::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            k,
            eps,
            claims,
            merged_hamming,
            merged_individually_verified,
            merged_accuracy,
            shards,
        })
    }
}

/// Relative slack for solver-tier bound comparisons — the same tolerance
/// the serve-side remote gate applies between a verdict and its
/// certificate's claimed bound.
fn tol(bound: f64) -> f64 {
    1e-6 * (1.0 + bound.abs())
}

/// Ladder rank of a tier name; rejects unknown tiers.
fn tier_rank(tier: &str) -> Result<u8, CheckError> {
    match tier {
        "analysis" => Ok(0),
        "lp" => Ok(1),
        "milp" => Ok(2),
        other => Err(CheckError::Malformed(format!("unknown tier {other}"))),
    }
}

/// Replays a merged certificate: every shard proof through the exact
/// checker, every shard claim against its certificate, and the merge
/// arithmetic re-derived from the claims.
///
/// # Errors
///
/// [`CheckError::Malformed`] for structural problems,
/// [`CheckError::Reject`] when a shard proof fails or the merge claims a
/// bound the shard claims do not imply (tighter *or* looser — the merge is
/// a deterministic function of the claims, so any drift is tampering).
pub fn check_merged_certificate(merged: &MergedCertificate) -> Result<CheckReport, CheckError> {
    if merged.claims.is_empty() || merged.shards.is_empty() {
        return Err(CheckError::Malformed("merge: zero shards".to_string()));
    }
    if merged.claims.len() != merged.shards.len() {
        return Err(CheckError::Malformed(format!(
            "merge: {} claims but {} shard certificates",
            merged.claims.len(),
            merged.shards.len()
        )));
    }
    if merged.k == 0 {
        return Err(CheckError::Malformed("merge: k is zero".to_string()));
    }
    if !merged.eps.is_finite() || merged.eps < 0.0 {
        return Err(CheckError::Malformed("merge: bad eps".to_string()));
    }
    let k = merged.k as f64;
    let mut report = CheckReport {
        kind: MERGE_KIND.to_string(),
        ..CheckReport::default()
    };
    let mut weakest = u8::MAX;
    for (i, (claim, cert)) in merged.claims.iter().zip(&merged.shards).enumerate() {
        if cert.kind != "uap" {
            return Err(CheckError::Malformed(format!(
                "shard {i}: certificate kind {} is not uap",
                cert.kind
            )));
        }
        if cert.tier != claim.tier || cert.degraded != claim.degraded {
            return Err(CheckError::Reject(format!(
                "shard {i}: claim tier/degraded disagrees with its certificate"
            )));
        }
        if claim.individually_verified > merged.k {
            return Err(CheckError::Reject(format!(
                "shard {i}: individually_verified {} exceeds k {}",
                claim.individually_verified, merged.k
            )));
        }
        if !claim.worst_case_hamming.is_finite() || claim.worst_case_hamming < 0.0 {
            return Err(CheckError::Reject(format!(
                "shard {i}: bad hamming claim {}",
                claim.worst_case_hamming
            )));
        }
        // The shard's own proof replays exactly.
        let shard_report = check_certificate(cert)?;
        report.leaves += shard_report.leaves;
        report.lp_checked |= shard_report.lp_checked;
        report.neurons_checked += shard_report.neurons_checked;
        report.neurons_trusted += shard_report.neurons_trusted;
        report.degraded |= claim.degraded;
        weakest = weakest.min(tier_rank(&claim.tier)?);
        // Claim vs certificate: the shard's hamming must be what its own
        // proof implies — the clamped LP bound for solver tiers, the
        // union-bound complement for the analysis tier.
        let iv = claim.individually_verified as f64;
        match claim.tier.as_str() {
            "milp" | "lp" => {
                let lp = cert.lp.as_ref().ok_or_else(|| {
                    CheckError::Malformed(format!("shard {i}: solver tier without lp section"))
                })?;
                let implied = lp.claimed_bound.clamp(0.0, k - iv);
                if (claim.worst_case_hamming - implied).abs() > tol(implied) {
                    return Err(CheckError::Reject(format!(
                        "shard {i}: hamming claim {} not implied by certified bound {}",
                        claim.worst_case_hamming, implied
                    )));
                }
            }
            _ => {
                if (claim.worst_case_hamming - (k - iv)).abs() > 1e-9 {
                    return Err(CheckError::Reject(format!(
                        "shard {i}: analysis-tier hamming claim {} must equal k − iv = {}",
                        claim.worst_case_hamming,
                        k - iv
                    )));
                }
            }
        }
    }
    // Re-derive the merge from the (now certified) claims.
    let min_iv = merged
        .claims
        .iter()
        .map(|c| c.individually_verified)
        .min()
        .expect("non-empty");
    let max_hamming = merged
        .claims
        .iter()
        .map(|c| c.worst_case_hamming)
        .fold(f64::NEG_INFINITY, f64::max);
    let implied_hamming = max_hamming.clamp(0.0, k - min_iv as f64);
    if merged.merged_individually_verified != min_iv {
        return Err(CheckError::Reject(format!(
            "merge: individually_verified {} must be the shard minimum {min_iv}",
            merged.merged_individually_verified
        )));
    }
    if (merged.merged_hamming - implied_hamming).abs() > 1e-9 {
        return Err(CheckError::Reject(format!(
            "merge: hamming {} differs from the shard-implied bound {implied_hamming}",
            merged.merged_hamming
        )));
    }
    let implied_accuracy = (k - merged.merged_hamming) / k;
    if (merged.merged_accuracy - implied_accuracy).abs() > 1e-9 {
        return Err(CheckError::Reject(format!(
            "merge: accuracy {} differs from (k − hamming)/k = {implied_accuracy}",
            merged.merged_accuracy
        )));
    }
    report.tier = match weakest {
        0 => "analysis",
        1 => "lp",
        _ => "milp",
    }
    .to_string();
    report.claimed_bound = Some(merged.merged_hamming);
    report.exact_bound = Some(implied_hamming);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{AnalysisCertificate, Certificate};

    /// An analysis-tier shard certificate (no neurons: a linear network's
    /// analysis has nothing to replay, which the checker accepts).
    fn analysis_cert() -> Certificate {
        Certificate {
            kind: "uap".to_string(),
            tier: "analysis".to_string(),
            degraded: false,
            lp: None,
            analysis: Some(AnalysisCertificate::default()),
        }
    }

    fn verified_merge(k: usize, shards: usize) -> MergedCertificate {
        MergedCertificate {
            k,
            eps: 0.01,
            claims: vec![
                ShardClaim {
                    worst_case_hamming: 0.0,
                    individually_verified: k,
                    tier: "analysis".to_string(),
                    degraded: false,
                };
                shards
            ],
            merged_hamming: 0.0,
            merged_individually_verified: k,
            merged_accuracy: 1.0,
            shards: vec![analysis_cert(); shards],
        }
    }

    #[test]
    fn merged_certificate_round_trips_and_replays() {
        let merged = verified_merge(4, 3);
        let json = merged.to_json();
        assert!(MergedCertificate::is_merged(&json));
        let back = MergedCertificate::from_json(&json).unwrap();
        assert_eq!(merged, back);
        let report = check_merged_certificate(&back).unwrap();
        assert_eq!(report.kind, MERGE_KIND);
        assert_eq!(report.tier, "analysis");
        assert_eq!(report.claimed_bound, Some(0.0));
    }

    #[test]
    fn partial_shard_failure_merges_to_the_min_iv() {
        let mut merged = verified_merge(4, 2);
        merged.claims[1] = ShardClaim {
            worst_case_hamming: 3.0,
            individually_verified: 1,
            tier: "analysis".to_string(),
            degraded: false,
        };
        merged.merged_hamming = 3.0;
        merged.merged_individually_verified = 1;
        merged.merged_accuracy = 0.25;
        check_merged_certificate(&merged).unwrap();
    }

    #[test]
    fn tampered_tighter_merge_is_rejected() {
        // One shard only certifies 1 of 4 inputs; claiming the union is
        // fully verified is exactly the unsound `k − max_s iv` merge.
        let mut merged = verified_merge(4, 2);
        merged.claims[1] = ShardClaim {
            worst_case_hamming: 3.0,
            individually_verified: 1,
            tier: "analysis".to_string(),
            degraded: false,
        };
        // Tamper 1: keep the optimistic shard's numbers for the union.
        merged.merged_hamming = 0.0;
        merged.merged_individually_verified = 4;
        merged.merged_accuracy = 1.0;
        let err = check_merged_certificate(&merged).unwrap_err();
        assert!(matches!(err, CheckError::Reject(_)), "{err}");
        // Tamper 2: correct iv, still-tighter hamming.
        merged.merged_individually_verified = 1;
        merged.merged_hamming = 1.0;
        merged.merged_accuracy = 0.75;
        let err = check_merged_certificate(&merged).unwrap_err();
        assert!(matches!(err, CheckError::Reject(_)), "{err}");
    }

    #[test]
    fn inconsistent_shard_claim_is_rejected() {
        // An analysis-tier shard claiming hamming below k − iv lies about
        // its own certificate.
        let mut merged = verified_merge(4, 2);
        merged.claims[0].individually_verified = 2;
        let err = check_merged_certificate(&merged).unwrap_err();
        assert!(matches!(err, CheckError::Reject(_)), "{err}");
    }

    #[test]
    fn structural_problems_are_malformed() {
        let mut merged = verified_merge(4, 2);
        merged.shards.pop();
        assert!(matches!(
            check_merged_certificate(&merged),
            Err(CheckError::Malformed(_))
        ));
        let mut merged = verified_merge(4, 2);
        merged.claims.clear();
        merged.shards.clear();
        assert!(matches!(
            check_merged_certificate(&merged),
            Err(CheckError::Malformed(_))
        ));
    }
}
