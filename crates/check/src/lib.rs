//! # raven-check — exact replay of RaVeN proof certificates
//!
//! The solvers in `raven-lp` and the analysis tiers in `raven-deeppoly`
//! run in floating point and are large enough that trusting them is a
//! leap. This crate is the other end of the bargain: a small, std-only,
//! dependency-free (bar `raven-json`) checker that replays a
//! [`Certificate`] in exact arithmetic and either *accepts* — the claimed
//! bound really is implied by the recorded duals, Farkas rays, branching
//! tree, and relaxation lines — or *rejects*.
//!
//! Exactness comes from [`Dyadic`], an arbitrary-precision binary rational
//! `±m·2ᵉ`. Every `f64` is a dyadic, and every operation the replay needs
//! (add, subtract, multiply, compare, floor/ceil) is closed over dyadics,
//! so no rounding ever occurs on the verification path. There are no
//! float comparisons on the accept path; the only tolerances are explicit
//! dyadic slacks documented in [`replay`].
//!
//! What is certified and what stays trusted is laid out in
//! `ARCHITECTURE.md` §10; in short, LP/MILP bounds and piecewise-linear
//! relaxations are replayed exactly, while the encoder, bound
//! back-substitution, and sigmoid/tanh relaxations remain trusted.

pub mod cert;
pub mod dyadic;
pub mod merge;
pub mod replay;

pub use cert::{
    AnalysisCertificate, AnalysisNeuron, BranchLeaf, CertDirection, CertProblem, CertRow,
    CertSense, Certificate, LeafProof, LpCertificate, LpProof,
};
pub use dyadic::Dyadic;
pub use merge::{check_merged_certificate, MergedCertificate, ShardClaim, MERGE_KIND};
pub use replay::{check_certificate, CheckError, CheckReport};

/// Parses and replays a certificate straight from its JSON form — the
/// one-call gate used by services that receive certificates over the wire
/// (e.g. `raven-serve`'s fleet dispatch and spot checks). Both ordinary
/// certificates and the merged certificates of sharded runs (kind
/// `"uap-merge"`) are accepted; merged ones replay every shard proof *and*
/// the merge step. Parse failures surface as [`CheckError::Malformed`],
/// replay failures as their own [`CheckError`] variants.
///
/// # Errors
///
/// Returns [`CheckError`] when the JSON does not decode as a certificate
/// or the exact replay rejects it.
pub fn check_certificate_json(json: &raven_json::Json) -> Result<CheckReport, CheckError> {
    if MergedCertificate::is_merged(json) {
        let merged = MergedCertificate::from_json(json).map_err(CheckError::Malformed)?;
        return check_merged_certificate(&merged);
    }
    let cert = Certificate::from_json(json).map_err(CheckError::Malformed)?;
    check_certificate(&cert)
}
