//! Exact replay of certificates.
//!
//! Everything on the accept path runs in [`Dyadic`] arithmetic: the floats
//! in a certificate are converted bit-exactly and never compared as floats
//! again. The only tolerance is an explicit *dyadic* slack — the emitting
//! solver works in `f64`, so its claimed bound can sit a few ulps on the
//! wrong side of the exact dual objective; the slack is fixed at
//! `2⁻¹⁶ · (1 + |claimed|)`, far above float noise and far below anything
//! a tampered certificate could hide behind.
//!
//! What a successful replay proves, per proof type:
//!
//! * **bound** — the supplied row duals are sign-valid for the row senses,
//!   so weak duality makes `yᵀb + Σⱼ max/min(zⱼlⱼ, zⱼuⱼ)` (with
//!   `z = c − Aᵀy`) a sound bound on the LP optimum; the exact value must
//!   not exceed the claimed bound (plus slack).
//! * **farkas** — the supplied multipliers aggregate the rows into a single
//!   inequality `wᵀx ≥ yᵀb` that every feasible point must satisfy, yet
//!   `sup_box wᵀx < yᵀb` exactly: the LP is infeasible.
//! * **branch** — the leaves form a valid branching tree (sibling fixes
//!   split an integer variable into `≤ f` / `≥ f+1`, and every integer
//!   assignment in the root box reaches a leaf), and each leaf carries its
//!   own bound or farkas proof over its fixed box.

use crate::cert::{
    AnalysisCertificate, BranchLeaf, CertDirection, CertProblem, CertSense, Certificate, LeafProof,
    LpCertificate, LpProof,
};
use crate::dyadic::Dyadic;
use raven_json::Json;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Replay failure: either the certificate is not well-formed, or it is
/// well-formed and its proof does not establish the claimed bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Structurally invalid certificate (lengths, indices, NaN, …).
    Malformed(String),
    /// Valid structure, failed proof: the certificate is rejected.
    Reject(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Malformed(msg) => write!(f, "malformed certificate: {msg}"),
            CheckError::Reject(msg) => write!(f, "certificate rejected: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What a successful replay verified.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckReport {
    /// Property kind from the certificate.
    pub kind: String,
    /// Certified tier.
    pub tier: String,
    /// Whether the certified verdict was degraded.
    pub degraded: bool,
    /// Whether a solver-tier (LP/B&B) proof was replayed.
    pub lp_checked: bool,
    /// Branch-and-bound leaves replayed (0 for single-LP proofs).
    pub leaves: usize,
    /// The bound the certificate claimed (`None` when infinite).
    pub claimed_bound: Option<f64>,
    /// Display-only approximation of the exactly-established bound
    /// (`None` when the proof establishes infeasibility).
    pub exact_bound: Option<f64>,
    /// Piecewise-linear neuron relaxations verified exactly.
    pub neurons_checked: usize,
    /// Sigmoid/tanh neurons present but trusted (not replayable exactly).
    pub neurons_trusted: usize,
}

impl CheckReport {
    /// JSON rendering for the `raven_check` binary and the serve spot-check.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ok", Json::from(true)),
            ("kind", Json::from(self.kind.as_str())),
            ("tier", Json::from(self.tier.as_str())),
            ("degraded", Json::from(self.degraded)),
            ("lp_checked", Json::from(self.lp_checked)),
            ("leaves", Json::from(self.leaves)),
            (
                "claimed_bound",
                self.claimed_bound.map_or(Json::Null, Json::from),
            ),
            (
                "exact_bound",
                self.exact_bound.map_or(Json::Null, Json::from),
            ),
            ("neurons_checked", Json::from(self.neurons_checked)),
            ("neurons_trusted", Json::from(self.neurons_trusted)),
        ])
    }
}

/// Exact variable box; `None` is an open (infinite) side.
struct ExactBox {
    lo: Vec<Option<Dyadic>>,
    hi: Vec<Option<Dyadic>>,
}

fn dy(x: f64, what: &str) -> Result<Dyadic, CheckError> {
    Dyadic::from_f64(x).ok_or_else(|| CheckError::Malformed(format!("{what} is not finite")))
}

/// Finite value or open side, rejecting NaN.
fn side(x: f64, what: &str) -> Result<Option<Dyadic>, CheckError> {
    if x.is_nan() {
        return Err(CheckError::Malformed(format!("{what} is NaN")));
    }
    Ok(Dyadic::from_f64(x))
}

fn root_box(problem: &CertProblem) -> Result<ExactBox, CheckError> {
    let n = problem.lower.len();
    if problem.upper.len() != n {
        return Err(CheckError::Malformed(
            "lower/upper length mismatch".to_string(),
        ));
    }
    let lo = problem
        .lower
        .iter()
        .map(|&x| {
            if x == f64::INFINITY {
                Err(CheckError::Malformed("lower bound is +inf".to_string()))
            } else {
                side(x, "lower bound")
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let hi = problem
        .upper
        .iter()
        .map(|&x| {
            if x == f64::NEG_INFINITY {
                Err(CheckError::Malformed("upper bound is -inf".to_string()))
            } else {
                side(x, "upper bound")
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ExactBox { lo, hi })
}

/// The exact weak-duality bound `yᵀb + Σⱼ opt(zⱼlⱼ, zⱼuⱼ)` for sign-valid
/// duals `y`, where `z = c − Aᵀy` and `opt` is max (Maximize) or min.
fn dual_bound(problem: &CertProblem, bx: &ExactBox, duals: &[f64]) -> Result<Dyadic, CheckError> {
    let n = problem.lower.len();
    if duals.len() != problem.rows.len() {
        return Err(CheckError::Malformed(format!(
            "expected {} duals, got {}",
            problem.rows.len(),
            duals.len()
        )));
    }
    let maximize = problem.direction == CertDirection::Maximize;
    let mut total = Dyadic::zero();
    let mut z: Vec<Dyadic> = vec![Dyadic::zero(); n];
    for &(j, c) in &problem.objective {
        if j >= n {
            return Err(CheckError::Malformed("objective index out of range".into()));
        }
        z[j] = z[j].add(&dy(c, "objective coefficient")?);
    }
    for (row, &yf) in problem.rows.iter().zip(duals) {
        let y = dy(yf, "dual")?;
        // Sign validity in the user orientation: a Maximize upper bound may
        // only *relax* with a ≤ row (y ≥ 0) and only *tighten*… any other
        // sign combination breaks weak duality, so it is a hard reject.
        let valid = match (maximize, row.sense) {
            (_, CertSense::Eq) => true,
            (true, CertSense::Le) | (false, CertSense::Ge) => !y.is_negative(),
            (true, CertSense::Ge) | (false, CertSense::Le) => !y.is_positive(),
        };
        if !valid {
            return Err(CheckError::Reject("dual has invalid sign".to_string()));
        }
        if y.is_zero() {
            continue;
        }
        total = total.add(&y.mul(&dy(row.rhs, "rhs")?));
        for &(j, a) in &row.coeffs {
            if j >= n {
                return Err(CheckError::Malformed("row index out of range".into()));
            }
            z[j] = z[j].sub(&y.mul(&dy(a, "row coefficient")?));
        }
    }
    for (j, zj) in z.iter().enumerate() {
        if zj.is_zero() {
            continue;
        }
        // Max picks the box side maximizing z_j·x_j; Min the minimizing one.
        let want_hi = zj.is_positive() == maximize;
        let bound = if want_hi { &bx.hi[j] } else { &bx.lo[j] };
        match bound {
            Some(b) => total = total.add(&zj.mul(b)),
            None => {
                return Err(CheckError::Reject(
                    "dual bound is unbounded (nonzero reduced cost on an open bound)".to_string(),
                ))
            }
        }
    }
    Ok(total)
}

/// Verifies a Farkas infeasibility ray exactly: with `w = Aᵀy` and the
/// internal sign convention (`≤` rows need `y ≤ 0`, `≥` rows `y ≥ 0`),
/// every feasible `x` satisfies `wᵀx ≥ yᵀb`; if `sup_box wᵀx < yᵀb`
/// strictly, the box contains no feasible point.
fn farkas_refutes(problem: &CertProblem, bx: &ExactBox, ray: &[f64]) -> Result<(), CheckError> {
    let n = problem.lower.len();
    if ray.len() != problem.rows.len() {
        return Err(CheckError::Malformed(format!(
            "expected {} ray entries, got {}",
            problem.rows.len(),
            ray.len()
        )));
    }
    let mut ytb = Dyadic::zero();
    let mut w: Vec<Dyadic> = vec![Dyadic::zero(); n];
    for (row, &yf) in problem.rows.iter().zip(ray) {
        let y = dy(yf, "ray entry")?;
        let valid = match row.sense {
            CertSense::Eq => true,
            CertSense::Le => !y.is_positive(),
            CertSense::Ge => !y.is_negative(),
        };
        if !valid {
            return Err(CheckError::Reject(
                "farkas ray has invalid sign".to_string(),
            ));
        }
        if y.is_zero() {
            continue;
        }
        ytb = ytb.add(&y.mul(&dy(row.rhs, "rhs")?));
        for &(j, a) in &row.coeffs {
            if j >= n {
                return Err(CheckError::Malformed("row index out of range".into()));
            }
            w[j] = w[j].add(&y.mul(&dy(a, "row coefficient")?));
        }
    }
    let mut sup = Dyadic::zero();
    for (j, wj) in w.iter().enumerate() {
        if wj.is_zero() {
            continue;
        }
        let bound = if wj.is_positive() {
            &bx.hi[j]
        } else {
            &bx.lo[j]
        };
        match bound {
            Some(b) => sup = sup.add(&wj.mul(b)),
            None => {
                return Err(CheckError::Reject(
                    "farkas aggregate is unbounded over the box".to_string(),
                ))
            }
        }
    }
    if ytb.sub(&sup).is_positive() {
        Ok(())
    } else {
        Err(CheckError::Reject(
            "farkas ray does not refute feasibility".to_string(),
        ))
    }
}

/// Integer interval endpoints; `None` is the open side.
fn int_range(
    lo: &Option<Dyadic>,
    hi: &Option<Dyadic>,
) -> Result<(Option<i128>, Option<i128>), CheckError> {
    let overflow = || CheckError::Reject("branch bound exceeds i128".to_string());
    let clo = match lo {
        Some(d) => Some(d.ceil_i128().ok_or_else(overflow)?),
        None => None,
    };
    let chi = match hi {
        Some(d) => Some(d.floor_i128().ok_or_else(overflow)?),
        None => None,
    };
    Ok((clo, chi))
}

/// Checks that the sibling intervals at one branching depth jointly cover
/// every integer in `[clo, chi]` (`None` = infinite side).
fn intervals_cover(
    mut intervals: Vec<(Option<i128>, Option<i128>)>,
    clo: Option<i128>,
    chi: Option<i128>,
) -> bool {
    if let (Some(l), Some(h)) = (clo, chi) {
        if l > h {
            return true; // no integers to cover
        }
    }
    // Sort by lower endpoint, open side first, and sweep.
    intervals.sort_by(|a, b| match (a.0, b.0) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.cmp(&y),
    });
    // `covered` = everything ≤ this value is covered (starting just below
    // the required range); None means nothing covered yet.
    let mut covered: Option<i128> = None;
    let mut started = false;
    for (lo, hi) in intervals {
        let reaches_start = match (started, covered, lo, clo) {
            // First interval must reach the start of the required range.
            (false, _, None, _) => true,
            (false, _, Some(l), None) => return l == i128::MIN, // can't cover -inf with finite lo
            (false, _, Some(l), Some(s)) => l <= s,
            // Later intervals must touch or overlap the covered prefix.
            (true, Some(c), Some(l), _) => l <= c.saturating_add(1),
            (true, Some(_), None, _) => true,
            (true, None, _, _) => unreachable!("started implies covered"),
        };
        if !reaches_start {
            continue; // disjoint later interval: useless until a gap-filler shows up (sorted, so it never will)
        }
        started = true;
        match hi {
            None => return true, // covered through +inf
            Some(h) => {
                covered = Some(covered.map_or(h, |c| c.max(h)));
            }
        }
        if let (Some(c), Some(end)) = (covered, chi) {
            if c >= end {
                return true;
            }
        }
    }
    match (started, covered, chi) {
        (false, _, _) => false,
        (_, _, None) => false, // required range extends to +inf, no interval did
        (true, Some(c), Some(end)) => c >= end,
        (true, None, _) => false,
    }
}

/// Recursive branching-tree coverage: at each depth, group the leaves by
/// their next fix; the sibling fixes must split a single integer variable
/// so that every integer value in the current box reaches some group.
fn cover(
    leaves: &[&BranchLeaf],
    depth: usize,
    bx: &mut ExactBox,
    is_int: &[bool],
) -> Result<(), CheckError> {
    if leaves.iter().any(|l| l.fixes.len() == depth) {
        // A leaf whose path ends here covers this whole subtree box.
        return Ok(());
    }
    let mut groups: BTreeMap<(usize, u64, u64), Vec<&BranchLeaf>> = BTreeMap::new();
    for leaf in leaves {
        let (v, lo, hi) = leaf.fixes[depth];
        groups
            .entry((v, lo.to_bits(), hi.to_bits()))
            .or_default()
            .push(leaf);
    }
    let vars: Vec<usize> = {
        let mut vs: Vec<usize> = groups.keys().map(|&(v, _, _)| v).collect();
        vs.dedup();
        vs
    };
    if vars.len() != 1 {
        return Err(CheckError::Reject(
            "branch siblings split different variables".to_string(),
        ));
    }
    let v = vars[0];
    if v >= is_int.len() || !is_int[v] {
        return Err(CheckError::Reject(
            "branch fixes a non-integer variable".to_string(),
        ));
    }
    let (clo, chi) = int_range(&bx.lo[v], &bx.hi[v])?;
    let mut intervals = Vec::with_capacity(groups.len());
    for &(_, lo_bits, hi_bits) in groups.keys() {
        let lo = side(f64::from_bits(lo_bits), "fix lower")?;
        let hi = side(f64::from_bits(hi_bits), "fix upper")?;
        intervals.push(int_range(&lo, &hi)?);
    }
    if !intervals_cover(intervals, clo, chi) {
        return Err(CheckError::Reject(
            "branch leaves do not cover all integer assignments".to_string(),
        ));
    }
    for ((_, lo_bits, hi_bits), group) in &groups {
        let fix_lo = side(f64::from_bits(*lo_bits), "fix lower")?;
        let fix_hi = side(f64::from_bits(*hi_bits), "fix upper")?;
        // Intersect the fix into the box, recurse, restore.
        let old_lo = bx.lo[v].clone();
        let old_hi = bx.hi[v].clone();
        bx.lo[v] = match (&old_lo, &fix_lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) => Some(a.clone()),
            (None, b) => b.clone(),
        };
        bx.hi[v] = match (&old_hi, &fix_hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a.clone()),
            (None, b) => b.clone(),
        };
        let result = cover(group, depth + 1, bx, is_int);
        bx.lo[v] = old_lo;
        bx.hi[v] = old_hi;
        result?;
    }
    Ok(())
}

/// Applies a leaf's cumulative fixes to a copy of the root box.
fn leaf_box(root: &ExactBox, leaf: &BranchLeaf) -> Result<ExactBox, CheckError> {
    let mut bx = ExactBox {
        lo: root.lo.clone(),
        hi: root.hi.clone(),
    };
    for &(v, lo, hi) in &leaf.fixes {
        if v >= bx.lo.len() {
            return Err(CheckError::Malformed("fix index out of range".into()));
        }
        if let Some(b) = side(lo, "fix lower")? {
            bx.lo[v] = Some(bx.lo[v].as_ref().map_or(b.clone(), |a| a.max(&b)));
        }
        if let Some(b) = side(hi, "fix upper")? {
            bx.hi[v] = Some(bx.hi[v].as_ref().map_or(b.clone(), |a| a.min(&b)));
        }
    }
    Ok(bx)
}

/// Replays a solver-tier certificate. Returns the exactly-established bound
/// (`None` when the proof establishes infeasibility) after verifying it is
/// at least as strong as the claimed bound.
fn check_lp(cert: &LpCertificate) -> Result<(Option<Dyadic>, usize), CheckError> {
    let problem = &cert.problem;
    let n = problem.lower.len();
    for &j in &problem.integer {
        if j >= n {
            return Err(CheckError::Malformed("integer index out of range".into()));
        }
    }
    let mut root = root_box(problem)?;
    let maximize = problem.direction == CertDirection::Maximize;
    let (established, leaves) = match &cert.proof {
        LpProof::Bound { duals } => (Some(dual_bound(problem, &root, duals)?), 0),
        LpProof::Farkas { ray } => {
            farkas_refutes(problem, &root, ray)?;
            (None, 0)
        }
        LpProof::Branch { leaves } => {
            if leaves.is_empty() {
                return Err(CheckError::Malformed("branch proof with no leaves".into()));
            }
            let mut is_int = vec![false; n];
            for &j in &problem.integer {
                is_int[j] = true;
            }
            let refs: Vec<&BranchLeaf> = leaves.iter().collect();
            cover(&refs, 0, &mut root, &is_int)?;
            let mut best: Option<Dyadic> = None;
            for leaf in leaves {
                let bx = leaf_box(&root, leaf)?;
                match &leaf.proof {
                    LeafProof::Bound { duals } => {
                        let b = dual_bound(problem, &bx, duals)?;
                        best = Some(match best {
                            None => b,
                            Some(cur) => {
                                if maximize {
                                    cur.max(&b)
                                } else {
                                    cur.min(&b)
                                }
                            }
                        });
                    }
                    LeafProof::Farkas { ray } => farkas_refutes(problem, &bx, ray)?,
                }
            }
            (best, leaves.len())
        }
    };
    // Compare against the claim, entirely in dyadic arithmetic.
    let claimed = cert.claimed_bound;
    let trivially_true = if maximize {
        claimed == f64::INFINITY
    } else {
        claimed == f64::NEG_INFINITY
    };
    if !trivially_true {
        match &established {
            None => {} // proved infeasible: every bound claim holds
            Some(bound) => {
                if !claimed.is_finite() {
                    // Finite-evidence proof cannot support an infeasibility
                    // (−inf/+inf) claim.
                    return Err(CheckError::Reject(
                        "claimed bound is infinite but proof only bounds the optimum".to_string(),
                    ));
                }
                let claimed_d = dy(claimed, "claimed bound")?;
                let slack = Dyadic::pow2(-16).mul(&Dyadic::one().add(&claimed_d.abs()));
                let gap = if maximize {
                    bound.sub(&claimed_d)
                } else {
                    claimed_d.sub(bound)
                };
                if gap.cmp(&slack) == Ordering::Greater {
                    return Err(CheckError::Reject(format!(
                        "exact bound {} does not support claimed bound {claimed}",
                        bound.approx_f64()
                    )));
                }
            }
        }
    }
    Ok((established, leaves))
}

/// Exact value of a certified piecewise-linear activation at `x`.
fn act_value(act: &str, alpha: &Dyadic, x: &Dyadic) -> Option<Dyadic> {
    match act {
        "relu" => Some(x.max(&Dyadic::zero())),
        "leakyrelu" => Some(if x.is_negative() {
            alpha.mul(x)
        } else {
            x.clone()
        }),
        "hardtanh" => {
            let one = Dyadic::one();
            Some(x.max(&one.negated()).min(&one))
        }
        _ => None,
    }
}

/// Interior kink positions of a certified activation.
fn act_kinks(act: &str) -> Vec<Dyadic> {
    match act {
        "relu" | "leakyrelu" => vec![Dyadic::zero()],
        "hardtanh" => vec![Dyadic::one().negated(), Dyadic::one()],
        _ => Vec::new(),
    }
}

/// Replays an analysis-tier certificate: every piecewise-linear relaxation
/// must bracket its activation at the interval endpoints and every interior
/// kink (linearity between those points does the rest). Returns
/// `(checked, trusted)` neuron counts.
fn check_analysis(cert: &AnalysisCertificate) -> Result<(usize, usize), CheckError> {
    let mut checked = 0usize;
    let mut trusted = cert.trusted;
    for neuron in &cert.neurons {
        match neuron.act.as_str() {
            "sigmoid" | "tanh" => {
                trusted += 1;
                continue;
            }
            "relu" | "leakyrelu" | "hardtanh" => {}
            other => return Err(CheckError::Malformed(format!("unknown activation {other}"))),
        }
        let lo = dy(neuron.lo, "neuron lo")?;
        let hi = dy(neuron.hi, "neuron hi")?;
        if lo.cmp(&hi) == Ordering::Greater {
            return Err(CheckError::Malformed("neuron has inverted bounds".into()));
        }
        let alpha = dy(neuron.alpha, "alpha")?;
        let ls = dy(neuron.lower_slope, "lower slope")?;
        let li = dy(neuron.lower_intercept, "lower intercept")?;
        let us = dy(neuron.upper_slope, "upper slope")?;
        let ui = dy(neuron.upper_intercept, "upper intercept")?;
        let mut points = vec![lo.clone(), hi.clone()];
        for kink in act_kinks(&neuron.act) {
            if lo.cmp(&kink) == Ordering::Less && kink.cmp(&hi) == Ordering::Less {
                points.push(kink);
            }
        }
        for x in &points {
            let f = act_value(&neuron.act, &alpha, x)
                .expect("piecewise-linear activations matched above");
            // The emitter computed the lines in f64, so a correct
            // relaxation can sit a few ulps past the function; the exact
            // check allows 2⁻³⁰·(1+|x|), still ~10³ below any meaningful
            // perturbation.
            let tol = Dyadic::pow2(-30).mul(&Dyadic::one().add(&x.abs()));
            let lower = ls.mul(x).add(&li);
            let upper = us.mul(x).add(&ui);
            if lower.sub(&f).cmp(&tol) == Ordering::Greater {
                return Err(CheckError::Reject(format!(
                    "lower relaxation line exceeds {} at x={}",
                    neuron.act,
                    x.approx_f64()
                )));
            }
            if f.sub(&upper).cmp(&tol) == Ordering::Greater {
                return Err(CheckError::Reject(format!(
                    "upper relaxation line falls below {} at x={}",
                    neuron.act,
                    x.approx_f64()
                )));
            }
        }
        checked += 1;
    }
    Ok((checked, trusted))
}

/// Replays a complete certificate.
///
/// # Errors
///
/// [`CheckError::Malformed`] for structural problems,
/// [`CheckError::Reject`] when a proof fails to establish its claim.
pub fn check_certificate(cert: &Certificate) -> Result<CheckReport, CheckError> {
    if cert.lp.is_none() && cert.analysis.is_none() {
        return Err(CheckError::Malformed(
            "certificate has no lp or analysis section".to_string(),
        ));
    }
    let mut report = CheckReport {
        kind: cert.kind.clone(),
        tier: cert.tier.clone(),
        degraded: cert.degraded,
        ..CheckReport::default()
    };
    if let Some(lp) = &cert.lp {
        let (established, leaves) = check_lp(lp)?;
        report.lp_checked = true;
        report.leaves = leaves;
        report.claimed_bound = lp.claimed_bound.is_finite().then_some(lp.claimed_bound);
        report.exact_bound = established.map(|b| b.approx_f64());
    }
    if let Some(analysis) = &cert.analysis {
        let (checked, trusted) = check_analysis(analysis)?;
        report.neurons_checked = checked;
        report.neurons_trusted = trusted;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{AnalysisNeuron, CertRow};

    /// max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6, 0 ≤ x,y ≤ 10 → optimum 2.8
    /// at the duals y = (0.4, 0.2).
    fn sample_max() -> CertProblem {
        CertProblem {
            direction: CertDirection::Maximize,
            lower: vec![0.0, 0.0],
            upper: vec![10.0, 10.0],
            integer: vec![],
            rows: vec![
                CertRow {
                    sense: CertSense::Le,
                    rhs: 4.0,
                    coeffs: vec![(0, 1.0), (1, 2.0)],
                },
                CertRow {
                    sense: CertSense::Le,
                    rhs: 6.0,
                    coeffs: vec![(0, 3.0), (1, 1.0)],
                },
            ],
            objective: vec![(0, 1.0), (1, 1.0)],
        }
    }

    #[test]
    fn valid_dual_bound_is_accepted() {
        let cert = LpCertificate {
            problem: sample_max(),
            claimed_bound: 2.8,
            proof: LpProof::Bound {
                duals: vec![0.4, 0.2],
            },
        };
        // The duals 0.4/0.2 are not exact dyadics, so the exact bound
        // differs from 2.8 by a float residue — absorbed by the slack.
        let (bound, _) = check_lp(&cert).unwrap();
        let b = bound.unwrap();
        assert!((b.approx_f64() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn tampered_dual_is_rejected() {
        // Shrinking a dual loosens nothing: z picks up slack at the box
        // bound and the exact bound rises above the claim.
        let cert = LpCertificate {
            problem: sample_max(),
            claimed_bound: 2.8,
            proof: LpProof::Bound {
                duals: vec![0.0, 0.2],
            },
        };
        assert!(matches!(check_lp(&cert), Err(CheckError::Reject(_))));
        // A wrong-signed dual is rejected outright.
        let cert = LpCertificate {
            problem: sample_max(),
            claimed_bound: 100.0,
            proof: LpProof::Bound {
                duals: vec![-0.4, 0.2],
            },
        };
        assert!(matches!(check_lp(&cert), Err(CheckError::Reject(_))));
    }

    #[test]
    fn understated_claim_is_rejected() {
        let cert = LpCertificate {
            problem: sample_max(),
            claimed_bound: 2.0, // true optimum is 2.8: claim too strong
            proof: LpProof::Bound {
                duals: vec![0.4, 0.2],
            },
        };
        assert!(matches!(check_lp(&cert), Err(CheckError::Reject(_))));
    }

    #[test]
    fn farkas_ray_refutes_infeasible_box() {
        // x ≥ 3 with x ∈ [0, 1]: the ray y = 1 (Ge) aggregates to
        // x ≥ 3 > sup_box x = 1.
        let problem = CertProblem {
            direction: CertDirection::Maximize,
            lower: vec![0.0],
            upper: vec![1.0],
            integer: vec![],
            rows: vec![CertRow {
                sense: CertSense::Ge,
                rhs: 3.0,
                coeffs: vec![(0, 1.0)],
            }],
            objective: vec![(0, 1.0)],
        };
        let cert = LpCertificate {
            problem: problem.clone(),
            claimed_bound: f64::NEG_INFINITY,
            proof: LpProof::Farkas { ray: vec![1.0] },
        };
        assert!(check_lp(&cert).unwrap().0.is_none());
        // The zero ray proves nothing.
        let cert = LpCertificate {
            problem,
            claimed_bound: f64::NEG_INFINITY,
            proof: LpProof::Farkas { ray: vec![0.0] },
        };
        assert!(matches!(check_lp(&cert), Err(CheckError::Reject(_))));
    }

    #[test]
    fn branch_coverage_gap_is_rejected() {
        // One binary; a single leaf fixing x ≤ 0 leaves x = 1 uncovered.
        let mut problem = sample_max();
        problem.integer = vec![0];
        let leaf = |lo: f64, hi: f64| BranchLeaf {
            fixes: vec![(0, lo, hi)],
            proof: LeafProof::Bound {
                duals: vec![0.4, 0.2],
            },
        };
        let gap = LpCertificate {
            problem: problem.clone(),
            claimed_bound: 2.8,
            proof: LpProof::Branch {
                leaves: vec![leaf(f64::NEG_INFINITY, 0.0)],
            },
        };
        assert!(matches!(check_lp(&gap), Err(CheckError::Reject(_))));
        let full = LpCertificate {
            problem,
            claimed_bound: 2.8,
            proof: LpProof::Branch {
                leaves: vec![leaf(f64::NEG_INFINITY, 0.0), leaf(1.0, f64::INFINITY)],
            },
        };
        let (bound, leaves) = check_lp(&full).unwrap();
        assert!(bound.is_some());
        assert_eq!(leaves, 2);
    }

    #[test]
    fn interval_cover_handles_empty_and_open_ranges() {
        // Required range empty → trivially covered.
        assert!(intervals_cover(vec![], Some(1), Some(0)));
        // [−inf, 0] ∪ [1, +inf] covers [0, 1].
        assert!(intervals_cover(
            vec![(None, Some(0)), (Some(1), None)],
            Some(0),
            Some(1)
        ));
        // Gap at 1.
        assert!(!intervals_cover(
            vec![(None, Some(0)), (Some(2), None)],
            Some(0),
            Some(3)
        ));
        // Open required side needs an open interval.
        assert!(!intervals_cover(vec![(Some(0), Some(5))], None, Some(1)));
    }

    fn relu_neuron(lo: f64, hi: f64) -> AnalysisNeuron {
        // The triangle relaxation, computed the same way the emitter does.
        let us = hi / (hi - lo);
        AnalysisNeuron {
            act: "relu".to_string(),
            alpha: 0.0,
            lo,
            hi,
            lower_slope: if hi > -lo { 1.0 } else { 0.0 },
            lower_intercept: 0.0,
            upper_slope: us,
            upper_intercept: -lo * us,
        }
    }

    #[test]
    fn analysis_relaxation_round_trips_and_rejects_tampering() {
        let good = AnalysisCertificate {
            neurons: vec![relu_neuron(-1.0, 3.0), relu_neuron(-0.7, 0.2)],
            trusted: 0,
        };
        assert_eq!(check_analysis(&good).unwrap(), (2, 0));
        // Lower the upper line: it dips below relu at the kink.
        let mut bad = good.clone();
        bad.neurons[0].upper_intercept -= 1e-3;
        assert!(matches!(check_analysis(&bad), Err(CheckError::Reject(_))));
        // Raise the lower line: it pokes above relu at the kink.
        let mut bad = good.clone();
        bad.neurons[1].lower_intercept = 0.1;
        assert!(matches!(check_analysis(&bad), Err(CheckError::Reject(_))));
        // Sigmoid neurons are counted as trusted, not checked.
        let mixed = AnalysisCertificate {
            neurons: vec![AnalysisNeuron {
                act: "sigmoid".to_string(),
                alpha: 0.0,
                lo: -1.0,
                hi: 1.0,
                lower_slope: 0.0,
                lower_intercept: 0.0,
                upper_slope: 0.0,
                upper_intercept: 1.0,
            }],
            trusted: 0,
        };
        assert_eq!(check_analysis(&mixed).unwrap(), (0, 1));
    }

    #[test]
    fn hardtanh_and_leaky_relaxations_check_exactly() {
        let neurons = vec![
            AnalysisNeuron {
                act: "hardtanh".to_string(),
                alpha: 0.0,
                lo: -2.5,
                hi: 2.5,
                // Kink-anchored lines at slope 2/(hi+1), matching relax.rs.
                lower_slope: 2.0 / 3.5,
                lower_intercept: 2.0 / 3.5 - 1.0,
                upper_slope: 2.0 / 3.5,
                upper_intercept: 1.0 - 2.0 / 3.5,
            },
            AnalysisNeuron {
                act: "leakyrelu".to_string(),
                alpha: 0.01,
                lo: -2.0,
                hi: 2.0,
                lower_slope: 1.0,
                lower_intercept: 0.0,
                upper_slope: (2.0 + 0.01 * 2.0) / 4.0,
                upper_intercept: 0.01 * -2.0 - (2.0 + 0.01 * 2.0) / 4.0 * -2.0,
            },
        ];
        let cert = AnalysisCertificate {
            neurons,
            trusted: 0,
        };
        assert_eq!(check_analysis(&cert).unwrap(), (2, 0));
    }
}
