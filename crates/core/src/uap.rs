//! Verification of robustness against universal adversarial perturbations
//! (UAP) — the paper's headline property — and its hamming-distance variant.
//!
//! Problem: `k` correctly-classified inputs `z_1..z_k`, one *shared*
//! perturbation `d` with `‖d‖∞ ≤ ε` applied to all of them. Certify a lower
//! bound on the worst-case accuracy `min_d (#correctly classified)/k`.
//! The worst-case hamming distance of the predicted label string is the
//! complementary count `k · (1 − accuracy)`.

use crate::certificate::CertSink;
use crate::config::{Method, RavenConfig};
use crate::encode::{encode, Expr};
use crate::hooks::{Phase, RunHooks};
use crate::margin::{all_positive, box_margins, deeppoly_margins, zonotope_margins};
use crate::tier::{Tier, TierMillis};
use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::{linf_ball, Interval};
use raven_lp::{
    BasisCache, Budget, Direction, LinExpr, LpError, LpProblem, Sense, SolveStatus, VarId,
};
use raven_nn::AnalysisPlan;
use std::time::Instant;

/// A UAP verification instance.
#[derive(Debug, Clone)]
pub struct UapProblem {
    /// The analyzed network (lowered).
    pub plan: AnalysisPlan,
    /// The `k` clean inputs.
    pub inputs: Vec<Vec<f64>>,
    /// Ground-truth label per input.
    pub labels: Vec<usize>,
    /// ℓ∞ radius of the shared perturbation.
    pub eps: f64,
}

impl UapProblem {
    /// Number of executions `k`.
    pub fn k(&self) -> usize {
        self.inputs.len()
    }
}

/// Outcome of a UAP verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct UapResult {
    /// The method that produced this result.
    pub method: Method,
    /// Certified lower bound on worst-case accuracy over the batch, in
    /// `[0, 1]`.
    pub worst_case_accuracy: f64,
    /// Certified upper bound on the worst-case hamming distance
    /// (`k · (1 − accuracy)`; fractional under LP relaxation).
    pub worst_case_hamming: f64,
    /// How many inputs were certified robust *individually* (the
    /// union-bound information every method starts from).
    pub individually_verified: usize,
    /// Wall-clock milliseconds spent.
    pub solve_millis: f64,
    /// LP size, when an LP was built.
    pub lp_rows: usize,
    /// LP variable count, when an LP was built.
    pub lp_vars: usize,
    /// Whether the spec bound is exact over the indicator variables (MILP
    /// proved integral optimum) rather than an LP relaxation.
    pub exact: bool,
    /// The shared perturbation realizing the LP/MILP optimum, when an LP
    /// was solved — a concrete attack *candidate*. Replaying it through the
    /// network yields an empirical upper bound on worst-case accuracy that
    /// sandwiches the certificate (see [`replay_uap_delta`]).
    pub counterexample_delta: Option<Vec<f64>>,
    /// Precision tier of the degradation ladder that produced the final
    /// bound. Non-relational baselines always report
    /// [`Tier::Analysis`]; the LP methods report the deepest tier that
    /// finished within budget.
    pub tier: Tier,
    /// True when a budget (deadline, cancellation pressure, or solver
    /// node limit) pushed the result below the configured precision. The
    /// bound is still sound — only less tight than an unbudgeted run.
    pub degraded: bool,
    /// Wall-clock spent per tier (environment-dependent; excluded from the
    /// deterministic verdict object).
    pub tier_millis: TierMillis,
}

/// Replays a shared perturbation against a batch, returning the concrete
/// accuracy — an upper bound on the worst case that complements the
/// verifier's lower bound.
///
/// # Panics
///
/// Panics when shapes disagree.
pub fn replay_uap_delta(
    net: &raven_nn::Network,
    inputs: &[Vec<f64>],
    labels: &[usize],
    delta: &[f64],
) -> f64 {
    assert_eq!(inputs.len(), labels.len(), "replay: length mismatch");
    let correct = inputs
        .iter()
        .zip(labels)
        .filter(|(z, &y)| {
            let x: Vec<f64> = z.iter().zip(delta).map(|(&a, &b)| a + b).collect();
            net.classify(&x) == y
        })
        .count();
    correct as f64 / inputs.len() as f64
}

/// Verifies a UAP instance under a *combined ℓ∞ + ℓ1 threat model*: the
/// shared perturbation satisfies `‖d‖∞ ≤ problem.eps` **and**
/// `‖d‖₁ ≤ l1_budget`.
///
/// The LP methods encode the ℓ1 constraint exactly with auxiliary
/// absolute-value variables (`t_j ≥ ±d_j`, `Σ t_j ≤ budget`); the
/// non-relational baselines cannot express it and soundly fall back to the
/// ℓ∞ box — which is precisely the expressiveness gap of box-shaped input
/// specifications that LP-based relational verification closes.
///
/// # Panics
///
/// Panics on the same conditions as [`verify_uap`], or when
/// `l1_budget < 0`.
pub fn verify_uap_l1(
    problem: &UapProblem,
    l1_budget: f64,
    method: Method,
    config: &RavenConfig,
) -> UapResult {
    assert!(l1_budget >= 0.0, "l1 budget must be non-negative");
    // Per-dimension cap implied by the ℓ1 budget.
    let cap = problem.eps.min(l1_budget);
    let delta_box = vec![Interval::symmetric(cap); problem.plan.input_dim()];
    match method {
        Method::Box | Method::ZonotopeIndividual | Method::DeepPolyIndividual => {
            // Box-shaped domains cannot express the ℓ1 coupling; the ℓ∞ box
            // with the per-dimension cap is a sound over-approximation.
            verify_uap_on_box(problem, &delta_box, method, config)
        }
        Method::IoLp | Method::Raven => verify_uap_with_extra(
            problem,
            &delta_box,
            method,
            config,
            Some(l1_budget),
            &RunHooks::default(),
            None,
        )
        .expect("default hooks never cancel"),
    }
}

/// Partitions a UAP problem's shared-perturbation region `[-ε, ε]^dim`
/// into `shards` sub-boxes that cover it exactly: equal slices along
/// coordinate 0, every other coordinate keeping the full `[-ε, ε]` range.
///
/// The cut points are computed with one fixed formula
/// (`lo + (hi − lo) · i / shards`, endpoints pinned exactly), so any two
/// processes — the dispatching server and a remote worker — derive
/// bit-identical shard boxes from `(eps, dim, shard, shards)` alone.
/// Adjacent shards share their boundary hyperplane; for verification that
/// overlap is sound (both shards certify the shared face) and it guarantees
/// the union of the shards is exactly the original box.
///
/// Per-shard verdicts merge soundly back into a whole-region verdict via
/// [`merge_uap_results`]: any shared perturbation lies in some shard, so
/// the union's worst case is bounded by the worst shard.
///
/// # Panics
///
/// Panics when `shards == 0` or the plan has no inputs.
pub fn shard_uap_problem(problem: &UapProblem, shards: usize) -> Vec<Vec<Interval>> {
    shard_delta_box(problem.eps, problem.plan.input_dim(), shards)
}

/// [`shard_uap_problem`] on raw `(eps, dim)` — the form remote workers
/// use, since they receive the scalars over the wire rather than the
/// problem struct.
///
/// # Panics
///
/// Panics when `shards == 0` or `dim == 0`.
pub fn shard_delta_box(eps: f64, dim: usize, shards: usize) -> Vec<Vec<Interval>> {
    assert!(shards >= 1, "shard count must be positive");
    assert!(dim >= 1, "cannot shard a zero-dimensional region");
    let (lo, hi) = (-eps, eps);
    let cut = |i: usize| -> f64 {
        // Endpoints are pinned exactly so the shard union equals the
        // original box bit-for-bit; interior cuts use one deterministic
        // formula shared by server and workers.
        if i == 0 {
            lo
        } else if i == shards {
            hi
        } else {
            lo + (hi - lo) * (i as f64 / shards as f64)
        }
    };
    (0..shards)
        .map(|i| {
            let mut delta_box = vec![Interval::symmetric(eps); dim];
            delta_box[0] = Interval::new(cut(i), cut(i + 1));
            delta_box
        })
        .collect()
}

/// Verifies one shard of a sharded UAP run: the instance restricted to
/// shard `shard` of [`shard_uap_problem`]'s partition, with an optional
/// proof certificate for that shard's verdict. Server-side local fallback
/// and remote workers both call this, so a shard solved locally is
/// byte-identical to the same shard solved remotely.
///
/// Returns `None` when cancelled at a phase boundary.
///
/// # Panics
///
/// Panics when `shard >= shards` or on the same shape violations as
/// [`verify_uap`].
pub fn verify_uap_shard_certified_with_hooks(
    problem: &UapProblem,
    shard: usize,
    shards: usize,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
    want_certificate: bool,
) -> Option<(UapResult, Option<raven_check::Certificate>)> {
    assert!(shard < shards, "shard index out of range");
    let boxes = shard_uap_problem(problem, shards);
    let delta_box = &boxes[shard];
    if want_certificate {
        let mut sink = CertSink::default();
        let res = verify_uap_with_extra(
            problem,
            delta_box,
            method,
            config,
            None,
            hooks,
            Some(&mut sink),
        )?;
        let cert = sink.into_certificate("uap", res.tier, res.degraded);
        Some((res, cert))
    } else {
        let res = verify_uap_with_extra(problem, delta_box, method, config, None, hooks, None)?;
        Some((res, None))
    }
}

/// Ladder position for tier weakening: higher is more precise.
fn tier_rank(tier: Tier) -> u8 {
    match tier {
        Tier::Analysis => 0,
        Tier::Lp => 1,
        Tier::Milp => 2,
    }
}

/// Soundly merges per-shard UAP results into a verdict for the union of
/// the shard regions.
///
/// Any shared perturbation in the union lies in some shard, so the union's
/// worst-case misclassification count is bounded by the worst shard:
///
/// ```text
/// hamming(union) ≤ min( max_s hamming_s,  k − min_s individually_verified_s )
/// ```
///
/// The merge takes `max_s hamming_s` clamped into
/// `[0, k − min_s individually_verified_s]`. The clamp mirrors the one
/// every shard already applies to its own LP bound; taking
/// `k − min_s iv_s` (rather than the *max* over shards) is what keeps the
/// merge sound — an input only counts as union-robust when **every** shard
/// certifies it individually. Exactness requires every shard exact,
/// degradation is inherited from any shard, the tier is the weakest shard
/// tier (the merged bound is only as strong as its weakest ingredient),
/// and LP sizes take the per-shard maximum — every shard encodes the same
/// network over the same executions, so in the uniform regime the largest
/// shard LP is exactly the whole-box LP and sharded/unsharded verdict
/// bytes agree. The counterexample candidate is taken from the first
/// shard attaining the merged hamming bound.
///
/// # Panics
///
/// Panics when `parts` is empty.
pub fn merge_uap_results(k: usize, parts: &[UapResult]) -> UapResult {
    assert!(!parts.is_empty(), "merge of zero shards");
    let individually_verified = parts
        .iter()
        .map(|p| p.individually_verified)
        .min()
        .expect("non-empty");
    let max_hamming = parts
        .iter()
        .map(|p| p.worst_case_hamming)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_case_hamming = max_hamming.clamp(0.0, (k - individually_verified) as f64);
    let worst = parts
        .iter()
        .find(|p| p.worst_case_hamming >= worst_case_hamming)
        .unwrap_or(&parts[0]);
    let tier = parts
        .iter()
        .map(|p| p.tier)
        .min_by_key(|&t| tier_rank(t))
        .expect("non-empty");
    let mut tier_millis = TierMillis::default();
    for p in parts {
        tier_millis.analysis += p.tier_millis.analysis;
        tier_millis.lp += p.tier_millis.lp;
        tier_millis.milp += p.tier_millis.milp;
    }
    UapResult {
        method: parts[0].method,
        worst_case_accuracy: (k as f64 - worst_case_hamming) / k as f64,
        worst_case_hamming,
        individually_verified,
        solve_millis: parts.iter().map(|p| p.solve_millis).sum(),
        lp_rows: parts.iter().map(|p| p.lp_rows).max().unwrap_or(0),
        lp_vars: parts.iter().map(|p| p.lp_vars).max().unwrap_or(0),
        exact: parts.iter().all(|p| p.exact),
        counterexample_delta: worst.counterexample_delta.clone(),
        tier,
        degraded: parts.iter().any(|p| p.degraded),
        tier_millis,
    }
}

/// The input region of one execution: `z + delta_box` coordinatewise.
fn exec_box(z: &[f64], delta_box: &[Interval]) -> Vec<Interval> {
    z.iter()
        .zip(delta_box)
        .map(|(&zj, d)| Interval::new(zj + d.lo(), zj + d.hi()))
        .collect()
}

/// Verifies a UAP instance with the chosen method.
///
/// # Panics
///
/// Panics when inputs/labels lengths disagree, the batch is empty, or a
/// label is out of range.
pub fn verify_uap(problem: &UapProblem, method: Method, config: &RavenConfig) -> UapResult {
    verify_uap_with_hooks(problem, method, config, &RunHooks::default())
        .expect("default hooks never cancel")
}

/// [`verify_uap`] with cancellation/progress hooks threaded through every
/// phase. Returns `None` when the run was cancelled at a phase boundary
/// (an in-progress solve is never interrupted; no partial result is
/// produced).
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_uap`].
pub fn verify_uap_with_hooks(
    problem: &UapProblem,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
) -> Option<UapResult> {
    let delta_box = vec![Interval::symmetric(problem.eps); problem.plan.input_dim()];
    verify_uap_with_extra(problem, &delta_box, method, config, None, hooks, None)
}

/// [`verify_uap`] that additionally emits a replayable proof certificate
/// for the verdict: LP/MILP dual evidence from a secondary certified solve
/// matched to the verdict's tier, plus the per-neuron DeepPoly relaxation
/// records (RaVeN method only — the I/O formulation discards its analyses).
/// The certificate is `None` when the run produced no certifiable
/// evidence; the [`UapResult`] is byte-for-byte the same verdict the
/// uncertified path computes.
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_uap`].
pub fn verify_uap_certified(
    problem: &UapProblem,
    method: Method,
    config: &RavenConfig,
) -> (UapResult, Option<raven_check::Certificate>) {
    verify_uap_certified_with_hooks(problem, method, config, &RunHooks::default())
        .expect("default hooks never cancel")
}

/// [`verify_uap_certified`] with cancellation/progress hooks. Returns
/// `None` when the run was cancelled at a phase boundary.
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_uap`].
pub fn verify_uap_certified_with_hooks(
    problem: &UapProblem,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
) -> Option<(UapResult, Option<raven_check::Certificate>)> {
    let delta_box = vec![Interval::symmetric(problem.eps); problem.plan.input_dim()];
    let mut sink = CertSink::default();
    let res = verify_uap_with_extra(
        problem,
        &delta_box,
        method,
        config,
        None,
        hooks,
        Some(&mut sink),
    )?;
    let cert = sink.into_certificate("uap", res.tier, res.degraded);
    Some((res, cert))
}

/// Verifies a UAP instance over an explicit shared-perturbation box
/// (`problem.eps` is ignored; the box defines the threat model). Exposed
/// through [`crate::refine::verify_uap_box`] and used by the input-splitting
/// refinement.
///
/// # Panics
///
/// Panics on shape mismatches or out-of-range labels.
pub(crate) fn verify_uap_on_box(
    problem: &UapProblem,
    delta_box: &[Interval],
    method: Method,
    config: &RavenConfig,
) -> UapResult {
    verify_uap_with_extra(
        problem,
        delta_box,
        method,
        config,
        None,
        &RunHooks::default(),
        None,
    )
    .expect("default hooks never cancel")
}

/// Shared implementation: optional exact ℓ1-budget rows on the LP paths,
/// cancellation polled at phase boundaries, optional certificate
/// collection.
#[allow(clippy::too_many_arguments)]
fn verify_uap_with_extra(
    problem: &UapProblem,
    delta_box: &[Interval],
    method: Method,
    config: &RavenConfig,
    l1_budget: Option<f64>,
    hooks: &RunHooks<'_>,
    cert: Option<&mut CertSink>,
) -> Option<UapResult> {
    assert_eq!(
        problem.inputs.len(),
        problem.labels.len(),
        "uap: inputs/labels length mismatch"
    );
    assert!(!problem.inputs.is_empty(), "uap: empty batch");
    assert_eq!(
        delta_box.len(),
        problem.plan.input_dim(),
        "uap: delta box width mismatch"
    );
    let out_dim = problem.plan.output_dim();
    assert!(
        problem.labels.iter().all(|&l| l < out_dim),
        "uap: label out of range"
    );
    let start = Instant::now();
    let k = problem.k();
    let _phase_scope = crate::metrics::PhaseScope::new(hooks);
    if !hooks.enter(Phase::Margins) {
        return None;
    }
    // Per-input individual margins (used directly by the baselines, and for
    // candidate-class pruning by the LP methods). Each input is independent,
    // so the batch fans out across the configured worker threads.
    let margins: Vec<Vec<f64>> = crate::par::map_range(config.threads, k, |i| {
        let ball = exec_box(&problem.inputs[i], delta_box);
        let y = problem.labels[i];
        match method {
            Method::Box => box_margins(&problem.plan, &ball, y),
            Method::ZonotopeIndividual => zonotope_margins(&problem.plan, &ball, y),
            _ => deeppoly_margins(&problem.plan, &ball, y),
        }
    });
    let individually_verified = margins.iter().filter(|m| all_positive(m)).count();
    let result = match method {
        Method::Box | Method::ZonotopeIndividual | Method::DeepPolyIndividual => {
            let millis = start.elapsed().as_secs_f64() * 1e3;
            Some(UapResult {
                method,
                worst_case_accuracy: individually_verified as f64 / k as f64,
                worst_case_hamming: (k - individually_verified) as f64,
                individually_verified,
                solve_millis: millis,
                lp_rows: 0,
                lp_vars: 0,
                exact: true,
                counterexample_delta: None,
                tier: Tier::Analysis,
                degraded: false,
                tier_millis: TierMillis {
                    analysis: millis,
                    ..TierMillis::default()
                },
            })
        }
        Method::IoLp => verify_uap_io(
            problem,
            delta_box,
            config,
            &margins,
            individually_verified,
            start,
            l1_budget,
            hooks,
            cert,
        ),
        Method::Raven => verify_uap_lp(
            problem,
            delta_box,
            method,
            config,
            &margins,
            individually_verified,
            start,
            l1_budget,
            hooks,
            cert,
        ),
    };
    if let Some(res) = &result {
        crate::metrics::record_verdict("uap", res.tier, res.degraded);
    }
    result
}

/// Adds `‖d‖₁ ≤ budget` rows: `t_j ≥ d_j`, `t_j ≥ −d_j`, `Σ t_j ≤ budget`.
fn add_l1_budget(lp: &mut LpProblem, d_vars: &[VarId], budget: f64) {
    let mut sum = LinExpr::new();
    for &d in d_vars {
        let t = lp.add_var(0.0, budget);
        lp.add_constraint(LinExpr::new().term(1.0, t).term(-1.0, d), Sense::Ge, 0.0);
        lp.add_constraint(LinExpr::new().term(1.0, t).term(1.0, d), Sense::Ge, 0.0);
        sum.push(1.0, t);
    }
    lp.add_constraint(sum, Sense::Le, budget);
}

/// The "I/O formulation" baseline: each execution's margins are bounded by
/// DeepPoly's symbolic *input-level* linear bounds (no per-layer variables),
/// and executions are coupled only through the shared perturbation `d`.
/// This mirrors the prior-work baseline the paper compares against: strictly
/// stronger than verifying every input individually, but blind to the
/// cross-execution structure DiffPoly tracks layer by layer.
#[allow(clippy::too_many_arguments)]
fn verify_uap_io(
    problem: &UapProblem,
    delta_box: &[Interval],
    config: &RavenConfig,
    margins: &[Vec<f64>],
    individually_verified: usize,
    start: Instant,
    l1_budget: Option<f64>,
    hooks: &RunHooks<'_>,
    cert: Option<&mut CertSink>,
) -> Option<UapResult> {
    if !hooks.enter(Phase::Analysis) {
        return None;
    }
    let k = problem.k();
    let plan = &problem.plan;
    let out_dim = plan.output_dim();
    let mut lp = LpProblem::new();
    let d_vars: Vec<VarId> = delta_box
        .iter()
        .map(|d| lp.add_var(d.lo(), d.hi()))
        .collect();
    if let Some(budget) = l1_budget {
        add_l1_budget(&mut lp, &d_vars, budget);
    }
    // Candidate adversarial classes and symbolic input-level margin bounds
    // per execution. The per-execution DeepPoly back-substitutions dominate
    // this method's analysis cost and are independent, so they fan out
    // across workers; the LP assembly below stays sequential (and therefore
    // deterministic) regardless of the thread count.
    let sym_rows = crate::par::map_range(config.threads, k, |i| {
        let y = problem.labels[i];
        let mut candidates = Vec::new();
        let mut mi = 0;
        for c in 0..out_dim {
            if c == y {
                continue;
            }
            if margins[i][mi] <= 0.0 {
                candidates.push((c, mi));
            }
            mi += 1;
        }
        if candidates.is_empty() {
            return None;
        }
        let mplan = crate::margin::margin_plan(plan, y);
        let ball = exec_box(&problem.inputs[i], delta_box);
        let dp = DeepPolyAnalysis::run(&mplan, &ball);
        let sym = dp.input_bounds(&mplan);
        let concrete = sym.concretize(&ball);
        Some((candidates, sym, concrete))
    });
    let mut objective = LinExpr::new();
    let mut any_indicator = false;
    for (i, row_data) in sym_rows.iter().enumerate() {
        let Some((candidates, sym, concrete)) = row_data else {
            continue;
        };
        let z_i = lp.add_binary_var();
        objective.push(1.0, z_i);
        any_indicator = true;
        let mut z_row = LinExpr::new().term(1.0, z_i);
        for &(_, row) in candidates {
            // Margin variable with input-level symbolic bounds, where the
            // input is z_i + d; the certified individual margin bounds are
            // valid bounds for the variable itself.
            let m_var = lp.add_var(margins[i][row], concrete[row].hi().max(margins[i][row]));
            let mut lower = LinExpr::new().term(1.0, m_var);
            let mut lo_rhs = sym.lower_const[row];
            for (j, &coef) in sym.lower_coeffs.row(row).iter().enumerate() {
                if coef != 0.0 {
                    lower.push(-coef, d_vars[j]);
                    lo_rhs += coef * problem.inputs[i][j];
                }
            }
            lp.add_constraint(lower, Sense::Ge, lo_rhs);
            let mut upper = LinExpr::new().term(1.0, m_var);
            let mut hi_rhs = sym.upper_const[row];
            for (j, &coef) in sym.upper_coeffs.row(row).iter().enumerate() {
                if coef != 0.0 {
                    upper.push(-coef, d_vars[j]);
                    hi_rhs += coef * problem.inputs[i][j];
                }
            }
            lp.add_constraint(upper, Sense::Le, hi_rhs);
            // w = 1 forces the margin non-positive.
            let w_ic = lp.add_binary_var();
            z_row.push(-1.0, w_ic);
            let big_m = concrete[row].hi().max(0.0) + 1e-6;
            let row_expr = LinExpr::new().term(1.0, m_var).term(big_m, w_ic);
            lp.add_constraint(row_expr, Sense::Le, big_m);
        }
        lp.add_constraint(z_row, Sense::Le, 0.0);
    }
    let lp_rows = lp.num_constraints();
    let lp_vars = lp.num_vars();
    if !any_indicator {
        let millis = start.elapsed().as_secs_f64() * 1e3;
        return Some(UapResult {
            method: Method::IoLp,
            worst_case_accuracy: 1.0,
            worst_case_hamming: 0.0,
            individually_verified,
            solve_millis: millis,
            lp_rows,
            lp_vars,
            exact: true,
            counterexample_delta: None,
            tier: Tier::Analysis,
            degraded: false,
            tier_millis: TierMillis {
                analysis: millis,
                ..TierMillis::default()
            },
        });
    }
    if !hooks.enter(Phase::Solve) {
        return None;
    }
    let analysis_millis = start.elapsed().as_secs_f64() * 1e3;
    lp.set_objective(Direction::Maximize, objective);
    let spec = solve_spec_with_witness(
        &lp,
        config,
        &d_vars,
        &hooks.lp_budget(),
        &mut BasisCache::new(),
    );
    if hooks.cancelled() {
        return None;
    }
    if let Some(sink) = cert {
        sink.solve_lp(&lp, spec.tier, config, hooks);
    }
    // Executions without indicators are proven individually robust, so the
    // adversary count can never exceed the union bound — this is also the
    // sound answer the analysis tier falls back to on total exhaustion.
    let max_misclassified = spec.bound.clamp(0.0, (k - individually_verified) as f64);
    Some(UapResult {
        method: Method::IoLp,
        worst_case_accuracy: (k as f64 - max_misclassified) / k as f64,
        worst_case_hamming: max_misclassified,
        individually_verified,
        solve_millis: start.elapsed().as_secs_f64() * 1e3,
        lp_rows,
        lp_vars,
        exact: spec.exact,
        counterexample_delta: spec.witness,
        tier: spec.tier,
        degraded: spec.degraded,
        tier_millis: TierMillis {
            analysis: analysis_millis,
            lp: spec.lp_millis,
            milp: spec.milp_millis,
        },
    })
}

#[allow(clippy::too_many_arguments)]
fn verify_uap_lp(
    problem: &UapProblem,
    delta_box: &[Interval],
    method: Method,
    config: &RavenConfig,
    margins: &[Vec<f64>],
    individually_verified: usize,
    start: Instant,
    l1_budget: Option<f64>,
    hooks: &RunHooks<'_>,
    mut cert: Option<&mut CertSink>,
) -> Option<UapResult> {
    let k = problem.k();
    let plan = &problem.plan;
    let out_dim = plan.output_dim();
    if !hooks.enter(Phase::Analysis) {
        return None;
    }
    // Per-execution DeepPoly analyses over the individual balls, fanned out
    // across the configured worker threads.
    let dps: Vec<DeepPolyAnalysis> = crate::par::map(config.threads, &problem.inputs, |z| {
        DeepPolyAnalysis::run(plan, &exec_box(z, delta_box))
    });
    if let Some(sink) = cert.as_deref_mut() {
        let refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
        sink.record_analyses(plan, &refs);
    }
    if !hooks.enter(Phase::DiffPoly) {
        return None;
    }
    // DiffPoly pairs per the configured strategy; each pair only reads the
    // already-computed per-execution analyses, so pairs are independent.
    let pair_indices = config.pairs.pairs(k);
    let diffs: Vec<(usize, usize, DiffPolyAnalysis)> =
        crate::par::map(config.threads, &pair_indices, |&(a, b)| {
            let delta: Vec<Interval> = problem.inputs[a]
                .iter()
                .zip(&problem.inputs[b])
                .map(|(&za, &zb)| Interval::point(za - zb))
                .collect();
            (a, b, DiffPolyAnalysis::run(plan, &dps[a], &dps[b], &delta))
        });
    if !hooks.enter(Phase::Encode) {
        return None;
    }
    // Build the LP.
    let mut lp = LpProblem::new();
    let d_vars: Vec<VarId> = delta_box
        .iter()
        .map(|d| lp.add_var(d.lo(), d.hi()))
        .collect();
    if let Some(budget) = l1_budget {
        add_l1_budget(&mut lp, &d_vars, budget);
    }
    let input_exprs: Vec<Vec<Expr>> = problem
        .inputs
        .iter()
        .map(|z| {
            z.iter()
                .zip(&d_vars)
                .map(|(&zj, &dj)| Expr::constant(zj).plus_var(1.0, dj))
                .collect()
        })
        .collect();
    let dp_refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
    let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
        diffs.iter().map(|(a, b, d)| (*a, *b, d)).collect();
    let encoding = encode(&mut lp, plan, &input_exprs, &dp_refs, &pair_refs);
    // Spec: maximize the number of misclassified executions.
    let mut objective = LinExpr::new();
    let mut any_indicator = false;
    for (i, &y) in problem.labels.iter().enumerate() {
        // Candidate adversarial classes: those not individually dominated.
        let mut candidates = Vec::new();
        let mut mi = 0;
        for c in 0..out_dim {
            if c == y {
                continue;
            }
            if margins[i][mi] <= 0.0 {
                candidates.push(c);
            }
            mi += 1;
        }
        if candidates.is_empty() {
            // Provably robust individually: cannot be misclassified.
            continue;
        }
        let z_i = lp.add_binary_var();
        objective.push(1.0, z_i);
        any_indicator = true;
        // z_i ≤ Σ_c w_ic, with w_ic = 1 forcing o_c ≥ o_y.
        let mut z_row = LinExpr::new().term(1.0, z_i);
        let outs = &encoding.execs[i].outputs;
        for &c in &candidates {
            let w_ic = lp.add_binary_var();
            z_row.push(-1.0, w_ic);
            // o_y − o_c + M·w ≤ M where M upper-bounds o_y − o_c.
            let big_m = (dps[i].output()[y].hi() - dps[i].output()[c].lo()).max(0.0) + 1e-6;
            let row = LinExpr::new()
                .term(1.0, outs[y])
                .term(-1.0, outs[c])
                .term(big_m, w_ic);
            lp.add_constraint(row, Sense::Le, big_m);
        }
        lp.add_constraint(z_row, Sense::Le, 0.0);
    }
    let lp_rows = lp.num_constraints();
    let lp_vars = lp.num_vars();
    if !any_indicator {
        // Everything individually robust; no adversary possible.
        let millis = start.elapsed().as_secs_f64() * 1e3;
        return Some(UapResult {
            method,
            worst_case_accuracy: 1.0,
            worst_case_hamming: 0.0,
            individually_verified,
            solve_millis: millis,
            lp_rows,
            lp_vars,
            exact: true,
            counterexample_delta: None,
            tier: Tier::Analysis,
            degraded: false,
            tier_millis: TierMillis {
                analysis: millis,
                ..TierMillis::default()
            },
        });
    }
    if !hooks.enter(Phase::Solve) {
        return None;
    }
    let analysis_millis = start.elapsed().as_secs_f64() * 1e3;
    lp.set_objective(Direction::Maximize, objective);
    // Solve: MILP when configured, degrading down the ladder (anytime MILP
    // bound → LP relaxation → union bound) when the budget runs out; every
    // rung only over-counts misclassifications, so the result stays sound.
    let spec = solve_spec_with_witness(
        &lp,
        config,
        &d_vars,
        &hooks.lp_budget(),
        &mut BasisCache::new(),
    );
    if hooks.cancelled() {
        return None;
    }
    if let Some(sink) = cert {
        sink.solve_lp(&lp, spec.tier, config, hooks);
    }
    let max_misclassified = spec.bound.clamp(0.0, (k - individually_verified) as f64);
    Some(UapResult {
        method,
        worst_case_accuracy: (k as f64 - max_misclassified) / k as f64,
        worst_case_hamming: max_misclassified,
        individually_verified,
        solve_millis: start.elapsed().as_secs_f64() * 1e3,
        lp_rows,
        lp_vars,
        exact: spec.exact,
        counterexample_delta: spec.witness,
        tier: spec.tier,
        degraded: spec.degraded,
        tier_millis: TierMillis {
            analysis: analysis_millis,
            lp: spec.lp_millis,
            milp: spec.milp_millis,
        },
    })
}

/// A targeted-UAP verification instance: the adversary tries to force as
/// many executions as possible into the designated `target` class with one
/// shared perturbation.
#[derive(Debug, Clone)]
pub struct TargetedUapProblem {
    /// The underlying untargeted instance (inputs, labels, eps, plan).
    pub base: UapProblem,
    /// The class the adversary wants everything classified as.
    pub target: usize,
}

/// Outcome of a targeted UAP verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetedUapResult {
    /// The method that produced this result.
    pub method: Method,
    /// Certified upper bound on the number of executions the adversary can
    /// simultaneously force into the target class (fractional under LP
    /// relaxation).
    pub max_forced: f64,
    /// Wall-clock milliseconds spent.
    pub solve_millis: f64,
    /// Whether the bound is exact over the indicator variables.
    pub exact: bool,
}

/// Verifies a targeted UAP instance.
///
/// Inputs already labelled `target` are excluded from the count (forcing
/// them is vacuous). Only the relational methods are meaningful here;
/// non-relational baselines are mapped to per-execution margin checks
/// against the target class.
///
/// # Panics
///
/// Panics on inconsistent shapes or an out-of-range target class.
pub fn verify_targeted_uap(
    problem: &TargetedUapProblem,
    method: Method,
    config: &RavenConfig,
) -> TargetedUapResult {
    verify_targeted_uap_all(&problem.base, &[problem.target], method, config)
        .pop()
        .expect("one target in, one result out")
}

/// Verifies one targeted UAP instance per entry of `targets`, sharing all
/// target-independent work across them: the per-input margin analyses, the
/// DeepPoly/DiffPoly passes, and the relational network encoding are
/// computed once; each target then appends only its own indicator
/// variables and rows to a clone of the shared relaxation. The per-label
/// MILPs also share one basis cache, so each solve after the first
/// warm-starts from the previous root basis (the relaxation prefix is
/// identical across targets).
///
/// Results are returned in `targets` order and are identical to calling
/// [`verify_targeted_uap`] per target (basis reuse is a pure accelerator).
///
/// # Panics
///
/// Panics on inconsistent shapes or an out-of-range target class.
pub fn verify_targeted_uap_all(
    base: &UapProblem,
    targets: &[usize],
    method: Method,
    config: &RavenConfig,
) -> Vec<TargetedUapResult> {
    let out_dim = base.plan.output_dim();
    for &t in targets {
        assert!(t < out_dim, "target class out of range");
    }
    assert_eq!(base.inputs.len(), base.labels.len(), "length mismatch");
    let start = Instant::now();
    // Per-input margins against *all* other classes, computed once: the
    // analyses are target-independent, only the row lookup differs per
    // target. Independent per input, so they fan out across workers; the
    // vulnerable lists are assembled from the ordered results, so they are
    // identical for any thread count.
    let margins: Vec<Vec<f64>> = crate::par::map_range(config.threads, base.inputs.len(), |i| {
        let y = base.labels[i];
        let ball = linf_ball(&base.inputs[i], base.eps, f64::NEG_INFINITY, f64::INFINITY);
        match method {
            Method::Box => box_margins(&base.plan, &ball, y),
            Method::ZonotopeIndividual => zonotope_margins(&base.plan, &ball, y),
            _ => deeppoly_margins(&base.plan, &ball, y),
        }
    });
    // Executions that could possibly be forced into `target`: margin to the
    // target class not provably positive (inputs already labelled `target`
    // are excluded — forcing them is vacuous).
    let vulnerable_for = |target: usize| -> Vec<usize> {
        (0..base.inputs.len())
            .filter(|&i| {
                let y = base.labels[i];
                if y == target {
                    return false;
                }
                // Margin row index of the target class within the label-y
                // ordering.
                let row = if target < y { target } else { target - 1 };
                margins[i][row] <= 0.0
            })
            .collect()
    };
    let relational = matches!(method, Method::IoLp | Method::Raven);
    let needs_lp = relational && targets.iter().any(|&t| !vulnerable_for(t).is_empty());
    if !needs_lp {
        return targets
            .iter()
            .map(|&t| TargetedUapResult {
                method,
                max_forced: vulnerable_for(t).len() as f64,
                solve_millis: start.elapsed().as_secs_f64() * 1e3,
                exact: true,
            })
            .collect();
    }
    // Relational LP: shared perturbation + per-exec encodings, built once;
    // indicator variables are per target.
    let dps: Vec<DeepPolyAnalysis> = crate::par::map(config.threads, &base.inputs, |z| {
        let ball = linf_ball(z, base.eps, f64::NEG_INFINITY, f64::INFINITY);
        DeepPolyAnalysis::run(&base.plan, &ball)
    });
    let pair_indices = match method {
        Method::Raven => config.pairs.pairs(base.k()),
        _ => Vec::new(),
    };
    let diffs: Vec<(usize, usize, DiffPolyAnalysis)> =
        crate::par::map(config.threads, &pair_indices, |&(a, b)| {
            let delta: Vec<Interval> = base.inputs[a]
                .iter()
                .zip(&base.inputs[b])
                .map(|(&za, &zb)| Interval::point(za - zb))
                .collect();
            (
                a,
                b,
                DiffPolyAnalysis::run(&base.plan, &dps[a], &dps[b], &delta),
            )
        });
    let mut shared = LpProblem::new();
    let d_vars: Vec<VarId> = (0..base.plan.input_dim())
        .map(|_| shared.add_var(-base.eps, base.eps))
        .collect();
    let input_exprs: Vec<Vec<Expr>> = base
        .inputs
        .iter()
        .map(|z| {
            z.iter()
                .zip(&d_vars)
                .map(|(&zj, &dj)| Expr::constant(zj).plus_var(1.0, dj))
                .collect()
        })
        .collect();
    let dp_refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
    let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
        diffs.iter().map(|(a, b, d)| (*a, *b, d)).collect();
    let encoding = encode(&mut shared, &base.plan, &input_exprs, &dp_refs, &pair_refs);
    // One basis cache across every per-label MILP: the shared relaxation is
    // a common prefix of each target's problem, so a root basis from one
    // target prefix-extends into the next (stale bases cold-start).
    let mut cache = BasisCache::new();
    targets
        .iter()
        .map(|&target| {
            let vulnerable = vulnerable_for(target);
            if vulnerable.is_empty() {
                return TargetedUapResult {
                    method,
                    max_forced: 0.0,
                    solve_millis: start.elapsed().as_secs_f64() * 1e3,
                    exact: true,
                };
            }
            let mut lp = shared.clone();
            let mut objective = LinExpr::new();
            for &i in &vulnerable {
                let y = base.labels[i];
                let outs = &encoding.execs[i].outputs;
                let z_i = lp.add_binary_var();
                objective.push(1.0, z_i);
                // z = 1 requires o_target ≥ o_y.
                let big_m =
                    (dps[i].output()[y].hi() - dps[i].output()[target].lo()).max(0.0) + 1e-6;
                let row = LinExpr::new()
                    .term(1.0, outs[y])
                    .term(-1.0, outs[target])
                    .term(big_m, z_i);
                lp.add_constraint(row, Sense::Le, big_m);
            }
            lp.set_objective(Direction::Maximize, objective);
            let (bound, exact) = solve_spec(&lp, config, &mut cache);
            TargetedUapResult {
                method,
                max_forced: bound.clamp(0.0, vulnerable.len() as f64),
                solve_millis: start.elapsed().as_secs_f64() * 1e3,
                exact,
            }
        })
        .collect()
}

/// Solves the counting spec, returning `(bound, exact)`.
fn solve_spec(lp: &LpProblem, config: &RavenConfig, cache: &mut BasisCache) -> (f64, bool) {
    let spec = solve_spec_with_witness(lp, config, &[], &Budget::unlimited(), cache);
    (spec.bound, spec.exact)
}

/// Outcome of one walk down the spec-solve degradation ladder.
struct SpecSolve {
    /// Sound upper bound on the misclassification count (∞ when no solve
    /// finished — the caller clamps to the union bound).
    bound: f64,
    /// Whether the bound is exact over the indicators (MILP optimum).
    exact: bool,
    /// Optimal/incumbent values of the witness variables, when available.
    witness: Option<Vec<f64>>,
    /// Deepest ladder tier that produced `bound`.
    tier: Tier,
    /// Whether a budget forced the result below the configured precision.
    degraded: bool,
    /// Wall-clock spent inside the LP relaxation solve.
    lp_millis: f64,
    /// Wall-clock spent inside the MILP solve.
    milp_millis: f64,
}

/// Solves the counting spec down the degradation ladder, additionally
/// extracting the optimal values of `witness_vars` (the shared
/// perturbation) when available.
///
/// Ladder: MILP optimum (exact) → MILP anytime dual bound (budget ran out
/// mid-search but the bound is sound) → LP relaxation → ∞ (caller clamps
/// to the union bound). Each rung is a sound over-approximation of the
/// adversary, so degradation never costs soundness, only tightness.
///
/// `cache` carries an optimal basis between related MILP solves (branch &
/// bound warm-starts its root from it and deposits its own root basis
/// back); pass a fresh [`BasisCache`] when there is no related prior
/// solve.
fn solve_spec_with_witness(
    lp: &LpProblem,
    config: &RavenConfig,
    witness_vars: &[VarId],
    budget: &Budget<'_>,
    cache: &mut BasisCache,
) -> SpecSolve {
    let extract = |sol: &raven_lp::Solution| {
        (!witness_vars.is_empty() && !sol.values.is_empty())
            .then(|| witness_vars.iter().map(|&v| sol.value(v)).collect())
    };
    let mut milp_millis = 0.0;
    let mut degraded = false;
    if config.spec_milp {
        let t0 = Instant::now();
        let res = lp.solve_milp_cached(&config.milp, budget, cache);
        milp_millis = t0.elapsed().as_secs_f64() * 1e3;
        match res {
            Ok(sol) if sol.status == SolveStatus::Optimal => {
                let witness = extract(&sol);
                return SpecSolve {
                    bound: sol.objective,
                    exact: true,
                    witness,
                    tier: Tier::Milp,
                    degraded: false,
                    lp_millis: 0.0,
                    milp_millis,
                };
            }
            Ok(sol) => {
                if let SolveStatus::BudgetExceeded { best_bound } = sol.status {
                    degraded = true;
                    if best_bound.is_finite() {
                        // Anytime dual bound: every open node's parent
                        // relaxation and the incumbent are covered, so the
                        // true count is ≤ best_bound.
                        let witness = extract(&sol);
                        return SpecSolve {
                            bound: best_bound,
                            exact: false,
                            witness,
                            tier: Tier::Milp,
                            degraded: true,
                            lp_millis: 0.0,
                            milp_millis,
                        };
                    }
                }
                // Not even the root relaxation finished (or an unexpected
                // status): fall to the LP relaxation rung.
            }
            // Iteration limits / numerical breakdown fall through to the
            // LP relaxation, which is sound but may be fractional.
            Err(_) => {}
        }
    }
    let t0 = Instant::now();
    let res = lp.solve_with_budget(&config.simplex, budget);
    let lp_millis = t0.elapsed().as_secs_f64() * 1e3;
    match res {
        Ok(sol) if sol.status == SolveStatus::Optimal => {
            let witness = extract(&sol);
            SpecSolve {
                bound: sol.objective,
                exact: false,
                witness,
                tier: Tier::Lp,
                degraded,
                lp_millis,
                milp_millis,
            }
        }
        // Budget died inside the relaxation too: the only rung left is the
        // analysis-phase union bound (the caller's clamp).
        Err(LpError::BudgetExceeded) => SpecSolve {
            bound: f64::INFINITY,
            exact: false,
            witness: None,
            tier: Tier::Analysis,
            degraded: true,
            lp_millis,
            milp_millis,
        },
        // Numerical failure or unexpected status: fall back to the trivial
        // sound answer "everything not individually verified may flip".
        _ => SpecSolve {
            bound: f64::INFINITY,
            exact: false,
            witness: None,
            tier: Tier::Analysis,
            degraded,
            lp_millis,
            milp_millis,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::data::synth_digits;
    use raven_nn::train::{train_classifier, TrainConfig};
    use raven_nn::{ActKind, NetworkBuilder};

    fn trained_problem(eps: f64, k: usize) -> (UapProblem, raven_nn::Network) {
        let ds = synth_digits(4, 3, 90, 0.06, 13);
        let mut net = NetworkBuilder::new(16)
            .dense(12, 1)
            .activation(ActKind::Relu)
            .dense(8, 2)
            .activation(ActKind::Relu)
            .dense(3, 3)
            .build();
        train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 40,
                lr: 0.4,
                momentum: 0.0,
                batch_size: 8,
                seed: 7,
                adversarial: None,
            },
        );
        // Pick k correctly-classified inputs.
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for (x, &y) in ds.inputs.iter().zip(&ds.labels) {
            if net.classify(x) == y {
                inputs.push(x.clone());
                labels.push(y);
                if inputs.len() == k {
                    break;
                }
            }
        }
        assert_eq!(inputs.len(), k, "not enough correctly classified inputs");
        (
            UapProblem {
                plan: net.to_plan(),
                inputs,
                labels,
                eps,
            },
            net,
        )
    }

    #[test]
    fn methods_follow_the_provable_precision_chains() {
        let (problem, _) = trained_problem(0.08, 3);
        let config = RavenConfig::default();
        let acc = |m| verify_uap(&problem, m, &config).worst_case_accuracy;
        let bx = acc(Method::Box);
        let zn = acc(Method::ZonotopeIndividual);
        let dp = acc(Method::DeepPolyIndividual);
        let io = acc(Method::IoLp);
        let rv = acc(Method::Raven);
        // Box ≤ Zonotope and Box ≤ DeepPoly ≤ IoLp ≤ RaVeN (DeepZ and
        // DeepPoly are incomparable in theory, so no assertion between them).
        assert!(bx <= zn + 1e-9, "box {bx} > zonotope {zn}");
        assert!(bx <= dp + 1e-9, "box {bx} > deeppoly {dp}");
        assert!(dp <= io + 1e-9, "deeppoly {dp} > io-lp {io}");
        assert!(io <= rv + 1e-9, "io-lp {io} > raven {rv}");
    }

    #[test]
    fn certificate_is_below_attack_upper_bound() {
        let (problem, net) = trained_problem(0.1, 3);
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        let attack = raven_nn::attack::uap(&net, &problem.inputs, &problem.labels, 0.1, 15, 0.02);
        assert!(
            res.worst_case_accuracy <= attack.accuracy + 1e-9,
            "certified {} must lower-bound empirical {}",
            res.worst_case_accuracy,
            attack.accuracy
        );
    }

    #[test]
    fn tiny_eps_certifies_everything() {
        let (problem, _) = trained_problem(1e-5, 3);
        for m in Method::all() {
            let res = verify_uap(&problem, m, &RavenConfig::default());
            assert!(
                (res.worst_case_accuracy - 1.0).abs() < 1e-9,
                "{m} failed at tiny eps: {}",
                res.worst_case_accuracy
            );
        }
    }

    #[test]
    fn hamming_is_complement_of_accuracy() {
        let (problem, _) = trained_problem(0.12, 3);
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        let k = problem.k() as f64;
        assert!((res.worst_case_hamming - k * (1.0 - res.worst_case_accuracy)).abs() < 1e-9);
    }

    #[test]
    fn targeted_uap_is_bounded_by_vulnerable_count() {
        let (problem, _) = trained_problem(0.1, 3);
        for target in 0..3 {
            let tp = TargetedUapProblem {
                base: problem.clone(),
                target,
            };
            let dp = verify_targeted_uap(&tp, Method::DeepPolyIndividual, &RavenConfig::default());
            let rv = verify_targeted_uap(&tp, Method::Raven, &RavenConfig::default());
            // The relational bound can only be tighter (smaller).
            assert!(
                rv.max_forced <= dp.max_forced + 1e-9,
                "target {target}: raven {} > deeppoly {}",
                rv.max_forced,
                dp.max_forced
            );
            assert!(rv.max_forced >= -1e-9);
        }
    }

    #[test]
    fn targeted_uap_tiny_eps_forces_nothing() {
        let (problem, _) = trained_problem(1e-6, 3);
        let tp = TargetedUapProblem {
            base: problem,
            target: 0,
        };
        let rv = verify_targeted_uap(&tp, Method::Raven, &RavenConfig::default());
        assert_eq!(rv.max_forced, 0.0);
        assert!(rv.exact);
    }

    #[test]
    fn l1_budget_only_tightens_and_is_sound() {
        let (problem, net) = trained_problem(0.12, 3);
        let linf = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        // A huge ℓ1 budget changes nothing; a small one can only certify
        // more.
        let loose = verify_uap_l1(&problem, 1e6, Method::Raven, &RavenConfig::default());
        assert!((loose.worst_case_accuracy - linf.worst_case_accuracy).abs() < 1e-6);
        let tight = verify_uap_l1(&problem, 0.2, Method::Raven, &RavenConfig::default());
        assert!(tight.worst_case_accuracy >= linf.worst_case_accuracy - 1e-9);
        // Soundness vs sampled ℓ1-bounded shared perturbations: put the
        // whole budget on one coordinate at a time.
        let budget = 0.2f64;
        for j in 0..problem.plan.input_dim() {
            for sign in [-1.0, 1.0] {
                let mut d = vec![0.0; problem.plan.input_dim()];
                d[j] = sign * budget.min(problem.eps);
                let acc = replay_uap_delta(&net, &problem.inputs, &problem.labels, &d);
                assert!(
                    tight.worst_case_accuracy <= acc + 1e-9,
                    "l1 certificate {} exceeds concrete {acc}",
                    tight.worst_case_accuracy
                );
            }
        }
    }

    #[test]
    fn zero_l1_budget_certifies_clean_batch() {
        let (problem, _) = trained_problem(0.3, 3);
        let res = verify_uap_l1(&problem, 0.0, Method::Raven, &RavenConfig::default());
        assert!(
            (res.worst_case_accuracy - 1.0).abs() < 1e-9,
            "zero budget must certify a correctly classified batch: {}",
            res.worst_case_accuracy
        );
    }

    #[test]
    fn counterexample_delta_sandwiches_the_certificate() {
        let (problem, net) = trained_problem(0.12, 3);
        let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        if let Some(delta) = &res.counterexample_delta {
            assert!(delta.iter().all(|d| d.abs() <= problem.eps + 1e-9));
            let replay = replay_uap_delta(&net, &problem.inputs, &problem.labels, delta);
            assert!(
                res.worst_case_accuracy <= replay + 1e-9,
                "certified {} exceeds replayed {replay}",
                res.worst_case_accuracy
            );
        } else {
            // No LP was needed: everything was individually robust.
            assert_eq!(res.worst_case_accuracy, 1.0);
        }
    }

    #[test]
    fn hooks_cancel_and_report_phases() {
        use crate::hooks::RunHooks;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;
        let (problem, _) = trained_problem(0.1, 3);
        let config = RavenConfig::default();
        // A pre-set cancel flag stops the run before any work.
        let cancel = AtomicBool::new(true);
        let hooks = RunHooks::default().with_cancel(&cancel);
        assert!(verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks).is_none());
        // Cancelling after the margins phase stops before the solve.
        let cancel = AtomicBool::new(false);
        let seen: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let observer = |p: Phase| {
            seen.lock().unwrap().push(p.name());
            if p == Phase::Analysis {
                cancel.store(true, Ordering::SeqCst);
            }
        };
        let hooks = RunHooks::default()
            .with_cancel(&cancel)
            .with_progress(&observer);
        assert!(verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks).is_none());
        assert_eq!(*seen.lock().unwrap(), vec!["margins", "analysis"]);
        // Unset hooks reproduce the plain result exactly.
        let plain = verify_uap(&problem, Method::Raven, &config);
        let hooked =
            verify_uap_with_hooks(&problem, Method::Raven, &config, &RunHooks::default()).unwrap();
        assert_eq!(plain.worst_case_accuracy, hooked.worst_case_accuracy);
        assert_eq!(plain.counterexample_delta, hooked.counterexample_delta);
    }

    #[test]
    fn lp_relaxation_is_no_tighter_than_milp() {
        let (problem, _) = trained_problem(0.1, 3);
        let milp = verify_uap(&problem, Method::Raven, &RavenConfig::default());
        let lp = verify_uap(
            &problem,
            Method::Raven,
            &RavenConfig {
                spec_milp: false,
                ..RavenConfig::default()
            },
        );
        assert!(lp.worst_case_accuracy <= milp.worst_case_accuracy + 1e-7);
        assert!(!lp.exact || lp.worst_case_accuracy == 1.0);
    }

    #[test]
    fn warm_starts_never_change_the_verdict_bytes() {
        // Warm-started node relaxations are a pure accelerator. Two
        // guarantees, tested at an eps where the MILP actually branches:
        //
        // * for a fixed config the rendered verdict JSON is byte-identical
        //   at any thread count (the solve is sequential; threads only fan
        //   out the analyses);
        // * toggling warm starts changes no verdict field except possibly
        //   `counterexample_delta` — alternate optimal vertices are equally
        //   valid attack candidates, but the certified bound, tier, and
        //   exactness must agree to the last bit.
        let (problem, _) = trained_problem(0.12, 4);
        let verdict = |warm_start: bool, threads: usize| {
            let config = RavenConfig {
                threads,
                milp: raven_lp::MilpOptions {
                    warm_start,
                    ..raven_lp::MilpOptions::default()
                },
                ..RavenConfig::default()
            };
            let res = verify_uap(&problem, Method::Raven, &config);
            crate::report::uap_verdict_json(problem.k(), problem.eps, &res).to_string()
        };
        let warm = verdict(true, 1);
        let cold = verdict(false, 1);
        for threads in [2, 4] {
            assert_eq!(warm, verdict(true, threads), "warm diverged at {threads}");
            assert_eq!(cold, verdict(false, threads), "cold diverged at {threads}");
        }
        let strip_witness = |v: &str| {
            let json = raven_json::Json::parse(v).expect("verdict parses");
            [
                "verified",
                "worst_case_accuracy",
                "worst_case_hamming",
                "individually_verified",
                "exact",
                "tier",
                "degraded",
                "lp_rows",
                "lp_vars",
            ]
            .iter()
            .map(|k| json.get(k).expect("field present").to_string())
            .collect::<Vec<_>>()
        };
        assert_eq!(strip_witness(&warm), strip_witness(&cold));
    }

    #[test]
    fn shards_partition_the_region_exactly() {
        let (problem, _) = trained_problem(0.08, 3);
        for shards in [1, 2, 3, 5, 8] {
            let boxes = shard_uap_problem(&problem, shards);
            assert_eq!(boxes.len(), shards);
            // Endpoints are pinned exactly and slices tile coordinate 0.
            assert_eq!(boxes[0][0].lo(), -problem.eps);
            assert_eq!(boxes[shards - 1][0].hi(), problem.eps);
            for w in boxes.windows(2) {
                assert_eq!(w[0][0].hi(), w[1][0].lo(), "slices must tile");
            }
            // Every other coordinate keeps the full range.
            for b in &boxes {
                for d in &b[1..] {
                    assert_eq!((d.lo(), d.hi()), (-problem.eps, problem.eps));
                }
            }
            // Server and worker derive the same boxes from the scalars.
            let raw = shard_delta_box(problem.eps, problem.plan.input_dim(), shards);
            for (a, b) in boxes.iter().zip(&raw) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!((x.lo(), x.hi()), (y.lo(), y.hi()));
                }
            }
        }
    }

    #[test]
    fn merged_shard_verdict_is_sound_and_byte_stable() {
        // In the fully-verified regime every shard certifies everything,
        // and the merged verdict must be byte-identical to the whole-box
        // run (the service's sharded/unsharded byte-identity invariant).
        let (problem, _) = trained_problem(1e-4, 3);
        let config = RavenConfig::default();
        let whole = verify_uap(&problem, Method::Raven, &config);
        for shards in [2, 4] {
            let parts: Vec<UapResult> = (0..shards)
                .map(|s| {
                    verify_uap_shard_certified_with_hooks(
                        &problem,
                        s,
                        shards,
                        Method::Raven,
                        &config,
                        &RunHooks::default(),
                        false,
                    )
                    .expect("default hooks never cancel")
                    .0
                })
                .collect();
            let merged = merge_uap_results(problem.k(), &parts);
            let whole_v = crate::report::uap_verdict_json(problem.k(), problem.eps, &whole);
            let merged_v = crate::report::uap_verdict_json(problem.k(), problem.eps, &merged);
            assert_eq!(whole_v.to_string(), merged_v.to_string());
        }
        // At an adversarial eps the merged bound must stay sound: no shard
        // can certify more than the whole box allows, so the merged
        // accuracy is a valid lower bound for the union.
        let (problem, _) = trained_problem(0.12, 3);
        let whole = verify_uap(&problem, Method::Raven, &config);
        let parts: Vec<UapResult> = (0..3)
            .map(|s| {
                verify_uap_shard_certified_with_hooks(
                    &problem,
                    s,
                    3,
                    Method::Raven,
                    &config,
                    &RunHooks::default(),
                    false,
                )
                .expect("default hooks never cancel")
                .0
            })
            .collect();
        let merged = merge_uap_results(problem.k(), &parts);
        assert!(
            merged.worst_case_accuracy >= whole.worst_case_accuracy - 1e-9,
            "sharding must not loosen the bound: merged {} < whole {}",
            merged.worst_case_accuracy,
            whole.worst_case_accuracy
        );
        assert!(merged.individually_verified <= problem.k());
    }

    #[test]
    fn merge_clamps_by_the_min_not_max_individually_verified() {
        // The pitfall the merge must avoid: with k = 2, shard A verifying
        // both inputs and shard B verifying none, `k − max_s iv_s` would
        // claim hamming 0 for the union even though shard B admits a
        // perturbation flipping both. The sound clamp uses min_s iv_s.
        let part = |hamming: f64, iv: usize| UapResult {
            method: Method::Raven,
            worst_case_accuracy: (2.0 - hamming) / 2.0,
            worst_case_hamming: hamming,
            individually_verified: iv,
            solve_millis: 1.0,
            lp_rows: 3,
            lp_vars: 2,
            exact: true,
            counterexample_delta: None,
            tier: Tier::Lp,
            degraded: false,
            tier_millis: TierMillis::default(),
        };
        let merged = merge_uap_results(2, &[part(0.0, 2), part(2.0, 0)]);
        assert_eq!(merged.worst_case_hamming, 2.0);
        assert_eq!(merged.individually_verified, 0);
        assert_eq!(merged.worst_case_accuracy, 0.0);
        // Tier weakens to the weakest shard; degraded/exact aggregate.
        let weak = UapResult {
            tier: Tier::Analysis,
            degraded: true,
            exact: false,
            ..part(1.0, 1)
        };
        let merged = merge_uap_results(2, &[part(0.5, 1), weak]);
        assert_eq!(merged.tier, Tier::Analysis);
        assert!(merged.degraded);
        assert!(!merged.exact);
        assert_eq!(merged.worst_case_hamming, 1.0);
        assert_eq!(merged.lp_rows, 3);
        assert_eq!(merged.lp_vars, 2);
    }

    #[test]
    fn shard_certificates_replay_through_the_exact_checker() {
        let (problem, _) = trained_problem(0.02, 3);
        let config = RavenConfig::default();
        for s in 0..2 {
            let (res, cert) = verify_uap_shard_certified_with_hooks(
                &problem,
                s,
                2,
                Method::Raven,
                &config,
                &RunHooks::default(),
                true,
            )
            .expect("default hooks never cancel");
            let cert = cert.expect("raven method always emits a certificate");
            assert_eq!(cert.tier, res.tier.name());
            raven_check::check_certificate(&cert).expect("shard certificate replays");
        }
    }

    #[test]
    fn targeted_all_matches_independent_per_target_runs() {
        // The batched per-label entry point shares analyses, encoding, and
        // a basis cache across targets; its bounds must match the
        // independent single-target calls exactly.
        let (problem, _) = trained_problem(0.1, 3);
        let config = RavenConfig::default();
        let all = verify_targeted_uap_all(&problem, &[0, 1, 2], Method::Raven, &config);
        assert_eq!(all.len(), 3);
        for (target, batched) in all.iter().enumerate() {
            let single = verify_targeted_uap(
                &TargetedUapProblem {
                    base: problem.clone(),
                    target,
                },
                Method::Raven,
                &config,
            );
            assert_eq!(batched.method, single.method);
            assert_eq!(batched.exact, single.exact, "target {target}");
            assert!(
                (batched.max_forced - single.max_forced).abs() < 1e-9,
                "target {target}: batched {} vs single {}",
                batched.max_forced,
                single.max_forced
            );
        }
    }
}
