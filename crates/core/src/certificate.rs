//! Certificate assembly for verdicts: collects the replayable evidence a
//! verification run produces — LP/MILP dual proofs from `raven-lp` and
//! per-neuron relaxation records from DeepPoly — into one
//! [`raven_check::Certificate`] the exact checker can replay.
//!
//! Emission is strictly additive: the primary solve and its verdict are
//! untouched. The LP evidence comes from a *secondary* certified solve
//! (presolve disabled so duals align with the recorded rows), matched to
//! the tier the verdict actually used; its claimed bound is the secondary
//! solve's own bound, which can differ in the last ulps from the verdict's
//! anytime bound but proves the same property. When any piece of evidence
//! is unavailable (budget ran dry again, unbounded relaxation, a method
//! that discards its analyses) the certificate simply omits that section —
//! or is `None` entirely — without affecting the verdict.

use crate::config::RavenConfig;
use crate::hooks::RunHooks;
use crate::tier::Tier;
use raven_check::{AnalysisCertificate, AnalysisNeuron, Certificate, LpCertificate};
use raven_deeppoly::DeepPolyAnalysis;
use raven_lp::LpProblem;
use raven_nn::{ActKind, AnalysisPlan};

/// The checker's lowercase name for an activation kind.
fn act_name(kind: ActKind) -> &'static str {
    match kind {
        ActKind::Relu => "relu",
        ActKind::Sigmoid => "sigmoid",
        ActKind::Tanh => "tanh",
        ActKind::LeakyRelu => "leakyrelu",
        ActKind::HardTanh => "hardtanh",
    }
}

/// Accumulates the certifiable evidence of one verification run. Threaded
/// as `Option<&mut CertSink>` through the verifiers; `None` (the default
/// everywhere) keeps certificate work entirely off the hot path.
#[derive(Debug, Default)]
pub struct CertSink {
    pub(crate) lp: Option<LpCertificate>,
    pub(crate) analysis: Option<AnalysisCertificate>,
}

impl CertSink {
    /// Runs the secondary certified solve matched to the tier the primary
    /// verdict settled on. Analysis-tier verdicts carry no LP evidence —
    /// their bound never came from the solver.
    pub(crate) fn solve_lp(
        &mut self,
        lp: &LpProblem,
        tier: Tier,
        config: &RavenConfig,
        hooks: &RunHooks<'_>,
    ) {
        let budget = hooks.lp_budget();
        self.lp = match tier {
            Tier::Milp => lp
                .solve_milp_certified(&config.milp, &budget)
                .ok()
                .and_then(|(_, cert)| cert),
            Tier::Lp => lp
                .solve_certified(&config.simplex, &budget)
                .ok()
                .and_then(|(_, cert)| cert),
            Tier::Analysis => None,
        };
    }

    /// Records every activation relaxation the given DeepPoly analyses
    /// used, in the checker's vocabulary. Sigmoid/tanh neurons are included
    /// too — the checker tallies them as trusted rather than replayed.
    pub(crate) fn record_analyses(&mut self, plan: &AnalysisPlan, analyses: &[&DeepPolyAnalysis]) {
        let mut neurons = Vec::new();
        for dp in analyses {
            for (kind, lo, hi, r) in dp.relaxation_records(plan) {
                neurons.push(AnalysisNeuron {
                    act: act_name(kind).to_string(),
                    alpha: match kind {
                        ActKind::LeakyRelu => ActKind::LEAKY_SLOPE,
                        _ => 0.0,
                    },
                    lo,
                    hi,
                    lower_slope: r.lower_slope,
                    lower_intercept: r.lower_intercept,
                    upper_slope: r.upper_slope,
                    upper_intercept: r.upper_intercept,
                });
            }
        }
        if !neurons.is_empty() {
            self.analysis = Some(AnalysisCertificate {
                neurons,
                trusted: 0,
            });
        }
    }

    /// Packages the collected evidence, or `None` when the run produced no
    /// certifiable sections at all.
    pub(crate) fn into_certificate(
        self,
        kind: &str,
        tier: Tier,
        degraded: bool,
    ) -> Option<Certificate> {
        if self.lp.is_none() && self.analysis.is_none() {
            return None;
        }
        Some(Certificate {
            kind: kind.to_string(),
            tier: tier.name().to_string(),
            degraded,
            lp: self.lp,
            analysis: self.analysis,
        })
    }
}
