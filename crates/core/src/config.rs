use raven_lp::{MilpOptions, SimplexOptions};

/// Which verifier to run — the four methods compared throughout the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Per-execution interval analysis, union-bound aggregation (weakest).
    Box,
    /// Per-execution zonotope (DeepZ) analysis, union-bound aggregation.
    /// Guaranteed at least as precise as `Box`; incomparable with
    /// `DeepPolyIndividual` in theory (usually weaker in practice).
    ZonotopeIndividual,
    /// Per-execution DeepPoly with proper margin back-substitution,
    /// union-bound aggregation — the strongest *non-relational* baseline.
    DeepPolyIndividual,
    /// The "I/O formulation" baseline: DeepPoly's symbolic input-level
    /// margin bounds per execution, coupled only through the shared
    /// perturbation — no per-layer variables and no difference tracking.
    /// (For monotonicity this is the layerwise joint LP without difference
    /// variables.)
    IoLp,
    /// The full verifier: `IoLp` plus DiffPoly cross-execution constraints.
    Raven,
}

impl Method {
    /// All methods, roughly ordered by precision. The provable chains are
    /// `Box ≤ ZonotopeIndividual` and
    /// `Box ≤ DeepPolyIndividual ≤ IoLp ≤ Raven`; zonotope and DeepPoly are
    /// incomparable in theory.
    pub fn all() -> [Method; 5] {
        [
            Method::Box,
            Method::ZonotopeIndividual,
            Method::DeepPolyIndividual,
            Method::IoLp,
            Method::Raven,
        ]
    }

    /// Short display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Box => "box",
            Method::ZonotopeIndividual => "zonotope",
            Method::DeepPolyIndividual => "deeppoly",
            Method::IoLp => "io-lp",
            Method::Raven => "raven",
        }
    }

    /// Inverse of [`Method::name`] — the one parser the CLI and the
    /// verification server share, so their accepted spellings cannot
    /// drift.
    pub fn from_name(name: &str) -> Option<Method> {
        Method::all().into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which execution pairs receive DiffPoly difference tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PairStrategy {
    /// No pairs (degenerates RaVeN to the I/O formulation).
    None,
    /// Consecutive pairs `(0,1), (1,2), …` — the scalable default.
    #[default]
    Consecutive,
    /// All `k·(k−1)/2` pairs — most precise, costliest.
    AllPairs,
}

impl PairStrategy {
    /// Short display name (`none`/`consecutive`/`all`).
    pub fn name(self) -> &'static str {
        match self {
            PairStrategy::None => "none",
            PairStrategy::Consecutive => "consecutive",
            PairStrategy::AllPairs => "all",
        }
    }

    /// Inverse of [`PairStrategy::name`], shared by the CLI and server.
    pub fn from_name(name: &str) -> Option<PairStrategy> {
        match name {
            "none" => Some(PairStrategy::None),
            "consecutive" => Some(PairStrategy::Consecutive),
            "all" => Some(PairStrategy::AllPairs),
            _ => None,
        }
    }

    /// The execution index pairs tracked under this strategy.
    pub fn pairs(self, k: usize) -> Vec<(usize, usize)> {
        match self {
            PairStrategy::None => Vec::new(),
            PairStrategy::Consecutive => (1..k).map(|i| (i - 1, i)).collect(),
            PairStrategy::AllPairs => {
                let mut v = Vec::new();
                for i in 0..k {
                    for j in i + 1..k {
                        v.push((i, j));
                    }
                }
                v
            }
        }
    }
}

/// Tunable parameters of the RaVeN verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RavenConfig {
    /// Difference-tracking pair selection.
    pub pairs: PairStrategy,
    /// Solve the counting spec as a MILP (exact over the indicator
    /// variables); when `false`, or when the node limit is hit, the LP
    /// relaxation is used — still sound, possibly fractional.
    pub spec_milp: bool,
    /// Options for the MILP search.
    pub milp: MilpOptions,
    /// Options for pure-LP solves.
    pub simplex: SimplexOptions,
    /// Worker threads for the parallel fan-out points (per-input analyses
    /// and margins, pairwise DiffPoly runs, sweep columns): `0` uses all
    /// available parallelism, `1` (the default) is the sequential path.
    /// Results are collected in deterministic input order, so any value is
    /// bit-identical to `1` — the knob only trades wall-clock for cores.
    pub threads: usize,
}

impl Default for RavenConfig {
    fn default() -> Self {
        Self {
            pairs: PairStrategy::Consecutive,
            spec_milp: true,
            milp: MilpOptions::default(),
            simplex: SimplexOptions::default(),
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_strategies_enumerate_correctly() {
        assert!(PairStrategy::None.pairs(4).is_empty());
        assert_eq!(
            PairStrategy::Consecutive.pairs(4),
            vec![(0, 1), (1, 2), (2, 3)]
        );
        assert_eq!(
            PairStrategy::AllPairs.pairs(3),
            vec![(0, 1), (0, 2), (1, 2)]
        );
        assert!(PairStrategy::Consecutive.pairs(1).is_empty());
    }

    #[test]
    fn method_names_are_distinct() {
        let names: std::collections::HashSet<_> = Method::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn names_roundtrip_through_from_name() {
        for m in Method::all() {
            assert_eq!(Method::from_name(m.name()), Some(m));
        }
        assert_eq!(Method::from_name("magic"), None);
        for p in [
            PairStrategy::None,
            PairStrategy::Consecutive,
            PairStrategy::AllPairs,
        ] {
            assert_eq!(PairStrategy::from_name(p.name()), Some(p));
        }
        assert_eq!(PairStrategy::from_name("some"), None);
    }
}
