//! The relational LP encoding.
//!
//! Variables: caller-provided base variables (the shared perturbation `d`,
//! or explicit input variables for monotonicity), one variable per
//! post-activation neuron per execution, output variables per execution,
//! and — for RaVeN — difference variables per tracked pair per activation
//! layer. Constraints: per-execution activation relaxations (exact
//! equalities for stable ReLUs, triangle/secant relaxations otherwise),
//! linking equalities `Δ = h_A − h_B`, and the DiffPoly δ-space lines as
//! linear cross-execution constraints.
//!
//! Affine layers are substituted inline: pre-activation expressions are
//! kept as sparse linear expressions over the previous layer's variables,
//! so the LP never carries explicit pre-activation variables.

use raven_deeppoly::{relax_activation, DeepPolyAnalysis};
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::Interval;
use raven_lp::{LinExpr, LpProblem, Sense, VarId};
use raven_nn::{ActKind, AnalysisPlan, PlanStep};
use std::collections::HashMap;

/// A sparse affine expression over LP variables: `Σ c_i v_i + constant`.
#[derive(Debug, Clone, Default)]
pub struct Expr {
    terms: HashMap<VarId, f64>,
    constant: f64,
}

impl Expr {
    /// The constant expression.
    pub fn constant(c: f64) -> Self {
        Self {
            terms: HashMap::new(),
            constant: c,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> Self {
        let mut terms = HashMap::new();
        terms.insert(v, 1.0);
        Self {
            terms,
            constant: 0.0,
        }
    }

    /// Adds `coeff·v` to the expression (builder style).
    pub fn plus_var(mut self, coeff: f64, v: VarId) -> Self {
        if coeff != 0.0 {
            *self.terms.entry(v).or_insert(0.0) += coeff;
        }
        self
    }

    /// Adds `alpha · other` into `self`.
    pub fn add_scaled(&mut self, alpha: f64, other: &Expr) {
        if alpha == 0.0 {
            return;
        }
        self.constant += alpha * other.constant;
        for (&v, &c) in &other.terms {
            *self.terms.entry(v).or_insert(0.0) += alpha * c;
        }
    }

    /// The expression's constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Whether the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.values().all(|&c| c == 0.0)
    }

    /// Converts the variable part into a solver [`LinExpr`].
    pub fn to_lin_expr(&self) -> LinExpr {
        self.terms
            .iter()
            .filter(|&(_, &c)| c != 0.0)
            .map(|(&v, &c)| (v, c))
            .collect()
    }

    /// Evaluates the expression at an assignment indexed by variable.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(&v, &c)| c * x[v.index()])
                .sum::<f64>()
    }
}

/// Adds the constraint `target (sense) expr`, i.e.
/// `target − expr.terms (sense) expr.constant`.
fn add_row(problem: &mut LpProblem, target: VarId, scale: f64, expr: &Expr, sense: Sense) {
    let mut lhs = Expr::var(target);
    lhs.add_scaled(-scale, expr);
    let rhs = -lhs.constant;
    let mut lin = lhs.to_lin_expr();
    // `to_lin_expr` drops the constant; rebuild with target coefficient kept.
    if lin.terms().is_empty() {
        // Degenerate: the target itself cancelled; encode as a bound-like
        // row anyway for uniformity.
        lin = LinExpr::new().term(1.0, target).term(-1.0, target);
    }
    problem.add_constraint(lin, sense, rhs);
}

/// Per-execution variable map produced by the encoder.
#[derive(Debug, Clone)]
pub struct ExecVars {
    /// One variable per neuron per activation layer (post-activation).
    pub hidden: Vec<Vec<VarId>>,
    /// Output logit variables.
    pub outputs: Vec<VarId>,
}

/// Per-pair variable map (difference variables).
#[derive(Debug, Clone)]
pub struct PairVars {
    /// The tracked executions `(a, b)`.
    pub execs: (usize, usize),
    /// Difference variables per activation layer.
    pub hidden: Vec<Vec<VarId>>,
    /// Output difference variables.
    pub outputs: Vec<VarId>,
}

/// The assembled relational encoding.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// Per-execution variables, in input order.
    pub execs: Vec<ExecVars>,
    /// Per-pair difference variables (empty without difference tracking).
    pub pairs: Vec<PairVars>,
}

/// Encodes `k` executions of `plan` (given their per-execution DeepPoly
/// analyses and input expressions over already-created base variables)
/// plus optional DiffPoly-tracked pairs into `problem`.
///
/// # Panics
///
/// Panics when the plan does not alternate affine/activation steps starting
/// and ending with an affine step, or when analysis shapes disagree.
pub fn encode(
    problem: &mut LpProblem,
    plan: &AnalysisPlan,
    input_exprs: &[Vec<Expr>],
    deeppoly: &[&DeepPolyAnalysis],
    diff_pairs: &[(usize, usize, &DiffPolyAnalysis)],
) -> Encoding {
    let steps = plan.steps();
    assert!(
        matches!(steps.first(), Some(PlanStep::Affine { .. })),
        "encoder expects the plan to start with an affine step"
    );
    assert!(
        matches!(steps.last(), Some(PlanStep::Affine { .. })),
        "encoder expects the plan to end with an affine step"
    );
    assert_eq!(input_exprs.len(), deeppoly.len(), "exec count mismatch");
    let k = input_exprs.len();
    let mut execs = Vec::with_capacity(k);
    for e in 0..k {
        execs.push(encode_exec(problem, plan, &input_exprs[e], deeppoly[e]));
    }
    let mut pairs = Vec::with_capacity(diff_pairs.len());
    for &(a, b, diff) in diff_pairs {
        assert!(a < k && b < k, "pair indices out of range");
        pairs.push(encode_pair(
            problem,
            plan,
            a,
            b,
            &input_exprs[a],
            &input_exprs[b],
            &execs[a],
            &execs[b],
            diff,
        ));
    }
    Encoding { execs, pairs }
}

fn compose_affine(weight: &raven_tensor::Matrix, bias: Option<&[f64]>, prev: &[Expr]) -> Vec<Expr> {
    (0..weight.rows())
        .map(|i| {
            let mut e = Expr::constant(bias.map_or(0.0, |b| b[i]));
            for (j, &w) in weight.row(i).iter().enumerate() {
                if w != 0.0 {
                    e.add_scaled(w, &prev[j]);
                }
            }
            e
        })
        .collect()
}

fn safe_bounds(iv: &Interval) -> (f64, f64) {
    // Guard against floating-point inversion.
    let lo = iv.lo().min(iv.hi());
    let hi = iv.hi().max(iv.lo());
    (lo, hi)
}

fn encode_exec(
    problem: &mut LpProblem,
    plan: &AnalysisPlan,
    input_exprs: &[Expr],
    dp: &DeepPolyAnalysis,
) -> ExecVars {
    let mut prev: Vec<Expr> = input_exprs.to_vec();
    let mut hidden: Vec<Vec<VarId>> = Vec::new();
    for (s, step) in plan.steps().iter().enumerate() {
        match step {
            PlanStep::Affine { weight, bias } => {
                prev = compose_affine(weight, Some(bias), &prev);
            }
            PlanStep::Act(kind) => {
                let pre_bounds = &dp.bounds[s];
                let post_bounds = &dp.bounds[s + 1];
                let mut layer_vars = Vec::with_capacity(prev.len());
                for (n, pre_expr) in prev.iter().enumerate() {
                    let (plo, phi) = safe_bounds(&pre_bounds[n]);
                    let (hlo, hhi) = safe_bounds(&post_bounds[n]);
                    let h = problem.add_var(hlo, hhi);
                    encode_activation(problem, *kind, h, pre_expr, plo, phi);
                    layer_vars.push(h);
                }
                hidden.push(layer_vars.clone());
                prev = layer_vars.into_iter().map(Expr::var).collect();
            }
        }
    }
    // Output variables with equality links to the final affine expressions.
    let out_bounds = dp.output();
    let mut outputs = Vec::with_capacity(prev.len());
    for (n, expr) in prev.iter().enumerate() {
        let (lo, hi) = safe_bounds(&out_bounds[n]);
        let o = problem.add_var(lo, hi);
        add_row(problem, o, 1.0, expr, Sense::Eq);
        outputs.push(o);
    }
    ExecVars { hidden, outputs }
}

fn encode_activation(
    problem: &mut LpProblem,
    kind: ActKind,
    h: VarId,
    pre: &Expr,
    plo: f64,
    phi: f64,
) {
    match kind {
        ActKind::Relu => {
            if plo >= 0.0 {
                // Stable active: h = pre.
                add_row(problem, h, 1.0, pre, Sense::Eq);
            } else if phi <= 0.0 {
                // Stable inactive: bounds already pin h to [0, 0].
            } else {
                // Unstable: h ≥ pre, h ≥ 0 (bound), h ≤ λ·pre + μ.
                add_row(problem, h, 1.0, pre, Sense::Ge);
                let r = relax_activation(kind, plo, phi);
                let mut upper = Expr::constant(r.upper_intercept);
                upper.add_scaled(r.upper_slope, pre);
                add_row(problem, h, 1.0, &upper, Sense::Le);
            }
        }
        ActKind::Sigmoid | ActKind::Tanh | ActKind::LeakyRelu | ActKind::HardTanh => {
            // Generic two-line relaxation; `relax_activation` degenerates to
            // an exact equality pair on stable segments, so a single Eq row
            // suffices there.
            let r = relax_activation(kind, plo, phi);
            let exact = r.lower_slope == r.upper_slope && r.lower_intercept == r.upper_intercept;
            if exact {
                let mut line = Expr::constant(r.lower_intercept);
                line.add_scaled(r.lower_slope, pre);
                add_row(problem, h, 1.0, &line, Sense::Eq);
            } else {
                let mut lower = Expr::constant(r.lower_intercept);
                lower.add_scaled(r.lower_slope, pre);
                add_row(problem, h, 1.0, &lower, Sense::Ge);
                let mut upper = Expr::constant(r.upper_intercept);
                upper.add_scaled(r.upper_slope, pre);
                add_row(problem, h, 1.0, &upper, Sense::Le);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn encode_pair(
    problem: &mut LpProblem,
    plan: &AnalysisPlan,
    a: usize,
    b: usize,
    input_a: &[Expr],
    input_b: &[Expr],
    exec_a: &ExecVars,
    exec_b: &ExecVars,
    diff: &DiffPolyAnalysis,
) -> PairVars {
    // Input difference expressions (often pure constants for UAP).
    let mut prev: Vec<Expr> = input_a
        .iter()
        .zip(input_b)
        .map(|(ea, eb)| {
            let mut e = ea.clone();
            e.add_scaled(-1.0, eb);
            e
        })
        .collect();
    let mut hidden: Vec<Vec<VarId>> = Vec::new();
    let mut act_layer = 0usize;
    for (s, step) in plan.steps().iter().enumerate() {
        match step {
            PlanStep::Affine { weight, .. } => {
                // Bias cancels in the difference.
                prev = compose_affine(weight, None, &prev);
            }
            PlanStep::Act(_) => {
                let relax = diff.relaxations[s]
                    .as_ref()
                    .expect("diffpoly records activation relaxations");
                let post = &diff.bounds[s + 1];
                let mut layer_vars = Vec::with_capacity(prev.len());
                for (n, dpre) in prev.iter().enumerate() {
                    let (lo, hi) = safe_bounds(&post[n]);
                    let dv = problem.add_var(lo, hi);
                    // Linking equality Δ = h_a − h_b.
                    let link = Expr::var(exec_a.hidden[act_layer][n])
                        .plus_var(-1.0, exec_b.hidden[act_layer][n]);
                    add_row(problem, dv, 1.0, &link, Sense::Eq);
                    // δ-space cross-execution lines.
                    let r = &relax[n];
                    let same_line =
                        r.lower_slope == r.upper_slope && r.lower_intercept == r.upper_intercept;
                    if same_line {
                        if r.lower_slope != 0.0 || r.lower_intercept != 0.0 || !dpre.is_constant() {
                            let mut line = Expr::constant(r.lower_intercept);
                            line.add_scaled(r.lower_slope, dpre);
                            add_row(problem, dv, 1.0, &line, Sense::Eq);
                        }
                        // Exact zero with constant input: bounds suffice.
                    } else {
                        let mut lower = Expr::constant(r.lower_intercept);
                        lower.add_scaled(r.lower_slope, dpre);
                        add_row(problem, dv, 1.0, &lower, Sense::Ge);
                        let mut upper = Expr::constant(r.upper_intercept);
                        upper.add_scaled(r.upper_slope, dpre);
                        add_row(problem, dv, 1.0, &upper, Sense::Le);
                    }
                    layer_vars.push(dv);
                }
                hidden.push(layer_vars.clone());
                prev = layer_vars.into_iter().map(Expr::var).collect();
                act_layer += 1;
            }
        }
    }
    // Output difference variables: tied both to the symbolic difference
    // expression and to the per-execution output variables.
    let out_bounds = diff.output();
    let mut outputs = Vec::with_capacity(prev.len());
    for (n, expr) in prev.iter().enumerate() {
        let (lo, hi) = safe_bounds(&out_bounds[n]);
        let dv = problem.add_var(lo, hi);
        add_row(problem, dv, 1.0, expr, Sense::Eq);
        let link = Expr::var(exec_a.outputs[n]).plus_var(-1.0, exec_b.outputs[n]);
        add_row(problem, dv, 1.0, &link, Sense::Eq);
        outputs.push(dv);
    }
    PairVars {
        execs: (a, b),
        hidden,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_interval::linf_ball;
    use raven_lp::Direction;
    use raven_nn::NetworkBuilder;

    fn setup(kind: ActKind) -> (AnalysisPlan, raven_nn::Network, Vec<Vec<f64>>, f64) {
        let net = NetworkBuilder::new(3)
            .dense(6, 41)
            .activation(kind)
            .dense(4, 42)
            .activation(kind)
            .dense(2, 43)
            .build();
        let plan = net.to_plan();
        let centers = vec![vec![0.4, 0.5, 0.6], vec![0.55, 0.45, 0.5]];
        (plan, net, centers, 0.04)
    }

    /// Builds the UAP-style encoding: shared perturbation variables plus one
    /// execution per center.
    fn build_uap_encoding(
        plan: &AnalysisPlan,
        centers: &[Vec<f64>],
        eps: f64,
        with_pairs: bool,
    ) -> (LpProblem, Encoding, Vec<DeepPolyAnalysis>) {
        let mut problem = LpProblem::new();
        let d_vars: Vec<VarId> = (0..plan.input_dim())
            .map(|_| problem.add_var(-eps, eps))
            .collect();
        let input_exprs: Vec<Vec<Expr>> = centers
            .iter()
            .map(|z| {
                z.iter()
                    .zip(&d_vars)
                    .map(|(&zj, &dj)| Expr::constant(zj).plus_var(1.0, dj))
                    .collect()
            })
            .collect();
        let dps: Vec<DeepPolyAnalysis> = centers
            .iter()
            .map(|z| {
                DeepPolyAnalysis::run(plan, &linf_ball(z, eps, f64::NEG_INFINITY, f64::INFINITY))
            })
            .collect();
        let dp_refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
        let diffs: Vec<DiffPolyAnalysis> = if with_pairs {
            let delta: Vec<Interval> = centers[0]
                .iter()
                .zip(&centers[1])
                .map(|(&a, &b)| Interval::point(a - b))
                .collect();
            vec![DiffPolyAnalysis::run(plan, &dps[0], &dps[1], &delta)]
        } else {
            Vec::new()
        };
        let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
            diffs.iter().map(|d| (0, 1, d)).collect();
        let encoding = encode(&mut problem, plan, &input_exprs, &dp_refs, &pair_refs);
        (problem, encoding, dps)
    }

    #[test]
    fn expr_arithmetic() {
        let mut p = LpProblem::new();
        let v = p.add_var(0.0, 1.0);
        let w = p.add_var(0.0, 1.0);
        let mut e = Expr::constant(1.0).plus_var(2.0, v);
        e.add_scaled(3.0, &Expr::var(w).plus_var(1.0, v));
        assert_eq!(e.eval(&[0.5, 0.25]), 1.0 + 2.0 * 0.5 + 3.0 * (0.25 + 0.5));
        assert!(!e.is_constant());
        assert!(Expr::constant(2.0).is_constant());
    }

    #[test]
    fn encoding_admits_concrete_executions() {
        for kind in [ActKind::Relu, ActKind::Sigmoid] {
            let (plan, net, centers, eps) = setup(kind);
            let (problem, encoding, _) = build_uap_encoding(&plan, &centers, eps, true);
            // Assemble the LP point corresponding to a concrete shared
            // perturbation and check every constraint holds.
            for s in 0..5 {
                let shift: Vec<f64> = (0..3)
                    .map(|i| eps * ((((s * 7 + i * 3) % 11) as f64 / 5.0) - 1.0))
                    .collect();
                let mut x = vec![0.0; problem.num_vars()];
                for (i, &sh) in shift.iter().enumerate() {
                    x[i] = sh;
                }
                let mut traces = Vec::new();
                for (e, z) in centers.iter().enumerate() {
                    let input: Vec<f64> = z.iter().zip(&shift).map(|(&a, &b)| a + b).collect();
                    let trace = plan_trace(&net, &input);
                    for (l, layer_vars) in encoding.execs[e].hidden.iter().enumerate() {
                        for (n, var) in layer_vars.iter().enumerate() {
                            x[var.index()] = trace.0[l][n];
                        }
                    }
                    for (n, var) in encoding.execs[e].outputs.iter().enumerate() {
                        x[var.index()] = trace.1[n];
                    }
                    traces.push(trace);
                }
                for pair in &encoding.pairs {
                    let (a, b) = pair.execs;
                    for (l, layer_vars) in pair.hidden.iter().enumerate() {
                        for (n, var) in layer_vars.iter().enumerate() {
                            x[var.index()] = traces[a].0[l][n] - traces[b].0[l][n];
                        }
                    }
                    for (n, var) in pair.outputs.iter().enumerate() {
                        x[var.index()] = traces[a].1[n] - traces[b].1[n];
                    }
                }
                assert!(
                    problem.is_feasible(&x, 1e-6),
                    "{kind}: concrete execution violates the encoding (shift {s})"
                );
            }
        }
    }

    /// Runs the plan collecting post-activation values per activation layer
    /// and the outputs.
    fn plan_trace(net: &raven_nn::Network, x: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let plan = net.to_plan();
        let mut cur = x.to_vec();
        let mut hidden = Vec::new();
        for step in plan.steps() {
            match step {
                PlanStep::Affine { weight, bias } => {
                    let mut y = weight.matvec(&cur);
                    for (yi, bi) in y.iter_mut().zip(bias) {
                        *yi += bi;
                    }
                    cur = y;
                }
                PlanStep::Act(k) => {
                    cur = cur.iter().map(|&v| k.eval(v)).collect();
                    hidden.push(cur.clone());
                }
            }
        }
        (hidden, cur)
    }

    #[test]
    fn relational_lp_is_tighter_than_io_lp_on_output_difference() {
        let (plan, _net, centers, eps) = setup(ActKind::Relu);
        // Maximize o0_exec0 − o0_exec1 with and without difference tracking.
        let bound = |with_pairs: bool| {
            let (mut problem, encoding, _) = build_uap_encoding(&plan, &centers, eps, with_pairs);
            let obj = LinExpr::new()
                .term(1.0, encoding.execs[0].outputs[0])
                .term(-1.0, encoding.execs[1].outputs[0]);
            problem.set_objective(Direction::Maximize, obj);
            problem.solve().expect("lp solves").objective
        };
        let io = bound(false);
        let raven = bound(true);
        assert!(
            raven <= io + 1e-7,
            "difference tracking should not loosen: {raven} vs {io}"
        );
    }
}
