//! `raven_cli` — command-line front-end for the RaVeN verifier.
//!
//! ```text
//! raven_cli info       --model net.txt
//! raven_cli train-demo --out net.txt --inputs batch.txt
//! raven_cli verify-uap --model net.txt --inputs batch.txt --eps 0.05
//!                      [--method box|deeppoly|io-lp|raven] [--pairs none|consecutive|all]
//!                      [--threads n] [--json]
//! raven_cli verify-mono --model net.txt --center 0.5,0.5,... --feature 0
//!                       --tau 0.1 [--eps 0.01] [--decreasing] [--json]
//! raven_cli export-lp  --model net.txt --inputs batch.txt --eps 0.05 --out problem.lp
//! ```
//!
//! The batch file holds one example per line: the label followed by the
//! input coordinates, whitespace-separated. `#` starts a comment.
//!
//! Exit codes: `0` verified/success, `1` runtime error (bad file, I/O),
//! `2` usage error (bad flags; usage is printed), `3` the run completed
//! soundly but the property was **not** verified — so scripts can
//! distinguish "falsified" from "failed".
//!
//! `--json` emits one machine-readable object whose `result` field is the
//! canonical verdict from `raven::report` — byte-identical to the
//! `result` field served by `raven-serve` for the same query.

use raven::{
    report, verify_monotonicity_certified_with_hooks, verify_monotonicity_with_hooks,
    verify_uap_certified_with_hooks, verify_uap_with_hooks, Method, MonotonicityProblem,
    PairStrategy, RavenConfig, RunHooks, TierMillis, UapProblem,
};
use raven_json::Json;
use raven_nn::{load_network, save_network};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Outcome::Verified) => ExitCode::SUCCESS,
        Ok(Outcome::Falsified) => ExitCode::from(3),
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  raven_cli info        --model <net.txt>
  raven_cli train-demo  --out <net.txt> --inputs <batch.txt>
  raven_cli verify-uap  --model <net.txt> --inputs <batch.txt> --eps <f>
                        [--method box|deeppoly|io-lp|raven] [--pairs none|consecutive|all]
                        [--threads <n>] [--deadline-ms <ms>] [--json]
                        [--stats] [--trace-out <trace.jsonl>]
                        [--certificate-out <cert.json>]
                        (--threads 0 = all cores, 1 = sequential; default 1;
                         --deadline-ms degrades to the best sound bound in time;
                         --stats prints a solver/phase summary to stderr;
                         --trace-out writes JSONL spans for flamegraphs;
                         --certificate-out writes a proof certificate that
                         `raven_check` replays in exact arithmetic)
  raven_cli verify-mono --model <net.txt> --center <v,v,...> --feature <i>
                        --tau <f> [--eps <f>] [--decreasing] [--method ...]
                        [--threads <n>] [--deadline-ms <ms>] [--json]
                        [--stats] [--trace-out <trace.jsonl>]
                        [--certificate-out <cert.json>]
  raven_cli export-lp   --model <net.txt> --inputs <batch.txt> --eps <f> --out <file.lp>

exit codes: 0 verified, 1 runtime error, 2 usage error, 3 ran soundly but not verified";

/// How a successful run ended, for the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The property holds (or the command has no verdict).
    Verified,
    /// The run was sound but could not certify the property (exit 3).
    Falsified,
}

/// Failures, split by exit-code class.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// The invocation was malformed: exit 2, usage is printed.
    Usage(String),
    /// The invocation was fine but execution failed: exit 1, message only.
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    fn runtime(msg: impl Into<String>) -> Self {
        CliError::Runtime(msg.into())
    }
}

fn run(args: &[String]) -> Result<Outcome, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::usage("missing command"));
    };
    let opts = parse_flags(rest)?;
    let stats = setup_telemetry(&opts)?;
    let outcome = match command.as_str() {
        "info" => cmd_info(&opts),
        "train-demo" => cmd_train_demo(&opts),
        "verify-uap" => cmd_verify_uap(&opts),
        "verify-mono" => cmd_verify_mono(&opts),
        "export-lp" => cmd_export_lp(&opts),
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    };
    // Flush the trace file even when the command failed — a partial trace
    // of a failed run is exactly when you want to look at it.
    raven_obs::clear_sink();
    if stats && outcome.is_ok() {
        print_stats();
    }
    outcome
}

/// Arms telemetry from `--stats` / `--trace-out` before the command runs.
/// Returns whether the end-of-run stats table was requested.
fn setup_telemetry(flags: &Flags) -> Result<bool, CliError> {
    if let Some(path) = flags.get("trace-out") {
        raven_obs::set_sink_path(path)
            .map_err(|e| CliError::runtime(format!("--trace-out {path}: {e}")))?;
    }
    let stats = flags.has("stats");
    if stats {
        raven_obs::set_enabled(true);
    }
    Ok(stats)
}

/// Prints the end-of-run solver/phase summary (to stderr, so `--json`
/// stdout stays machine-readable).
fn print_stats() {
    use raven::metrics as core_m;
    use raven_lp::metrics as lp_m;
    eprintln!("--- run stats ---------------------------------");
    eprintln!("simplex pivots     : {}", lp_m::SIMPLEX_PIVOTS.get());
    eprintln!(
        "warm starts        : {} ({} dual pivots)",
        lp_m::LP_WARM_STARTS.get(),
        lp_m::LP_DUAL_PIVOTS.get()
    );
    eprintln!(
        "lp solves          : {} ({:.1} ms total)",
        lp_m::LP_SOLVES.get(),
        1e3 * lp_m::LP_SOLVE_SECONDS.sum()
    );
    eprintln!(
        "milp nodes         : {} ({} pruned, {} incumbent updates)",
        lp_m::MILP_NODES.get(),
        lp_m::MILP_NODES_PRUNED.get(),
        lp_m::MILP_INCUMBENT_UPDATES.get()
    );
    eprintln!(
        "presolve           : {} rows removed, {} bounds tightened",
        lp_m::PRESOLVE_ROWS_REMOVED.get(),
        lp_m::PRESOLVE_BOUNDS_TIGHTENED.get()
    );
    let phases: [(&str, &raven_obs::Histogram); 5] = [
        ("margins", &core_m::PHASE_MARGINS_SECONDS),
        ("analysis", &core_m::PHASE_ANALYSIS_SECONDS),
        ("diffpoly", &core_m::PHASE_DIFFPOLY_SECONDS),
        ("encode", &core_m::PHASE_ENCODE_SECONDS),
        ("solve", &core_m::PHASE_SOLVE_SECONDS),
    ];
    for (name, hist) in phases {
        if hist.count() > 0 {
            eprintln!(
                "phase {name:<12} : {:.1} ms ({} span{})",
                1e3 * hist.sum(),
                hist.count(),
                if hist.count() == 1 { "" } else { "s" }
            );
        }
    }
    eprintln!(
        "tiers reached      : milp {} / lp {} / analysis {} ({} degraded)",
        core_m::TIER_MILP.get(),
        core_m::TIER_LP.get(),
        core_m::TIER_ANALYSIS.get(),
        core_m::DEGRADED.get()
    );
}

/// Parsed `--flag value` pairs (flags without values are stored as "true").
#[derive(Debug, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::usage(format!("missing --{name}")))
    }

    fn get_f64(&self, name: &str) -> Result<Option<f64>, CliError> {
        self.get(name)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|e| CliError::usage(format!("--{name}: {e}")))
            })
            .transpose()
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::usage(format!("unexpected argument {arg:?}")));
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        flags.pairs.push((name.to_string(), value));
    }
    Ok(flags)
}

fn parse_method(flags: &Flags) -> Result<Method, CliError> {
    let name = flags.get("method").unwrap_or("raven");
    Method::from_name(name).ok_or_else(|| CliError::usage(format!("unknown method {name:?}")))
}

fn parse_config(flags: &Flags) -> Result<RavenConfig, CliError> {
    let name = flags.get("pairs").unwrap_or("consecutive");
    let pairs = PairStrategy::from_name(name)
        .ok_or_else(|| CliError::usage(format!("unknown pair strategy {name:?}")))?;
    let threads = match flags.get("threads") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|e| CliError::usage(format!("--threads: {e}")))?,
        None => 1,
    };
    Ok(RavenConfig {
        pairs,
        spec_milp: !flags.has("lp-only"),
        threads,
        ..RavenConfig::default()
    })
}

/// Parses a batch file: `label v1 v2 ...` per line, `#` comments.
fn parse_batch(text: &str, input_dim: usize) -> Result<(Vec<Vec<f64>>, Vec<usize>), CliError> {
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label: usize = parts
            .next()
            .expect("non-empty line")
            .parse()
            .map_err(|e| CliError::runtime(format!("line {}: bad label: {e}", ln + 1)))?;
        let coords: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
        let coords =
            coords.map_err(|e| CliError::runtime(format!("line {}: bad value: {e}", ln + 1)))?;
        if coords.len() != input_dim {
            return Err(CliError::runtime(format!(
                "line {}: expected {input_dim} coordinates, found {}",
                ln + 1,
                coords.len()
            )));
        }
        labels.push(label);
        inputs.push(coords);
    }
    if inputs.is_empty() {
        return Err(CliError::runtime("batch file contains no examples"));
    }
    Ok((inputs, labels))
}

fn parse_vector(text: &str) -> Result<Vec<f64>, CliError> {
    text.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|e| CliError::usage(format!("bad vector component {t:?}: {e}")))
        })
        .collect()
}

fn cmd_info(flags: &Flags) -> Result<Outcome, CliError> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| CliError::runtime(e.to_string()))?;
    println!("model: {model}");
    println!("input dim : {}", net.input_dim());
    println!("output dim: {}", net.output_dim());
    println!("parameters: {}", net.num_params());
    println!("widths    : {:?}", net.widths());
    let plan = net.to_plan();
    println!(
        "analysis plan: {} steps ({} activation layers)",
        plan.steps().len(),
        plan.activation_steps().len()
    );
    Ok(Outcome::Verified)
}

fn cmd_train_demo(flags: &Flags) -> Result<Outcome, CliError> {
    use raven_nn::data::synth_digits;
    use raven_nn::train::{train_classifier, TrainConfig};
    use raven_nn::{ActKind, NetworkBuilder};
    let out = flags.require("out")?;
    let inputs_path = flags.require("inputs")?;
    let ds = synth_digits(6, 4, 280, 0.15, 42);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(train.input_dim)
        .dense(24, 101)
        .activation(ActKind::Relu)
        .dense(24, 102)
        .activation(ActKind::Relu)
        .dense(train.num_classes, 103)
        .build();
    let report = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 35,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 7,
            adversarial: None,
        },
    );
    save_network(&net, Path::new(out)).map_err(|e| CliError::runtime(e.to_string()))?;
    // Emit a batch of correctly classified test inputs.
    let mut batch = String::from("# label v1 v2 ... (correctly classified test inputs)\n");
    let mut count = 0;
    for (x, &y) in test.inputs.iter().zip(&test.labels) {
        if net.classify(x) == y {
            batch.push_str(&format!("{y}"));
            for v in x {
                batch.push_str(&format!(" {v}"));
            }
            batch.push('\n');
            count += 1;
            if count == 6 {
                break;
            }
        }
    }
    std::fs::write(inputs_path, batch).map_err(|e| CliError::runtime(e.to_string()))?;
    println!(
        "trained demo model (train accuracy {:.1}%) -> {out}; {count} inputs -> {inputs_path}",
        100.0 * report.final_accuracy
    );
    Ok(Outcome::Verified)
}

/// Wraps a verdict in the CLI's `--json` envelope. The `result` field is
/// the shared canonical verdict; `solve_millis` and the per-tier timing
/// travel outside it so the verdict stays deterministic (and
/// cache/CLI/server comparable).
fn json_envelope(verdict: Json, solve_millis: f64, tier_millis: &TierMillis) -> String {
    Json::obj([
        ("result", verdict),
        ("solve_millis", Json::from(solve_millis)),
        ("tier_millis", report::tier_millis_json(tier_millis)),
    ])
    .to_string()
}

/// Parses `--deadline-ms` into run hooks (unlimited when absent). A
/// deadline never aborts the run: past it, the verifier degrades down the
/// precision ladder and still answers with a sound verdict.
fn parse_hooks(flags: &Flags) -> Result<RunHooks<'static>, CliError> {
    match flags.get("deadline-ms") {
        None => Ok(RunHooks::default()),
        Some(v) => {
            let ms: u64 = v
                .parse()
                .map_err(|e| CliError::usage(format!("--deadline-ms: {e}")))?;
            Ok(RunHooks::default().with_deadline_in(Duration::from_millis(ms)))
        }
    }
}

/// Writes a proof certificate next to the verdict. Runs that produced no
/// certifiable evidence write JSON `null` — the file always exists so
/// callers can distinguish "not requested" from "nothing to certify".
fn write_certificate(path: &str, cert: Option<raven::Certificate>) -> Result<(), CliError> {
    let text = match cert {
        Some(c) => c.to_json().to_string(),
        None => "null".to_string(),
    };
    std::fs::write(path, text)
        .map_err(|e| CliError::runtime(format!("--certificate-out {path}: {e}")))
}

fn cmd_verify_uap(flags: &Flags) -> Result<Outcome, CliError> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| CliError::runtime(e.to_string()))?;
    let batch_text = std::fs::read_to_string(flags.require("inputs")?)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let (inputs, labels) = parse_batch(&batch_text, net.input_dim())?;
    let eps = flags
        .get_f64("eps")?
        .ok_or_else(|| CliError::usage("missing --eps"))?;
    let method = parse_method(flags)?;
    let config = parse_config(flags)?;
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    };
    let hooks = parse_hooks(flags)?;
    let res = match flags.get("certificate-out") {
        None => verify_uap_with_hooks(&problem, method, &config, &hooks)
            .expect("deadline-only hooks never cancel"),
        Some(path) => {
            let (res, cert) = verify_uap_certified_with_hooks(&problem, method, &config, &hooks)
                .expect("deadline-only hooks never cancel");
            write_certificate(path, cert)?;
            res
        }
    };
    if flags.has("json") {
        let verdict = report::uap_verdict_json(problem.k(), problem.eps, &res);
        println!(
            "{}",
            json_envelope(verdict, res.solve_millis, &res.tier_millis)
        );
    } else {
        println!("method                 : {}", res.method);
        println!("k (executions)         : {}", problem.k());
        println!("eps                    : {eps}");
        println!(
            "worst-case accuracy    : >= {:.2}% ({})",
            100.0 * res.worst_case_accuracy,
            if res.exact {
                "exact spec"
            } else {
                "LP relaxation"
            }
        );
        println!("worst-case hamming     : <= {:.3}", res.worst_case_hamming);
        println!(
            "individually verified  : {}/{}",
            res.individually_verified,
            problem.k()
        );
        println!(
            "lp size                : {} rows x {} vars",
            res.lp_rows, res.lp_vars
        );
        println!(
            "precision tier         : {}{}",
            res.tier.name(),
            if res.degraded { " (degraded)" } else { "" }
        );
        println!("time                   : {:.1} ms", res.solve_millis);
    }
    Ok(if res.worst_case_accuracy >= 1.0 {
        Outcome::Verified
    } else {
        Outcome::Falsified
    })
}

fn cmd_verify_mono(flags: &Flags) -> Result<Outcome, CliError> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| CliError::runtime(e.to_string()))?;
    let center = parse_vector(flags.require("center")?)?;
    if center.len() != net.input_dim() {
        return Err(CliError::usage(format!(
            "--center has {} values; model expects {}",
            center.len(),
            net.input_dim()
        )));
    }
    let feature: usize = flags
        .require("feature")?
        .parse()
        .map_err(|e| CliError::usage(format!("--feature: {e}")))?;
    let tau = flags
        .get_f64("tau")?
        .ok_or_else(|| CliError::usage("missing --tau"))?;
    let eps = flags.get_f64("eps")?.unwrap_or(0.01);
    let method = parse_method(flags)?;
    let config = parse_config(flags)?;
    let out_dim = net.output_dim();
    // Default score: last logit minus first (binary classifiers).
    let mut weights = vec![0.0; out_dim];
    weights[0] = -1.0;
    weights[out_dim - 1] = 1.0;
    let problem = MonotonicityProblem {
        plan: net.to_plan(),
        center,
        eps,
        feature,
        tau,
        output_weights: weights,
        increasing: !flags.has("decreasing"),
    };
    let hooks = parse_hooks(flags)?;
    let res = match flags.get("certificate-out") {
        None => verify_monotonicity_with_hooks(&problem, method, &config, &hooks)
            .expect("deadline-only hooks never cancel"),
        Some(path) => {
            let (res, cert) =
                verify_monotonicity_certified_with_hooks(&problem, method, &config, &hooks)
                    .expect("deadline-only hooks never cancel");
            write_certificate(path, cert)?;
            res
        }
    };
    if flags.has("json") {
        let verdict = report::mono_verdict_json(&problem, &res);
        println!(
            "{}",
            json_envelope(verdict, res.solve_millis, &res.tier_millis)
        );
    } else {
        println!("method           : {}", res.method);
        println!(
            "property         : score {} in feature x{feature} (tau = {tau}, eps = {eps})",
            if problem.increasing {
                "non-decreasing"
            } else {
                "non-increasing"
            }
        );
        println!("certified change : {:.6}", res.certified_change);
        println!(
            "precision tier   : {}{}",
            res.tier.name(),
            if res.degraded { " (degraded)" } else { "" }
        );
        println!(
            "verdict          : {}",
            if res.verified {
                "VERIFIED"
            } else {
                "not verified"
            }
        );
        println!("time             : {:.1} ms", res.solve_millis);
    }
    Ok(if res.verified {
        Outcome::Verified
    } else {
        Outcome::Falsified
    })
}

/// Builds the RaVeN relational encoding for a batch and writes it in CPLEX
/// LP format, for inspection or cross-checking with an external solver.
fn cmd_export_lp(flags: &Flags) -> Result<Outcome, CliError> {
    use raven::relational::RelationalProblem;
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| CliError::runtime(e.to_string()))?;
    let batch_text = std::fs::read_to_string(flags.require("inputs")?)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let (inputs, _) = parse_batch(&batch_text, net.input_dim())?;
    let eps = flags
        .get_f64("eps")?
        .ok_or_else(|| CliError::usage("missing --eps"))?;
    let out = flags.require("out")?;
    // Build through the generic relational API, then export.
    let plan = net.to_plan();
    let mut problem = RelationalProblem::new(
        plan,
        vec![raven_interval::Interval::symmetric(eps); net.input_dim()],
    );
    for z in &inputs {
        problem.add_perturbed_execution(z);
    }
    let text = raven::relational::export_lp(&problem, &raven::RavenConfig::default());
    std::fs::write(out, text).map_err(|e| CliError::runtime(e.to_string()))?;
    println!(
        "wrote relational LP ({} executions, eps {eps}) to {out}",
        inputs.len()
    );
    Ok(Outcome::Verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_values_and_booleans() {
        let args: Vec<String> = ["--model", "m.txt", "--decreasing", "--eps", "0.1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("model"), Some("m.txt"));
        assert!(f.has("decreasing"));
        assert_eq!(f.get_f64("eps").unwrap(), Some(0.1));
        assert!(f.get("nope").is_none());
        assert!(matches!(f.require("nope"), Err(CliError::Usage(_))));
    }

    #[test]
    fn flags_reject_positional_arguments() {
        let args = vec!["oops".to_string()];
        assert!(matches!(parse_flags(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn batch_parsing_validates_shape() {
        let good = "# comment\n1 0.1 0.2\n0 0.3 0.4\n";
        let (inputs, labels) = parse_batch(good, 2).unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(labels, vec![1, 0]);
        // Bad file *contents* are runtime errors, not usage errors.
        assert!(matches!(
            parse_batch("1 0.1\n", 2),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            parse_batch("x 0.1 0.2\n", 2),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(parse_batch("", 2), Err(CliError::Runtime(_))));
    }

    #[test]
    fn vector_parsing() {
        assert_eq!(parse_vector("0.5, 1.0,2").unwrap(), vec![0.5, 1.0, 2.0]);
        assert!(matches!(parse_vector("a,b"), Err(CliError::Usage(_))));
    }

    #[test]
    fn method_and_config_parsing() {
        let f = parse_flags(&["--method".to_string(), "box".to_string()]).unwrap();
        assert_eq!(parse_method(&f).unwrap(), Method::Box);
        let f = parse_flags(&["--pairs".to_string(), "all".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().pairs, PairStrategy::AllPairs);
        let f = parse_flags(&["--method".to_string(), "magic".to_string()]).unwrap();
        assert!(matches!(parse_method(&f), Err(CliError::Usage(_))));
    }

    #[test]
    fn threads_flag_parsing() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 1);
        let f = parse_flags(&["--threads".to_string(), "4".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 4);
        let f = parse_flags(&["--threads".to_string(), "0".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 0);
        let f = parse_flags(&["--threads".to_string(), "many".to_string()]).unwrap();
        assert!(matches!(parse_config(&f), Err(CliError::Usage(_))));
    }

    #[test]
    fn run_classifies_usage_and_runtime_errors() {
        let to_args =
            |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(matches!(run(&to_args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&to_args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&to_args(&["verify-uap", "--eps", "0.1"])),
            Err(CliError::Usage(_)) // missing --model
        ));
        // A well-formed invocation naming a nonexistent file is a runtime
        // error: usage is correct, execution failed.
        assert!(matches!(
            run(&to_args(&[
                "info",
                "--model",
                "/nonexistent/raven/model.net"
            ])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn end_to_end_train_and_verify_via_tempdir() {
        let dir = std::env::temp_dir().join("raven_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("demo.net");
        let batch = dir.join("batch.txt");
        let flags = parse_flags(&[
            "--out".to_string(),
            model.to_string_lossy().into_owned(),
            "--inputs".to_string(),
            batch.to_string_lossy().into_owned(),
        ])
        .unwrap();
        cmd_train_demo(&flags).expect("train-demo succeeds");
        let flags = parse_flags(&[
            "--model".to_string(),
            model.to_string_lossy().into_owned(),
            "--inputs".to_string(),
            batch.to_string_lossy().into_owned(),
            "--eps".to_string(),
            "0.02".to_string(),
            "--method".to_string(),
            "deeppoly".to_string(),
        ])
        .unwrap();
        cmd_verify_uap(&flags).expect("verify-uap succeeds");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
