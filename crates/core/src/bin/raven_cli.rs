//! `raven_cli` — command-line front-end for the RaVeN verifier.
//!
//! ```text
//! raven_cli info       --model net.txt
//! raven_cli train-demo --out net.txt --inputs batch.txt
//! raven_cli verify-uap --model net.txt --inputs batch.txt --eps 0.05
//!                      [--method box|deeppoly|io-lp|raven] [--pairs none|consecutive|all]
//!                      [--threads n]
//! raven_cli verify-mono --model net.txt --center 0.5,0.5,... --feature 0
//!                       --tau 0.1 [--eps 0.01] [--decreasing]
//! raven_cli export-lp  --model net.txt --inputs batch.txt --eps 0.05 --out problem.lp
//! ```
//!
//! The batch file holds one example per line: the label followed by the
//! input coordinates, whitespace-separated. `#` starts a comment.

use raven::{
    verify_monotonicity, verify_uap, Method, MonotonicityProblem, PairStrategy, RavenConfig,
    UapProblem,
};
use raven_nn::{load_network, save_network};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  raven_cli info        --model <net.txt>
  raven_cli train-demo  --out <net.txt> --inputs <batch.txt>
  raven_cli verify-uap  --model <net.txt> --inputs <batch.txt> --eps <f>
                        [--method box|deeppoly|io-lp|raven] [--pairs none|consecutive|all]
                        [--threads <n>]   (0 = all cores, 1 = sequential; default 1)
  raven_cli verify-mono --model <net.txt> --center <v,v,...> --feature <i>
                        --tau <f> [--eps <f>] [--decreasing] [--method ...] [--threads <n>]
  raven_cli export-lp   --model <net.txt> --inputs <batch.txt> --eps <f> --out <file.lp>";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let opts = parse_flags(rest)?;
    match command.as_str() {
        "info" => cmd_info(&opts),
        "train-demo" => cmd_train_demo(&opts),
        "verify-uap" => cmd_verify_uap(&opts),
        "verify-mono" => cmd_verify_mono(&opts),
        "export-lp" => cmd_export_lp(&opts),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parsed `--flag value` pairs (flags without values are stored as "true").
#[derive(Debug, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn get_f64(&self, name: &str) -> Result<Option<f64>, String> {
        self.get(name)
            .map(|v| v.parse::<f64>().map_err(|e| format!("--{name}: {e}")))
            .transpose()
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        flags.pairs.push((name.to_string(), value));
    }
    Ok(flags)
}

fn parse_method(flags: &Flags) -> Result<Method, String> {
    match flags.get("method").unwrap_or("raven") {
        "box" => Ok(Method::Box),
        "zonotope" => Ok(Method::ZonotopeIndividual),
        "deeppoly" => Ok(Method::DeepPolyIndividual),
        "io-lp" => Ok(Method::IoLp),
        "raven" => Ok(Method::Raven),
        other => Err(format!("unknown method {other:?}")),
    }
}

fn parse_config(flags: &Flags) -> Result<RavenConfig, String> {
    let pairs = match flags.get("pairs").unwrap_or("consecutive") {
        "none" => PairStrategy::None,
        "consecutive" => PairStrategy::Consecutive,
        "all" => PairStrategy::AllPairs,
        other => return Err(format!("unknown pair strategy {other:?}")),
    };
    let threads = match flags.get("threads") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("--threads: {e}"))?,
        None => 1,
    };
    Ok(RavenConfig {
        pairs,
        spec_milp: !flags.has("lp-only"),
        threads,
        ..RavenConfig::default()
    })
}

/// Parses a batch file: `label v1 v2 ...` per line, `#` comments.
fn parse_batch(text: &str, input_dim: usize) -> Result<(Vec<Vec<f64>>, Vec<usize>), String> {
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label: usize = parts
            .next()
            .expect("non-empty line")
            .parse()
            .map_err(|e| format!("line {}: bad label: {e}", ln + 1))?;
        let coords: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
        let coords = coords.map_err(|e| format!("line {}: bad value: {e}", ln + 1))?;
        if coords.len() != input_dim {
            return Err(format!(
                "line {}: expected {input_dim} coordinates, found {}",
                ln + 1,
                coords.len()
            ));
        }
        labels.push(label);
        inputs.push(coords);
    }
    if inputs.is_empty() {
        return Err("batch file contains no examples".into());
    }
    Ok((inputs, labels))
}

fn parse_vector(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|t| t.trim().parse::<f64>().map_err(|e| e.to_string()))
        .collect()
}

fn cmd_info(flags: &Flags) -> Result<(), String> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| e.to_string())?;
    println!("model: {model}");
    println!("input dim : {}", net.input_dim());
    println!("output dim: {}", net.output_dim());
    println!("parameters: {}", net.num_params());
    println!("widths    : {:?}", net.widths());
    let plan = net.to_plan();
    println!(
        "analysis plan: {} steps ({} activation layers)",
        plan.steps().len(),
        plan.activation_steps().len()
    );
    Ok(())
}

fn cmd_train_demo(flags: &Flags) -> Result<(), String> {
    use raven_nn::data::synth_digits;
    use raven_nn::train::{train_classifier, TrainConfig};
    use raven_nn::{ActKind, NetworkBuilder};
    let out = flags.require("out")?;
    let inputs_path = flags.require("inputs")?;
    let ds = synth_digits(6, 4, 280, 0.15, 42);
    let (train, test) = ds.split(0.2);
    let mut net = NetworkBuilder::new(train.input_dim)
        .dense(24, 101)
        .activation(ActKind::Relu)
        .dense(24, 102)
        .activation(ActKind::Relu)
        .dense(train.num_classes, 103)
        .build();
    let report = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 35,
            lr: 0.4,
            momentum: 0.0,
            batch_size: 8,
            seed: 7,
            adversarial: None,
        },
    );
    save_network(&net, Path::new(out)).map_err(|e| e.to_string())?;
    // Emit a batch of correctly classified test inputs.
    let mut batch = String::from("# label v1 v2 ... (correctly classified test inputs)\n");
    let mut count = 0;
    for (x, &y) in test.inputs.iter().zip(&test.labels) {
        if net.classify(x) == y {
            batch.push_str(&format!("{y}"));
            for v in x {
                batch.push_str(&format!(" {v}"));
            }
            batch.push('\n');
            count += 1;
            if count == 6 {
                break;
            }
        }
    }
    std::fs::write(inputs_path, batch).map_err(|e| e.to_string())?;
    println!(
        "trained demo model (train accuracy {:.1}%) -> {out}; {count} inputs -> {inputs_path}",
        100.0 * report.final_accuracy
    );
    Ok(())
}

fn cmd_verify_uap(flags: &Flags) -> Result<(), String> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| e.to_string())?;
    let batch_text =
        std::fs::read_to_string(flags.require("inputs")?).map_err(|e| e.to_string())?;
    let (inputs, labels) = parse_batch(&batch_text, net.input_dim())?;
    let eps = flags
        .get_f64("eps")?
        .ok_or_else(|| "missing --eps".to_string())?;
    let method = parse_method(flags)?;
    let config = parse_config(flags)?;
    let problem = UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    };
    let res = verify_uap(&problem, method, &config);
    println!("method                 : {}", res.method);
    println!("k (executions)         : {}", problem.k());
    println!("eps                    : {eps}");
    println!(
        "worst-case accuracy    : >= {:.2}% ({})",
        100.0 * res.worst_case_accuracy,
        if res.exact {
            "exact spec"
        } else {
            "LP relaxation"
        }
    );
    println!("worst-case hamming     : <= {:.3}", res.worst_case_hamming);
    println!(
        "individually verified  : {}/{}",
        res.individually_verified,
        problem.k()
    );
    println!(
        "lp size                : {} rows x {} vars",
        res.lp_rows, res.lp_vars
    );
    println!("time                   : {:.1} ms", res.solve_millis);
    Ok(())
}

fn cmd_verify_mono(flags: &Flags) -> Result<(), String> {
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| e.to_string())?;
    let center = parse_vector(flags.require("center")?)?;
    if center.len() != net.input_dim() {
        return Err(format!(
            "--center has {} values; model expects {}",
            center.len(),
            net.input_dim()
        ));
    }
    let feature: usize = flags
        .require("feature")?
        .parse()
        .map_err(|e| format!("--feature: {e}"))?;
    let tau = flags
        .get_f64("tau")?
        .ok_or_else(|| "missing --tau".to_string())?;
    let eps = flags.get_f64("eps")?.unwrap_or(0.01);
    let method = parse_method(flags)?;
    let config = parse_config(flags)?;
    let out_dim = net.output_dim();
    // Default score: last logit minus first (binary classifiers).
    let mut weights = vec![0.0; out_dim];
    weights[0] = -1.0;
    weights[out_dim - 1] = 1.0;
    let problem = MonotonicityProblem {
        plan: net.to_plan(),
        center,
        eps,
        feature,
        tau,
        output_weights: weights,
        increasing: !flags.has("decreasing"),
    };
    let res = verify_monotonicity(&problem, method, &config);
    println!("method           : {}", res.method);
    println!(
        "property         : score {} in feature x{feature} (tau = {tau}, eps = {eps})",
        if problem.increasing {
            "non-decreasing"
        } else {
            "non-increasing"
        }
    );
    println!("certified change : {:.6}", res.certified_change);
    println!(
        "verdict          : {}",
        if res.verified {
            "VERIFIED"
        } else {
            "not verified"
        }
    );
    println!("time             : {:.1} ms", res.solve_millis);
    Ok(())
}

/// Builds the RaVeN relational encoding for a batch and writes it in CPLEX
/// LP format, for inspection or cross-checking with an external solver.
fn cmd_export_lp(flags: &Flags) -> Result<(), String> {
    use raven::relational::RelationalProblem;
    let model = flags.require("model")?;
    let net = load_network(Path::new(model)).map_err(|e| e.to_string())?;
    let batch_text =
        std::fs::read_to_string(flags.require("inputs")?).map_err(|e| e.to_string())?;
    let (inputs, _) = parse_batch(&batch_text, net.input_dim())?;
    let eps = flags
        .get_f64("eps")?
        .ok_or_else(|| "missing --eps".to_string())?;
    let out = flags.require("out")?;
    // Build through the generic relational API, then export.
    let plan = net.to_plan();
    let mut problem = RelationalProblem::new(
        plan,
        vec![raven_interval::Interval::symmetric(eps); net.input_dim()],
    );
    for z in &inputs {
        problem.add_perturbed_execution(z);
    }
    let text = raven::relational::export_lp(&problem, &raven::RavenConfig::default());
    std::fs::write(out, text).map_err(|e| e.to_string())?;
    println!(
        "wrote relational LP ({} executions, eps {eps}) to {out}",
        inputs.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_values_and_booleans() {
        let args: Vec<String> = ["--model", "m.txt", "--decreasing", "--eps", "0.1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("model"), Some("m.txt"));
        assert!(f.has("decreasing"));
        assert_eq!(f.get_f64("eps").unwrap(), Some(0.1));
        assert!(f.get("nope").is_none());
        assert!(f.require("nope").is_err());
    }

    #[test]
    fn flags_reject_positional_arguments() {
        let args = vec!["oops".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn batch_parsing_validates_shape() {
        let good = "# comment\n1 0.1 0.2\n0 0.3 0.4\n";
        let (inputs, labels) = parse_batch(good, 2).unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(labels, vec![1, 0]);
        assert!(parse_batch("1 0.1\n", 2).is_err());
        assert!(parse_batch("x 0.1 0.2\n", 2).is_err());
        assert!(parse_batch("", 2).is_err());
    }

    #[test]
    fn vector_parsing() {
        assert_eq!(parse_vector("0.5, 1.0,2").unwrap(), vec![0.5, 1.0, 2.0]);
        assert!(parse_vector("a,b").is_err());
    }

    #[test]
    fn method_and_config_parsing() {
        let f = parse_flags(&["--method".to_string(), "box".to_string()]).unwrap();
        assert_eq!(parse_method(&f).unwrap(), Method::Box);
        let f = parse_flags(&["--pairs".to_string(), "all".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().pairs, PairStrategy::AllPairs);
        let f = parse_flags(&["--method".to_string(), "magic".to_string()]).unwrap();
        assert!(parse_method(&f).is_err());
    }

    #[test]
    fn threads_flag_parsing() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 1);
        let f = parse_flags(&["--threads".to_string(), "4".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 4);
        let f = parse_flags(&["--threads".to_string(), "0".to_string()]).unwrap();
        assert_eq!(parse_config(&f).unwrap().threads, 0);
        let f = parse_flags(&["--threads".to_string(), "many".to_string()]).unwrap();
        assert!(parse_config(&f).is_err());
    }

    #[test]
    fn end_to_end_train_and_verify_via_tempdir() {
        let dir = std::env::temp_dir().join("raven_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("demo.net");
        let batch = dir.join("batch.txt");
        let flags = parse_flags(&[
            "--out".to_string(),
            model.to_string_lossy().into_owned(),
            "--inputs".to_string(),
            batch.to_string_lossy().into_owned(),
        ])
        .unwrap();
        cmd_train_demo(&flags).expect("train-demo succeeds");
        let flags = parse_flags(&[
            "--model".to_string(),
            model.to_string_lossy().into_owned(),
            "--inputs".to_string(),
            batch.to_string_lossy().into_owned(),
            "--eps".to_string(),
            "0.02".to_string(),
            "--method".to_string(),
            "deeppoly".to_string(),
        ])
        .unwrap();
        cmd_verify_uap(&flags).expect("verify-uap succeeds");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
