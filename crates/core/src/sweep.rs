//! Parameter-sweep utilities: run a verifier across a range of
//! perturbation radii and summarize the results — the programmatic
//! counterpart of the paper's precision-vs-ε plots.

use crate::config::{Method, RavenConfig};
use crate::uap::{verify_uap, UapProblem, UapResult};

/// One point of an ε sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Perturbation radius.
    pub eps: f64,
    /// Result per requested method, in the order given to [`uap_sweep`].
    pub results: Vec<UapResult>,
}

/// Summary of a completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// The sweep data.
    pub points: Vec<SweepPoint>,
    /// The methods that were compared.
    pub methods: Vec<Method>,
}

impl SweepSummary {
    /// The largest ε at which `method` still certifies accuracy at least
    /// `threshold` (`None` when it never does).
    pub fn certified_radius(&self, method: Method, threshold: f64) -> Option<f64> {
        let idx = self.methods.iter().position(|&m| m == method)?;
        self.points
            .iter()
            .filter(|p| p.results[idx].worst_case_accuracy >= threshold)
            .map(|p| p.eps)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Renders CSV with one column per method.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("eps");
        for m in &self.methods {
            out.push(',');
            out.push_str(m.name());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{}", p.eps));
            for r in &p.results {
                out.push_str(&format!(",{:.4}", r.worst_case_accuracy));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs `verify_uap` for every `(eps, method)` combination.
///
/// Exploits monotonicity to skip work: once a method certifies accuracy 0
/// at some ε, all larger ε are recorded as 0 without solving (certified
/// accuracy is non-increasing in ε).
///
/// The ε grid of one method is a sequential chain (the dead-method skip
/// depends on the result at smaller ε), but the methods are mutually
/// independent: each method column runs on its own worker per
/// `config.threads`, walking its ε values in ascending order. Results are
/// therefore identical for any thread count.
///
/// # Panics
///
/// Panics when `eps_values` is unsorted or empty, or `methods` is empty.
pub fn uap_sweep(
    problem_at: impl Fn(f64) -> UapProblem + Sync,
    eps_values: &[f64],
    methods: &[Method],
    config: &RavenConfig,
) -> SweepSummary {
    assert!(!eps_values.is_empty(), "sweep needs at least one eps");
    assert!(!methods.is_empty(), "sweep needs at least one method");
    assert!(
        eps_values.windows(2).all(|w| w[0] <= w[1]),
        "eps values must be sorted ascending"
    );
    let columns: Vec<Vec<UapResult>> = crate::par::map(config.threads, methods, |&m| {
        let mut dead = false;
        eps_values
            .iter()
            .map(|&eps| {
                let problem = problem_at(eps);
                if dead {
                    UapResult {
                        method: m,
                        worst_case_accuracy: 0.0,
                        worst_case_hamming: problem.k() as f64,
                        individually_verified: 0,
                        solve_millis: 0.0,
                        lp_rows: 0,
                        lp_vars: 0,
                        exact: true,
                        counterexample_delta: None,
                        tier: crate::tier::Tier::Analysis,
                        degraded: false,
                        tier_millis: crate::tier::TierMillis::default(),
                    }
                } else {
                    let r = verify_uap(&problem, m, config);
                    if r.worst_case_accuracy <= 0.0 {
                        dead = true;
                    }
                    r
                }
            })
            .collect()
    });
    let points: Vec<SweepPoint> = eps_values
        .iter()
        .enumerate()
        .map(|(ei, &eps)| SweepPoint {
            eps,
            results: columns.iter().map(|col| col[ei].clone()).collect(),
        })
        .collect();
    SweepSummary {
        points,
        methods: methods.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::{ActKind, NetworkBuilder};

    fn problem_factory() -> impl Fn(f64) -> UapProblem {
        let net = NetworkBuilder::new(4)
            .dense(8, 61)
            .activation(ActKind::Relu)
            .dense(3, 62)
            .build();
        let inputs = vec![vec![0.3, 0.6, 0.5, 0.4], vec![0.6, 0.4, 0.5, 0.5]];
        let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
        let plan = net.to_plan();
        move |eps| UapProblem {
            plan: plan.clone(),
            inputs: inputs.clone(),
            labels: labels.clone(),
            eps,
        }
    }

    #[test]
    fn sweep_is_monotone_in_eps_per_method() {
        let sweep = uap_sweep(
            problem_factory(),
            &[0.01, 0.05, 0.1, 0.2, 0.4],
            &[Method::DeepPolyIndividual, Method::Raven],
            &RavenConfig::default(),
        );
        for mi in 0..2 {
            let accs: Vec<f64> = sweep
                .points
                .iter()
                .map(|p| p.results[mi].worst_case_accuracy)
                .collect();
            for w in accs.windows(2) {
                assert!(w[0] >= w[1] - 1e-9, "not monotone: {accs:?}");
            }
        }
    }

    #[test]
    fn certified_radius_is_consistent() {
        let sweep = uap_sweep(
            problem_factory(),
            &[0.005, 0.01, 0.02],
            &[Method::Raven],
            &RavenConfig::default(),
        );
        if let Some(radius) = sweep.certified_radius(Method::Raven, 1.0) {
            // Every eps up to the radius certifies fully.
            for p in &sweep.points {
                if p.eps <= radius {
                    assert!((p.results[0].worst_case_accuracy - 1.0).abs() < 1e-9);
                }
            }
        }
        assert_eq!(sweep.certified_radius(Method::Box, 1.0), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let sweep = uap_sweep(
            problem_factory(),
            &[0.01, 0.02],
            &[Method::Box, Method::Raven],
            &RavenConfig::default(),
        );
        let csv = sweep.to_csv();
        assert!(csv.starts_with("eps,box,raven\n"));
        assert_eq!(csv.lines().count(), 3);
    }
}
