//! Std-only parallel execution layer for the verifier's fan-out points.
//!
//! The k-execution pipeline is embarrassingly parallel in three places:
//! per-input abstract analyses and margins, pairwise DiffPoly analyses, and
//! independent verification cells in sweeps and benchmark drivers. This
//! module provides the one primitive they all share — a chunked work queue
//! drained by [`std::thread::scope`] workers — with two guarantees:
//!
//! * **Determinism**: results are collected in input order, so every item
//!   is computed by the same pure closure on the same input regardless of
//!   scheduling; `threads = N` is bit-identical to `threads = 1`.
//! * **Panic propagation**: a panic inside the closure propagates to the
//!   caller when the scope joins, exactly like the sequential loop would.
//!
//! No registry dependencies: the whole layer is `std::thread` + atomics,
//! plus an explicit hand-off of the caller's `raven-obs` trace context to
//! each scoped worker (observe-only; scheduling is unaffected).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `threads` knob to a concrete worker count: `0` means "all
/// available parallelism" (falling back to 1 when that cannot be queried),
/// any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Computes `f(0), f(1), …, f(n-1)` on up to `threads` workers and returns
/// the results in index order.
///
/// `threads` follows the [`resolve_threads`] convention; `threads <= 1` (or
/// fewer than two items) runs the plain sequential loop with zero overhead.
/// Workers claim contiguous index chunks from a shared queue, so uneven
/// per-item cost still load-balances.
///
/// # Panics
///
/// Panics when `f` panics on any index (the first observed panic payload is
/// propagated when the thread scope joins).
pub fn map_range<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Small chunks keep the queue balanced under skewed item costs while
    // amortizing the atomic claim; one chunk per item would also be correct.
    let chunk = (n / (workers * 4)).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Hand the caller's trace context to every scoped worker explicitly:
    // spans and events emitted inside `f` then attach to the owning
    // request's trace regardless of which worker ran the item.
    let trace = raven_obs::current_trace();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _trace = raven_obs::propagate_trace(trace);
                loop {
                    let lo = next.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for (i, slot) in slots.iter().enumerate().take(n.min(lo + chunk)).skip(lo) {
                        let out = f(i);
                        *slot.lock().expect("result slot poisoned") = Some(out);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled after scope join")
        })
        .collect()
}

/// Maps `f` over a slice on up to `threads` workers, preserving item order.
///
/// See [`map_range`] for the scheduling and determinism contract.
///
/// # Panics
///
/// Panics when `f` panics on any item.
pub fn map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_range(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_honors_explicit_counts() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                map(threads, &items, |&x| x * x + 1),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = map_range(4, 0, |i| i);
        assert!(out.is_empty());
        let none: Vec<u8> = map(8, &[], |x: &u8| *x);
        assert!(none.is_empty());
    }

    #[test]
    fn fewer_items_than_threads_covers_every_item() {
        let out = map_range(16, 3, |i| i + 10);
        assert_eq!(out, vec![10, 11, 12]);
        let single = map_range(16, 1, |i| i);
        assert_eq!(single, vec![0]);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            map_range(4, 16, |i| {
                if i == 11 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must cross the scope join");
    }

    #[test]
    fn chunking_load_balances_skewed_costs() {
        // Items with wildly uneven cost must still come back in order.
        let out = map_range(4, 40, |i| {
            if i % 7 == 0 {
                // Busy-work to skew the schedule.
                (0..2_000).fold(i as u64, |a, b| a.wrapping_add(b))
            } else {
                i as u64
            }
        });
        for (i, &v) in out.iter().enumerate() {
            if i % 7 == 0 {
                assert_eq!(v, (0..2_000).fold(i as u64, |a, b| a.wrapping_add(b)));
            } else {
                assert_eq!(v, i as u64);
            }
        }
    }
}
