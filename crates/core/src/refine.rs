//! Input splitting: branch-and-bound refinement over the shared
//! perturbation space.
//!
//! When the abstract analysis is too coarse at radius ε, the perturbation
//! box can be bisected along one coordinate and each half verified
//! independently; the worst case over the whole box is the minimum over
//! the halves, and each half analyzes tighter. This is the standard
//! refinement loop layered on top of incomplete verifiers (and the natural
//! "more compute → more precision" knob the paper's tooling family
//! exposes).
//!
//! Splitting works on a generalized UAP instance whose perturbation is an
//! arbitrary box (not just `[-ε, ε]^n`); [`verify_uap_box`] exposes that
//! generalization directly.

use crate::config::{Method, RavenConfig};
use crate::uap::{verify_uap_on_box, UapProblem, UapResult};
use raven_interval::Interval;

/// Options for [`verify_uap_refined`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOptions {
    /// Maximum number of leaf verifications (1 = no splitting).
    pub max_leaves: usize,
    /// Stop early when the certified accuracy reaches this target.
    pub target_accuracy: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        Self {
            max_leaves: 8,
            target_accuracy: 1.0,
        }
    }
}

/// Verifies a UAP instance over an explicit perturbation box (each input
/// coordinate's shared perturbation ranges over its own interval).
///
/// # Panics
///
/// Panics when the box width differs from the plan input width.
pub fn verify_uap_box(
    problem: &UapProblem,
    delta_box: &[Interval],
    method: Method,
    config: &RavenConfig,
) -> UapResult {
    verify_uap_on_box(problem, delta_box, method, config)
}

/// Refined UAP verification: recursively bisects the perturbation box along
/// its widest coordinate, verifying each cell, until the certified accuracy
/// reaches `options.target_accuracy` or the leaf budget is spent.
///
/// The returned accuracy is the minimum over all leaves — a sound
/// certificate for the full box that is never below the unrefined answer.
pub fn verify_uap_refined(
    problem: &UapProblem,
    method: Method,
    config: &RavenConfig,
    options: &RefineOptions,
) -> UapResult {
    let dim = problem.plan.input_dim();
    let root: Vec<Interval> = vec![Interval::symmetric(problem.eps); dim];
    let mut leaves = 1usize;
    // Worklist of boxes with their verification results.
    let root_result = verify_uap_box(problem, &root, method, config);
    let mut work: Vec<(Vec<Interval>, UapResult)> = vec![(root, root_result)];
    loop {
        // The current certificate is the minimum over the worklist.
        let worst_idx = work
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1 .1
                    .worst_case_accuracy
                    .partial_cmp(&b.1 .1.worst_case_accuracy)
                    .expect("accuracies are finite")
            })
            .map(|(i, _)| i)
            .expect("worklist non-empty");
        let worst_acc = work[worst_idx].1.worst_case_accuracy;
        if worst_acc >= options.target_accuracy || leaves + 1 > options.max_leaves {
            break;
        }
        // Split the worst cell along its widest coordinate.
        let (cell, _) = work.swap_remove(worst_idx);
        let split_dim = cell
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.width()
                    .partial_cmp(&b.1.width())
                    .expect("widths are finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty box");
        if cell[split_dim].width() <= 1e-9 {
            // Nothing left to split: restore and stop.
            let res = verify_uap_box(problem, &cell, method, config);
            work.push((cell, res));
            break;
        }
        let mid = cell[split_dim].mid();
        let mut lo_cell = cell.clone();
        lo_cell[split_dim] = Interval::new(cell[split_dim].lo(), mid);
        let mut hi_cell = cell;
        hi_cell[split_dim] = Interval::new(mid, hi_cell[split_dim].hi());
        let lo_res = verify_uap_box(problem, &lo_cell, method, config);
        let hi_res = verify_uap_box(problem, &hi_cell, method, config);
        work.push((lo_cell, lo_res));
        work.push((hi_cell, hi_res));
        leaves += 1;
    }
    // Aggregate: min accuracy, max hamming, summed time.
    let mut aggregate = work[0].1.clone();
    for (_, r) in work.iter().skip(1) {
        if r.worst_case_accuracy < aggregate.worst_case_accuracy {
            aggregate.worst_case_accuracy = r.worst_case_accuracy;
            aggregate.worst_case_hamming = r.worst_case_hamming;
            aggregate.counterexample_delta = r.counterexample_delta.clone();
            aggregate.exact = r.exact;
        }
        aggregate.solve_millis += r.solve_millis;
        aggregate.individually_verified =
            aggregate.individually_verified.min(r.individually_verified);
    }
    aggregate
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::{ActKind, NetworkBuilder};

    fn problem(eps: f64) -> UapProblem {
        let net = NetworkBuilder::new(4)
            .dense(10, 91)
            .activation(ActKind::Relu)
            .dense(8, 92)
            .activation(ActKind::Relu)
            .dense(3, 93)
            .build();
        let inputs = vec![
            vec![0.35, 0.6, 0.45, 0.5],
            vec![0.6, 0.4, 0.55, 0.45],
            vec![0.5, 0.5, 0.35, 0.65],
        ];
        let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
        UapProblem {
            plan: net.to_plan(),
            inputs,
            labels,
            eps,
        }
    }

    #[test]
    fn box_verification_matches_symmetric_eps() {
        let p = problem(0.05);
        let config = RavenConfig::default();
        let sym = crate::verify_uap(&p, Method::Raven, &config);
        let symmetric_box = vec![raven_interval::Interval::symmetric(0.05); 4];
        let boxed = verify_uap_box(&p, &symmetric_box, Method::Raven, &config);
        assert!((sym.worst_case_accuracy - boxed.worst_case_accuracy).abs() < 1e-9);
    }

    #[test]
    fn refinement_never_loses_precision() {
        let config = RavenConfig::default();
        for eps in [0.05, 0.12, 0.2] {
            let p = problem(eps);
            let base = crate::verify_uap(&p, Method::Raven, &config);
            let refined = verify_uap_refined(
                &p,
                Method::Raven,
                &config,
                &RefineOptions {
                    max_leaves: 4,
                    target_accuracy: 1.0,
                },
            );
            assert!(
                refined.worst_case_accuracy >= base.worst_case_accuracy - 1e-9,
                "eps {eps}: refined {} < base {}",
                refined.worst_case_accuracy,
                base.worst_case_accuracy
            );
        }
    }

    #[test]
    fn refined_certificate_is_sound_for_sampled_perturbations() {
        // The refined bound must hold for every concrete shared
        // perturbation inside the full box (sampling a grid).
        let p = problem(0.15);
        let net = NetworkBuilder::new(4)
            .dense(10, 91)
            .activation(ActKind::Relu)
            .dense(8, 92)
            .activation(ActKind::Relu)
            .dense(3, 93)
            .build();
        let refined = verify_uap_refined(
            &p,
            Method::Raven,
            &RavenConfig::default(),
            &RefineOptions {
                max_leaves: 6,
                target_accuracy: 1.0,
            },
        );
        for s in 0..40 {
            let d: Vec<f64> = (0..4)
                .map(|i| 0.15 * ((((s * 7 + i * 3) % 9) as f64 / 4.0) - 1.0))
                .collect();
            let correct = p
                .inputs
                .iter()
                .zip(&p.labels)
                .filter(|(z, &y)| {
                    let x: Vec<f64> = z.iter().zip(&d).map(|(a, b)| a + b).collect();
                    net.classify(&x) == y
                })
                .count() as f64
                / p.inputs.len() as f64;
            assert!(
                refined.worst_case_accuracy <= correct + 1e-9,
                "refined bound {} exceeds concrete accuracy {correct}",
                refined.worst_case_accuracy
            );
        }
    }

    #[test]
    fn splitting_a_box_partitions_it_exactly() {
        // Verifying the two halves of a box separately can never give a
        // *smaller* minimum than analyzing cells of the unsplit box (the
        // abstraction is monotone in the box), and the refined aggregate
        // takes the minimum over leaves: check against explicit halves.
        let p = problem(0.1);
        let config = RavenConfig::default();
        let full: Vec<raven_interval::Interval> = vec![raven_interval::Interval::symmetric(0.1); 4];
        let mut lo_half = full.clone();
        lo_half[0] = raven_interval::Interval::new(-0.1, 0.0);
        let mut hi_half = full.clone();
        hi_half[0] = raven_interval::Interval::new(0.0, 0.1);
        let whole = verify_uap_box(&p, &full, Method::Raven, &config).worst_case_accuracy;
        let lo = verify_uap_box(&p, &lo_half, Method::Raven, &config).worst_case_accuracy;
        let hi = verify_uap_box(&p, &hi_half, Method::Raven, &config).worst_case_accuracy;
        assert!(
            lo.min(hi) >= whole - 1e-9,
            "halves ({lo}, {hi}) below whole {whole}"
        );
    }

    #[test]
    fn leaf_budget_of_one_equals_no_refinement() {
        let p = problem(0.1);
        let config = RavenConfig::default();
        let base = crate::verify_uap(&p, Method::Raven, &config);
        let refined = verify_uap_refined(
            &p,
            Method::Raven,
            &config,
            &RefineOptions {
                max_leaves: 1,
                target_accuracy: 1.0,
            },
        );
        assert!((base.worst_case_accuracy - refined.worst_case_accuracy).abs() < 1e-9);
    }
}
