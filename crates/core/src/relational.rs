//! The general input-relational property framework.
//!
//! The paper's verifier handles "a wide range of input-relational
//! properties"; UAP robustness and monotonicity are instances of a common
//! shape, which this module exposes directly:
//!
//! * `k` executions of the same network whose inputs are affine functions
//!   of a set of shared *scenario variables* (the perturbation `d`, the
//!   base point `x`, the shift `t`, …), each scenario variable ranging over
//!   a box;
//! * per-execution input boxes (used by the per-execution analyses);
//! * an output query: minimize or maximize a linear functional over the
//!   executions' outputs.
//!
//! [`RelationalProblem`] is the builder; [`solve`] runs the analyses,
//! assembles the relational LP (with DiffPoly difference tracking between
//! the configured execution pairs) and optimizes the query. The UAP and
//! monotonicity verifiers in this crate are thin wrappers over the same
//! machinery; this module makes it available for new properties without
//! touching the encoder.

use crate::config::{PairStrategy, RavenConfig};
use crate::encode::{encode, Expr};
use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::Interval;
use raven_lp::{Direction, LinExpr, LpProblem, SolveStatus, VarId};
use raven_nn::AnalysisPlan;

/// An affine description of one execution's input coordinate in terms of
/// the scenario variables: `constant + Σ coeff_j · scenario_j`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InputCoord {
    /// Constant offset.
    pub constant: f64,
    /// `(scenario variable index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
}

impl InputCoord {
    /// A constant coordinate.
    pub fn constant(c: f64) -> Self {
        Self {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// `constant + 1·scenario_j`.
    pub fn shifted(constant: f64, scenario: usize) -> Self {
        Self {
            constant,
            terms: vec![(scenario, 1.0)],
        }
    }

    /// Adds a term (builder style).
    pub fn plus(mut self, coeff: f64, scenario: usize) -> Self {
        self.terms.push((scenario, coeff));
        self
    }

    /// Interval image over the scenario boxes.
    fn image(&self, scenarios: &[Interval]) -> Interval {
        let mut iv = Interval::point(self.constant);
        for &(j, c) in &self.terms {
            iv = iv + scenarios[j] * c;
        }
        iv
    }
}

/// A linear functional over the outputs of the executions:
/// `Σ weight · out[exec][class]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutputQuery {
    /// `(execution index, output index, weight)` terms.
    pub terms: Vec<(usize, usize, f64)>,
}

impl OutputQuery {
    /// An empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight · out[exec][class]` (builder style).
    pub fn term(mut self, weight: f64, exec: usize, class: usize) -> Self {
        self.terms.push((exec, class, weight));
        self
    }

    /// The margin `out[exec][target] − out[exec][other]`.
    pub fn margin(exec: usize, target: usize, other: usize) -> Self {
        Self::new().term(1.0, exec, target).term(-1.0, exec, other)
    }

    /// The cross-execution difference `out[a][class] − out[b][class]`.
    pub fn output_difference(a: usize, b: usize, class: usize) -> Self {
        Self::new().term(1.0, a, class).term(-1.0, b, class)
    }
}

/// A general k-execution relational verification problem.
#[derive(Debug, Clone)]
pub struct RelationalProblem {
    /// The analyzed network.
    pub plan: AnalysisPlan,
    /// Boxes for the shared scenario variables.
    pub scenarios: Vec<Interval>,
    /// Per-execution input descriptions (each of length `plan.input_dim()`).
    pub inputs: Vec<Vec<InputCoord>>,
}

impl RelationalProblem {
    /// Starts a problem over `plan` with the given scenario boxes.
    pub fn new(plan: AnalysisPlan, scenarios: Vec<Interval>) -> Self {
        Self {
            plan,
            scenarios,
            inputs: Vec::new(),
        }
    }

    /// Adds an execution whose input coordinates are the given affine
    /// functions of the scenario variables; returns its index.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate count does not match the plan input
    /// width or a scenario index is out of range.
    pub fn add_execution(&mut self, coords: Vec<InputCoord>) -> usize {
        assert_eq!(
            coords.len(),
            self.plan.input_dim(),
            "execution input width mismatch"
        );
        for c in &coords {
            for &(j, _) in &c.terms {
                assert!(j < self.scenarios.len(), "scenario index out of range");
            }
        }
        self.inputs.push(coords);
        self.inputs.len() - 1
    }

    /// Convenience: adds the execution `z + d` where `d` is the full
    /// scenario vector (requires `scenarios.len() == plan.input_dim()`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn add_perturbed_execution(&mut self, z: &[f64]) -> usize {
        assert_eq!(
            self.scenarios.len(),
            self.plan.input_dim(),
            "shared-perturbation executions need one scenario per input"
        );
        let coords = z
            .iter()
            .enumerate()
            .map(|(j, &zj)| InputCoord::shifted(zj, j))
            .collect();
        self.add_execution(coords)
    }

    /// Number of executions added so far.
    pub fn k(&self) -> usize {
        self.inputs.len()
    }
}

/// Result of a relational query.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalBound {
    /// The certified optimal value of the query over all scenarios
    /// (a lower bound when minimizing, an upper bound when maximizing).
    pub value: f64,
    /// LP rows in the encoding.
    pub lp_rows: usize,
    /// LP variables in the encoding.
    pub lp_vars: usize,
}

/// Optimizes `query` over all joint behaviours admitted by the relational
/// abstraction (per-execution DeepPoly + DiffPoly pairs per
/// `config.pairs`).
///
/// Returns `None` when the LP solver fails (callers should fall back to a
/// trivially sound answer).
///
/// # Panics
///
/// Panics when the problem has no executions or a query index is out of
/// range.
pub fn solve(
    problem: &RelationalProblem,
    query: &OutputQuery,
    direction: Direction,
    config: &RavenConfig,
) -> Option<RelationalBound> {
    assert!(problem.k() > 0, "relational problem has no executions");
    let out_dim = problem.plan.output_dim();
    for &(e, c, _) in &query.terms {
        assert!(e < problem.k(), "query execution index out of range");
        assert!(c < out_dim, "query output index out of range");
    }
    // Per-execution input boxes and DeepPoly analyses.
    let boxes: Vec<Vec<Interval>> = problem
        .inputs
        .iter()
        .map(|coords| coords.iter().map(|c| c.image(&problem.scenarios)).collect())
        .collect();
    let dps: Vec<DeepPolyAnalysis> = crate::par::map(config.threads, &boxes, |b| {
        DeepPolyAnalysis::run(&problem.plan, b)
    });
    // Pairwise difference analyses, fanned out across workers (each pair
    // only reads the already-computed per-execution analyses).
    let pair_indices = match config.pairs {
        PairStrategy::None => Vec::new(),
        strategy => strategy.pairs(problem.k()),
    };
    let diffs: Vec<(usize, usize, DiffPolyAnalysis)> =
        crate::par::map(config.threads, &pair_indices, |&(a, b)| {
            let delta: Vec<Interval> = problem.inputs[a]
                .iter()
                .zip(&problem.inputs[b])
                .map(|(ca, cb)| {
                    // Image of the affine difference over the scenarios:
                    // shared scenario terms cancel exactly.
                    let mut diff = InputCoord::constant(ca.constant - cb.constant);
                    for &(j, c) in &ca.terms {
                        diff.terms.push((j, c));
                    }
                    for &(j, c) in &cb.terms {
                        diff.terms.push((j, -c));
                    }
                    // Merge duplicate scenario indices.
                    diff.terms.sort_by_key(|&(j, _)| j);
                    let mut merged: Vec<(usize, f64)> = Vec::new();
                    for (j, c) in diff.terms {
                        match merged.last_mut() {
                            Some((pj, pc)) if *pj == j => *pc += c,
                            _ => merged.push((j, c)),
                        }
                    }
                    diff.terms = merged;
                    diff.image(&problem.scenarios)
                })
                .collect();
            (
                a,
                b,
                DiffPolyAnalysis::run(&problem.plan, &dps[a], &dps[b], &delta),
            )
        });
    // LP assembly.
    let mut lp = LpProblem::new();
    let scenario_vars: Vec<VarId> = problem
        .scenarios
        .iter()
        .map(|iv| lp.add_var(iv.lo(), iv.hi()))
        .collect();
    let input_exprs: Vec<Vec<Expr>> = problem
        .inputs
        .iter()
        .map(|coords| {
            coords
                .iter()
                .map(|c| {
                    let mut e = Expr::constant(c.constant);
                    for &(j, coef) in &c.terms {
                        e = e.plus_var(coef, scenario_vars[j]);
                    }
                    e
                })
                .collect()
        })
        .collect();
    let dp_refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
    let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
        diffs.iter().map(|(a, b, d)| (*a, *b, d)).collect();
    let encoding = encode(&mut lp, &problem.plan, &input_exprs, &dp_refs, &pair_refs);
    let mut objective = LinExpr::new();
    for &(e, c, w) in &query.terms {
        objective.push(w, encoding.execs[e].outputs[c]);
    }
    lp.set_objective(direction, objective);
    let lp_rows = lp.num_constraints();
    let lp_vars = lp.num_vars();
    match lp.solve_with(&config.simplex) {
        Ok(sol) if sol.status == SolveStatus::Optimal => Some(RelationalBound {
            value: sol.objective,
            lp_rows,
            lp_vars,
        }),
        _ => None,
    }
}

/// Builds the relational encoding for `problem` (without an objective) and
/// serializes it in CPLEX LP format — the debugging/interop path for
/// cross-checking the in-repo simplex against an external solver.
///
/// # Panics
///
/// Panics when the problem has no executions.
pub fn export_lp(problem: &RelationalProblem, config: &RavenConfig) -> String {
    assert!(problem.k() > 0, "relational problem has no executions");
    let boxes: Vec<Vec<Interval>> = problem
        .inputs
        .iter()
        .map(|coords| coords.iter().map(|c| c.image(&problem.scenarios)).collect())
        .collect();
    let dps: Vec<DeepPolyAnalysis> = crate::par::map(config.threads, &boxes, |b| {
        DeepPolyAnalysis::run(&problem.plan, b)
    });
    let pair_indices = config.pairs.pairs(problem.k());
    let diffs: Vec<(usize, usize, DiffPolyAnalysis)> =
        crate::par::map(config.threads, &pair_indices, |&(a, b)| {
            let delta: Vec<Interval> = problem.inputs[a]
                .iter()
                .zip(&problem.inputs[b])
                .map(|(ca, cb)| {
                    let mut iv = Interval::point(ca.constant - cb.constant);
                    for &(j, c) in &ca.terms {
                        iv = iv + problem.scenarios[j] * c;
                    }
                    for &(j, c) in &cb.terms {
                        iv = iv + problem.scenarios[j] * (-c);
                    }
                    iv
                })
                .collect();
            (
                a,
                b,
                DiffPolyAnalysis::run(&problem.plan, &dps[a], &dps[b], &delta),
            )
        });
    let mut lp = LpProblem::new();
    let scenario_vars: Vec<VarId> = problem
        .scenarios
        .iter()
        .map(|iv| lp.add_var(iv.lo(), iv.hi()))
        .collect();
    let input_exprs: Vec<Vec<Expr>> = problem
        .inputs
        .iter()
        .map(|coords| {
            coords
                .iter()
                .map(|c| {
                    let mut e = Expr::constant(c.constant);
                    for &(j, coef) in &c.terms {
                        e = e.plus_var(coef, scenario_vars[j]);
                    }
                    e
                })
                .collect()
        })
        .collect();
    let dp_refs: Vec<&DeepPolyAnalysis> = dps.iter().collect();
    let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
        diffs.iter().map(|(a, b, d)| (*a, *b, d)).collect();
    let _ = encode(&mut lp, &problem.plan, &input_exprs, &dp_refs, &pair_refs);
    raven_lp::to_lp_format(&lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Method;
    use raven_nn::{ActKind, NetworkBuilder};

    fn net() -> raven_nn::Network {
        NetworkBuilder::new(3)
            .dense(6, 71)
            .activation(ActKind::Relu)
            .dense(4, 72)
            .activation(ActKind::Relu)
            .dense(2, 73)
            .build()
    }

    #[test]
    fn shared_perturbation_difference_is_tightly_bounded() {
        let network = net();
        let plan = network.to_plan();
        let eps = 0.05;
        let scenarios = vec![Interval::symmetric(eps); 3];
        let mut problem = RelationalProblem::new(plan, scenarios);
        let za = vec![0.4, 0.5, 0.6];
        let zb = vec![0.5, 0.4, 0.55];
        let a = problem.add_perturbed_execution(&za);
        let b = problem.add_perturbed_execution(&zb);
        let query = OutputQuery::output_difference(a, b, 0);
        let config = RavenConfig::default();
        let hi = solve(&problem, &query, Direction::Maximize, &config)
            .expect("solves")
            .value;
        let lo = solve(&problem, &query, Direction::Minimize, &config)
            .expect("solves")
            .value;
        assert!(lo <= hi);
        // Sampled shared perturbations must respect the certified bounds.
        for s in 0..20 {
            let d: Vec<f64> = (0..3)
                .map(|i| eps * ((((s * 7 + i * 5) % 11) as f64 / 5.0) - 1.0))
                .collect();
            let xa: Vec<f64> = za.iter().zip(&d).map(|(z, dd)| z + dd).collect();
            let xb: Vec<f64> = zb.iter().zip(&d).map(|(z, dd)| z + dd).collect();
            let diff = network.forward(&xa)[0] - network.forward(&xb)[0];
            assert!(
                lo - 1e-6 <= diff && diff <= hi + 1e-6,
                "{diff} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn pairs_tighten_the_relational_bound() {
        let network = net();
        let plan = network.to_plan();
        let scenarios = vec![Interval::symmetric(0.08); 3];
        let mut problem = RelationalProblem::new(plan, scenarios);
        let a = problem.add_perturbed_execution(&[0.4, 0.5, 0.6]);
        let b = problem.add_perturbed_execution(&[0.45, 0.55, 0.5]);
        let query = OutputQuery::output_difference(a, b, 1);
        let with_pairs = solve(
            &problem,
            &query,
            Direction::Maximize,
            &RavenConfig::default(),
        )
        .expect("solves")
        .value;
        let without_pairs = solve(
            &problem,
            &query,
            Direction::Maximize,
            &RavenConfig {
                pairs: PairStrategy::None,
                ..RavenConfig::default()
            },
        )
        .expect("solves")
        .value;
        assert!(with_pairs <= without_pairs + 1e-7);
    }

    #[test]
    fn margin_query_matches_uap_margins_directionally() {
        // A margin query on a single execution is the local-robustness
        // margin; it must be at least as tight as the DeepPoly margin.
        let network = net();
        let plan = network.to_plan();
        let z = vec![0.4, 0.5, 0.6];
        let label = network.classify(&z);
        let other = 1 - label;
        let eps = 0.03;
        let mut problem = RelationalProblem::new(plan.clone(), vec![Interval::symmetric(eps); 3]);
        let e = problem.add_perturbed_execution(&z);
        let query = OutputQuery::margin(e, label, other);
        let lp_margin = solve(
            &problem,
            &query,
            Direction::Minimize,
            &RavenConfig::default(),
        )
        .expect("solves")
        .value;
        let ball = raven_interval::linf_ball(&z, eps, f64::NEG_INFINITY, f64::INFINITY);
        let dp_margin = crate::margin::deeppoly_margins(&plan, &ball, label)
            [if other < label { other } else { other - 1 }];
        assert!(
            lp_margin >= dp_margin - 1e-7,
            "lp margin {lp_margin} looser than deeppoly {dp_margin}"
        );
        let _ = Method::Raven; // silence unused-import lint paths in some cfgs
    }

    #[test]
    fn export_lp_produces_parsable_sections() {
        let network = net();
        let plan = network.to_plan();
        let mut problem = RelationalProblem::new(plan, vec![Interval::symmetric(0.05); 3]);
        problem.add_perturbed_execution(&[0.4, 0.5, 0.6]);
        problem.add_perturbed_execution(&[0.5, 0.4, 0.55]);
        let text = export_lp(&problem, &RavenConfig::default());
        assert!(text.starts_with("Minimize") || text.starts_with("Maximize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("Bounds"));
        assert!(text.ends_with("End\n"));
        // The encoding is non-trivial.
        assert!(text.lines().count() > 50, "suspiciously small LP export");
    }

    #[test]
    fn monotone_shift_scenario_reproduces_monotonicity_shape() {
        // Express the monotonicity property through the generic API:
        // scenario = (x0, x1, x2, t); exec A = x, exec B = x + t·e0.
        let network = net();
        let plan = network.to_plan();
        let mut scenarios = vec![Interval::new(0.3, 0.7); 3];
        scenarios.push(Interval::new(0.0, 0.2)); // t
        let mut problem = RelationalProblem::new(plan, scenarios);
        let coords_a: Vec<InputCoord> = (0..3).map(|j| InputCoord::shifted(0.0, j)).collect();
        let mut coords_b = coords_a.clone();
        coords_b[0] = coords_b[0].clone().plus(1.0, 3);
        let a = problem.add_execution(coords_a);
        let b = problem.add_execution(coords_b);
        let query = OutputQuery::output_difference(b, a, 0);
        let bound = solve(
            &problem,
            &query,
            Direction::Minimize,
            &RavenConfig::default(),
        )
        .expect("solves");
        // Sampled monotone shifts must respect the certified lower bound.
        for s in 0..15 {
            let x: Vec<f64> = (0..3)
                .map(|i| 0.3 + 0.4 * (((s * 3 + i * 7) % 13) as f64 / 12.0))
                .collect();
            let t = 0.2 * ((s % 5) as f64 / 4.0);
            let mut x2 = x.clone();
            x2[0] += t;
            let diff = network.forward(&x2)[0] - network.forward(&x)[0];
            assert!(diff >= bound.value - 1e-6);
        }
    }
}
