//! Verifier-level telemetry: phase timings, anytime tiers, degradations.
//!
//! Phase timing rides on [`RunHooks`](crate::RunHooks): `enter(phase)`
//! closes the previous phase's span on the calling thread and opens the
//! next, so the existing phase boundaries double as span boundaries with
//! no extra call sites. A [`PhaseScope`] guard at the top of each verify
//! entry point closes the final phase when the run ends. Everything here
//! is observe-only; see `raven-obs` for the determinism contract.

use crate::hooks::Phase;
use crate::tier::Tier;
use raven_obs::{Counter, Desc, Histogram, MetricRef, SpanGuard};
use std::cell::RefCell;

/// Seconds spent in the margins phase (per-input individual analyses).
pub static PHASE_MARGINS_SECONDS: Histogram = Histogram::new();
/// Seconds spent in the per-execution analysis phase (DeepPoly runs).
pub static PHASE_ANALYSIS_SECONDS: Histogram = Histogram::new();
/// Seconds spent in the pairwise DiffPoly phase.
pub static PHASE_DIFFPOLY_SECONDS: Histogram = Histogram::new();
/// Seconds spent assembling the LP/MILP encoding.
pub static PHASE_ENCODE_SECONDS: Histogram = Histogram::new();
/// Seconds spent solving the spec LP/MILP.
pub static PHASE_SOLVE_SECONDS: Histogram = Histogram::new();

/// Properties whose final verdict came from the exact MILP tier.
pub static TIER_MILP: Counter = Counter::new();
/// Properties whose final verdict came from the LP relaxation tier.
pub static TIER_LP: Counter = Counter::new();
/// Properties whose final verdict came from the analysis-only tier.
pub static TIER_ANALYSIS: Counter = Counter::new();
/// Verdicts marked degraded (any rung below the configured precision).
pub static DEGRADED: Counter = Counter::new();
/// Degradations that kept the MILP tier via an anytime dual bound.
pub static DEGRADED_MILP_ANYTIME: Counter = Counter::new();
/// Degradations that fell from MILP to the LP relaxation.
pub static DEGRADED_TO_LP: Counter = Counter::new();
/// Degradations that fell all the way to the analysis union bound.
pub static DEGRADED_TO_ANALYSIS: Counter = Counter::new();
/// Completed UAP verification runs.
pub static UAP_RUNS: Counter = Counter::new();
/// Completed monotonicity verification runs.
pub static MONO_RUNS: Counter = Counter::new();

thread_local! {
    /// The currently open phase span on this thread, if any.
    static CURRENT_PHASE: RefCell<Option<SpanGuard>> = const { RefCell::new(None) };
}

fn phase_hist(phase: Phase) -> &'static Histogram {
    match phase {
        Phase::Margins => &PHASE_MARGINS_SECONDS,
        Phase::Analysis => &PHASE_ANALYSIS_SECONDS,
        Phase::DiffPoly => &PHASE_DIFFPOLY_SECONDS,
        Phase::Encode => &PHASE_ENCODE_SECONDS,
        Phase::Solve => &PHASE_SOLVE_SECONDS,
    }
}

/// Closes the previous phase span on this thread and opens `phase`'s.
/// Called from [`crate::RunHooks::enter`]; no-op while telemetry is off.
pub(crate) fn phase_enter(phase: Phase) {
    CURRENT_PHASE.with(|cur| {
        let mut cur = cur.borrow_mut();
        // Drop (and thereby record) the previous span before opening the
        // next, so phases are siblings in the trace, not nested.
        cur.take();
        if raven_obs::enabled() {
            *cur = Some(raven_obs::timed_span(phase.name(), phase_hist(phase)));
        }
    });
}

/// Guard at the top of each verify entry point: installs the run's trace
/// context (from [`RunHooks::with_trace`](crate::RunHooks::with_trace)) on
/// the executing thread and closes the last open phase span when the run
/// ends, restoring the previous trace context.
pub(crate) struct PhaseScope {
    _trace: raven_obs::TraceScope,
}

impl PhaseScope {
    pub(crate) fn new(hooks: &crate::RunHooks<'_>) -> Self {
        // When the caller did not attach a context explicitly, leave
        // whatever is already installed on this thread (the serve queue
        // installs one per job) untouched.
        let trace = hooks.trace().or_else(raven_obs::current_trace);
        PhaseScope {
            _trace: raven_obs::propagate_trace(trace),
        }
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        CURRENT_PHASE.with(|cur| {
            cur.borrow_mut().take();
        });
    }
}

/// Records the per-property outcome: tier reached, plus the degradation
/// reason derived from (tier, degraded).
pub(crate) fn record_verdict(property: &'static str, tier: Tier, degraded: bool) {
    match property {
        "uap" => UAP_RUNS.inc(),
        _ => MONO_RUNS.inc(),
    }
    match tier {
        Tier::Milp => TIER_MILP.inc(),
        Tier::Lp => TIER_LP.inc(),
        Tier::Analysis => TIER_ANALYSIS.inc(),
    }
    if degraded {
        DEGRADED.inc();
        match tier {
            Tier::Milp => DEGRADED_MILP_ANYTIME.inc(),
            Tier::Lp => DEGRADED_TO_LP.inc(),
            Tier::Analysis => DEGRADED_TO_ANALYSIS.inc(),
        }
    }
}

/// Exposition table for this crate, in stable scrape order.
pub static DESCS: [Desc; 14] = [
    Desc {
        name: "raven_core_phase_seconds",
        help: "Wall-clock seconds per verification phase.",
        labels: r#"phase="margins""#,
        metric: MetricRef::Histogram(&PHASE_MARGINS_SECONDS),
    },
    Desc {
        name: "raven_core_phase_seconds",
        help: "Wall-clock seconds per verification phase.",
        labels: r#"phase="analysis""#,
        metric: MetricRef::Histogram(&PHASE_ANALYSIS_SECONDS),
    },
    Desc {
        name: "raven_core_phase_seconds",
        help: "Wall-clock seconds per verification phase.",
        labels: r#"phase="diffpoly""#,
        metric: MetricRef::Histogram(&PHASE_DIFFPOLY_SECONDS),
    },
    Desc {
        name: "raven_core_phase_seconds",
        help: "Wall-clock seconds per verification phase.",
        labels: r#"phase="encode""#,
        metric: MetricRef::Histogram(&PHASE_ENCODE_SECONDS),
    },
    Desc {
        name: "raven_core_phase_seconds",
        help: "Wall-clock seconds per verification phase.",
        labels: r#"phase="solve""#,
        metric: MetricRef::Histogram(&PHASE_SOLVE_SECONDS),
    },
    Desc {
        name: "raven_core_tier_reached_total",
        help: "Properties whose final verdict came from each anytime tier.",
        labels: r#"tier="milp""#,
        metric: MetricRef::Counter(&TIER_MILP),
    },
    Desc {
        name: "raven_core_tier_reached_total",
        help: "Properties whose final verdict came from each anytime tier.",
        labels: r#"tier="lp""#,
        metric: MetricRef::Counter(&TIER_LP),
    },
    Desc {
        name: "raven_core_tier_reached_total",
        help: "Properties whose final verdict came from each anytime tier.",
        labels: r#"tier="analysis""#,
        metric: MetricRef::Counter(&TIER_ANALYSIS),
    },
    Desc {
        name: "raven_core_degraded_total",
        help: "Verdicts marked degraded by the anytime ladder.",
        labels: "",
        metric: MetricRef::Counter(&DEGRADED),
    },
    Desc {
        name: "raven_core_degraded_reason_total",
        help: "Degradations by how far down the ladder the verdict fell.",
        labels: r#"reason="milp_anytime""#,
        metric: MetricRef::Counter(&DEGRADED_MILP_ANYTIME),
    },
    Desc {
        name: "raven_core_degraded_reason_total",
        help: "Degradations by how far down the ladder the verdict fell.",
        labels: r#"reason="to_lp""#,
        metric: MetricRef::Counter(&DEGRADED_TO_LP),
    },
    Desc {
        name: "raven_core_degraded_reason_total",
        help: "Degradations by how far down the ladder the verdict fell.",
        labels: r#"reason="to_analysis""#,
        metric: MetricRef::Counter(&DEGRADED_TO_ANALYSIS),
    },
    Desc {
        name: "raven_core_runs_total",
        help: "Completed verification runs per property family.",
        labels: r#"property="uap""#,
        metric: MetricRef::Counter(&UAP_RUNS),
    },
    Desc {
        name: "raven_core_runs_total",
        help: "Completed verification runs per property family.",
        labels: r#"property="monotonicity""#,
        metric: MetricRef::Counter(&MONO_RUNS),
    },
];

/// Every exposition table in the analysis/solver stack plus this crate's,
/// in a stable order. `raven-serve` and the CLI append their own.
pub fn all_descs() -> Vec<&'static [Desc]> {
    vec![
        &raven_lp::metrics::DESCS,
        &raven_interval::metrics::DESCS,
        &raven_deeppoly::metrics::DESCS,
        &raven_diffpoly::metrics::DESCS,
        &DESCS,
    ]
}
