//! Machine-readable result objects.
//!
//! One function per property family builds the canonical JSON *verdict*
//! object. Both `raven_cli --json` and the `raven-serve` HTTP responses
//! render results through these functions, so the two output formats are
//! the same code path and cannot drift — an acceptance requirement of the
//! service layer (a server response's `result` field is byte-identical to
//! the CLI's `result` field for the same query).
//!
//! Verdict objects are **deterministic**: they carry no timing and no
//! environment information, which makes them safe to cache and to compare
//! byte-for-byte. Wall-clock timing travels next to the verdict in each
//! envelope (`solve_millis`, `tier_millis`), never inside it. The
//! precision `tier` and `degraded` flag *are* part of the verdict — they
//! describe what the bound means, not how long it took — but degraded
//! verdicts must never be cached (a longer budget would produce a tighter
//! answer for the same query).

use crate::tier::TierMillis;

use crate::{MonotonicityProblem, MonotonicityResult, UapResult};
use raven_json::Json;

/// The canonical verdict object for a UAP run.
///
/// `verified` means the whole batch is certified (worst-case accuracy 1).
///
/// # Examples
///
/// ```
/// use raven::{report, verify_uap, Method, RavenConfig, UapProblem};
/// use raven_nn::{ActKind, NetworkBuilder};
///
/// let net = NetworkBuilder::new(2).dense(2, 5).build();
/// let problem = UapProblem {
///     plan: net.to_plan(),
///     inputs: vec![vec![0.2, 0.8]],
///     labels: vec![net.classify(&[0.2, 0.8])],
///     eps: 1e-6,
/// };
/// let res = verify_uap(&problem, Method::Raven, &RavenConfig::default());
/// let v = report::uap_verdict_json(problem.k(), problem.eps, &res);
/// assert_eq!(v.get("property").unwrap().as_str(), Some("uap"));
/// assert_eq!(v.get("verified").unwrap().as_bool(), Some(true));
/// ```
pub fn uap_verdict_json(k: usize, eps: f64, res: &UapResult) -> Json {
    Json::obj([
        ("property", Json::from("uap")),
        ("method", Json::from(res.method.name())),
        ("k", Json::from(k)),
        ("eps", Json::from(eps)),
        ("verified", Json::from(res.worst_case_accuracy >= 1.0)),
        ("worst_case_accuracy", Json::from(res.worst_case_accuracy)),
        ("worst_case_hamming", Json::from(res.worst_case_hamming)),
        (
            "individually_verified",
            Json::from(res.individually_verified),
        ),
        ("exact", Json::from(res.exact)),
        ("tier", Json::from(res.tier.name())),
        ("degraded", Json::from(res.degraded)),
        ("lp_rows", Json::from(res.lp_rows)),
        ("lp_vars", Json::from(res.lp_vars)),
        (
            "counterexample_delta",
            match &res.counterexample_delta {
                Some(d) => Json::num_array(d),
                None => Json::Null,
            },
        ),
    ])
}

/// The canonical verdict object for a monotonicity run.
pub fn mono_verdict_json(problem: &MonotonicityProblem, res: &MonotonicityResult) -> Json {
    Json::obj([
        ("property", Json::from("monotonicity")),
        ("method", Json::from(res.method.name())),
        ("feature", Json::from(problem.feature)),
        ("tau", Json::from(problem.tau)),
        ("eps", Json::from(problem.eps)),
        (
            "direction",
            Json::from(if problem.increasing {
                "non-decreasing"
            } else {
                "non-increasing"
            }),
        ),
        ("verified", Json::from(res.verified)),
        ("certified_change", Json::from(res.certified_change)),
        ("tier", Json::from(res.tier.name())),
        ("degraded", Json::from(res.degraded)),
    ])
}

/// The per-tier timing object that travels in result *envelopes* next to
/// `solve_millis` (timing is environment-dependent, so it never enters the
/// deterministic verdict).
pub fn tier_millis_json(t: &TierMillis) -> Json {
    Json::obj([
        ("analysis", Json::from(t.analysis)),
        ("lp", Json::from(t.lp)),
        ("milp", Json::from(t.milp)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_monotonicity, verify_uap, Method, RavenConfig, UapProblem};
    use raven_nn::{ActKind, NetworkBuilder};

    fn tiny_problem() -> UapProblem {
        let net = NetworkBuilder::new(3)
            .dense(4, 31)
            .activation(ActKind::Relu)
            .dense(2, 32)
            .build();
        let a = vec![0.2, 0.5, 0.8];
        let b = vec![0.7, 0.1, 0.4];
        UapProblem {
            labels: vec![net.classify(&a), net.classify(&b)],
            plan: net.to_plan(),
            inputs: vec![a, b],
            eps: 0.05,
        }
    }

    #[test]
    fn uap_verdict_is_deterministic_and_parseable() {
        let problem = tiny_problem();
        let config = RavenConfig::default();
        let r1 = verify_uap(&problem, Method::Raven, &config);
        let r2 = verify_uap(&problem, Method::Raven, &config);
        let v1 = uap_verdict_json(problem.k(), problem.eps, &r1);
        let v2 = uap_verdict_json(problem.k(), problem.eps, &r2);
        // Timing differs between the runs; the verdict must not.
        assert_eq!(v1.to_string(), v2.to_string());
        let back = raven_json::Json::parse(&v1.to_string()).unwrap();
        assert_eq!(back.get("k").unwrap().as_usize(), Some(2));
        assert_eq!(
            back.get("method").unwrap().as_str(),
            Some(Method::Raven.name())
        );
        assert_eq!(
            back.get("worst_case_accuracy").unwrap().as_f64(),
            Some(r1.worst_case_accuracy)
        );
    }

    #[test]
    fn mono_verdict_reflects_direction_and_outcome() {
        let net = NetworkBuilder::new(2)
            .dense_from(&[&[1.0, 0.0], &[0.0, 1.0]], &[0.0, 0.0])
            .build();
        let problem = MonotonicityProblem {
            plan: net.to_plan(),
            center: vec![0.5, 0.5],
            eps: 0.05,
            feature: 0,
            tau: 0.1,
            output_weights: vec![-1.0, 1.0],
            increasing: false,
        };
        let res = verify_monotonicity(&problem, Method::Raven, &RavenConfig::default());
        let v = mono_verdict_json(&problem, &res);
        assert_eq!(v.get("direction").unwrap().as_str(), Some("non-increasing"));
        assert_eq!(v.get("verified").unwrap().as_bool(), Some(res.verified));
        assert_eq!(
            v.get("certified_change").unwrap().as_f64(),
            Some(res.certified_change)
        );
    }
}
