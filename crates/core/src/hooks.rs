//! Cooperative cancellation and progress observation for long runs.
//!
//! A relational verification walks through well-separated phases — margin
//! analyses, per-execution abstract analyses, pairwise difference
//! analyses, LP assembly, and the solve. Long-running callers (the
//! `raven-serve` job workers, interactive sweeps) need two things the
//! phase structure makes cheap to provide: a *cancel* flag polled at every
//! phase boundary, and a *progress* callback fired as each phase starts.
//!
//! Cancellation is cooperative and phase-granular: an in-progress simplex
//! solve is not interrupted, but no new phase begins once the flag is set.
//! A cancelled run yields `None` rather than a partial (and therefore
//! untrustworthy) result.

use std::sync::atomic::{AtomicBool, Ordering};

/// The phases reported to progress observers, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-input individual margin analyses.
    Margins,
    /// Per-execution abstract analyses (DeepPoly runs).
    Analysis,
    /// Pairwise DiffPoly difference analyses.
    DiffPoly,
    /// LP/MILP assembly.
    Encode,
    /// LP/MILP solving.
    Solve,
}

impl Phase {
    /// Short lowercase name (stable; used in progress logs).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Margins => "margins",
            Phase::Analysis => "analysis",
            Phase::DiffPoly => "diffpoly",
            Phase::Encode => "encode",
            Phase::Solve => "solve",
        }
    }
}

/// Hooks threaded through a verification run.
///
/// The default hooks never cancel and observe nothing, so
/// [`crate::verify_uap`] and [`crate::verify_monotonicity`] delegate to
/// the hook-taking variants at zero behavioral cost.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicBool;
/// use raven::hooks::RunHooks;
///
/// let cancel = AtomicBool::new(false);
/// let hooks = RunHooks::default().with_cancel(&cancel);
/// assert!(!hooks.cancelled());
/// cancel.store(true, std::sync::atomic::Ordering::SeqCst);
/// assert!(hooks.cancelled());
/// ```
#[derive(Default, Clone, Copy)]
pub struct RunHooks<'a> {
    cancel: Option<&'a AtomicBool>,
    progress: Option<&'a (dyn Fn(Phase) + Sync)>,
}

impl<'a> RunHooks<'a> {
    /// Attaches a cancel flag, polled at phase boundaries.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Attaches a progress observer, called as each phase starts.
    pub fn with_progress(mut self, observer: &'a (dyn Fn(Phase) + Sync)) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Whether cancellation has been requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::SeqCst))
    }

    /// Reports a phase start and returns `false` when the run should stop.
    pub(crate) fn enter(&self, phase: Phase) -> bool {
        if self.cancelled() {
            return false;
        }
        if let Some(p) = self.progress {
            p(phase);
        }
        true
    }
}

impl std::fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("cancel", &self.cancel.map(|c| c.load(Ordering::SeqCst)))
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn default_hooks_never_cancel_and_enter_every_phase() {
        let hooks = RunHooks::default();
        assert!(!hooks.cancelled());
        for p in [
            Phase::Margins,
            Phase::Analysis,
            Phase::DiffPoly,
            Phase::Encode,
            Phase::Solve,
        ] {
            assert!(hooks.enter(p));
        }
    }

    #[test]
    fn progress_observer_sees_phases_in_order() {
        let seen: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let observer = |p: Phase| seen.lock().unwrap().push(p.name());
        let hooks = RunHooks::default().with_progress(&observer);
        hooks.enter(Phase::Margins);
        hooks.enter(Phase::Solve);
        assert_eq!(*seen.lock().unwrap(), vec!["margins", "solve"]);
    }

    #[test]
    fn cancel_flag_stops_phase_entry() {
        let cancel = AtomicBool::new(false);
        let hooks = RunHooks::default().with_cancel(&cancel);
        assert!(hooks.enter(Phase::Margins));
        cancel.store(true, Ordering::SeqCst);
        assert!(!hooks.enter(Phase::Analysis));
    }

    #[test]
    fn phase_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            Phase::Margins,
            Phase::Analysis,
            Phase::DiffPoly,
            Phase::Encode,
            Phase::Solve,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(names.len(), 5);
    }
}
