//! Cooperative cancellation and progress observation for long runs.
//!
//! A relational verification walks through well-separated phases — margin
//! analyses, per-execution abstract analyses, pairwise difference
//! analyses, LP assembly, and the solve. Long-running callers (the
//! `raven-serve` job workers, interactive sweeps) need two things the
//! phase structure makes cheap to provide: a *cancel* flag polled at every
//! phase boundary, and a *progress* callback fired as each phase starts.
//!
//! Cancellation is cooperative but *fine-grained*: the cancel flag is both
//! polled at every phase boundary and threaded into the LP/MILP solvers as
//! part of their [`raven_lp::Budget`], so even an in-progress simplex
//! pivot loop stops promptly. A cancelled run yields `None` rather than a
//! partial (and therefore untrustworthy) result.
//!
//! A **deadline** is different from cancellation: it asks for the best
//! *sound* answer available in time. When the deadline passes mid-solve,
//! the verification degrades down the precision ladder (MILP → LP →
//! analysis-only union bound) and still returns a result — annotated as
//! degraded — instead of `None` or an error.

use raven_lp::Budget;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The phases reported to progress observers, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Per-input individual margin analyses.
    Margins,
    /// Per-execution abstract analyses (DeepPoly runs).
    Analysis,
    /// Pairwise DiffPoly difference analyses.
    DiffPoly,
    /// LP/MILP assembly.
    Encode,
    /// LP/MILP solving.
    Solve,
}

impl Phase {
    /// Short lowercase name (stable; used in progress logs).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Margins => "margins",
            Phase::Analysis => "analysis",
            Phase::DiffPoly => "diffpoly",
            Phase::Encode => "encode",
            Phase::Solve => "solve",
        }
    }
}

/// Hooks threaded through a verification run.
///
/// The default hooks never cancel and observe nothing, so
/// [`crate::verify_uap`] and [`crate::verify_monotonicity`] delegate to
/// the hook-taking variants at zero behavioral cost.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicBool;
/// use raven::hooks::RunHooks;
///
/// let cancel = AtomicBool::new(false);
/// let hooks = RunHooks::default().with_cancel(&cancel);
/// assert!(!hooks.cancelled());
/// cancel.store(true, std::sync::atomic::Ordering::SeqCst);
/// assert!(hooks.cancelled());
/// ```
#[derive(Default, Clone, Copy)]
pub struct RunHooks<'a> {
    /// Up to two independent cancel flags: long-running services attach a
    /// process-wide flag (shutdown escalation) *and* a per-job flag (the
    /// `raven-serve` watchdog kills one wedged job without touching its
    /// neighbours). Either flag set cancels the run.
    cancels: [Option<&'a AtomicBool>; 2],
    deadline: Option<Instant>,
    progress: Option<&'a (dyn Fn(Phase) + Sync)>,
    /// Distributed-trace context for this run: installed on the verifying
    /// thread for the run's duration, so phase spans (and anything the
    /// solvers emit) attach to the owning request's trace.
    trace: Option<raven_obs::TraceCtx>,
}

impl<'a> RunHooks<'a> {
    /// Attaches a cancel flag, polled at phase boundaries and inside the
    /// solver pivot/node loops. May be called twice (e.g. a process-wide
    /// flag plus a per-job flag); a third call replaces the second flag.
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        let slot = if self.cancels[0].is_none() { 0 } else { 1 };
        self.cancels[slot] = Some(flag);
        self
    }

    /// Sets an absolute wall-clock deadline: past it, spec solves stop and
    /// the verification degrades down the precision ladder to whatever
    /// sound bound is available.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_deadline_in(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a progress observer, called as each phase starts.
    pub fn with_progress(mut self, observer: &'a (dyn Fn(Phase) + Sync)) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Attaches a distributed-trace context. The verify entry points
    /// install it on the executing thread for the duration of the run
    /// (restoring the previous context afterwards), which is what lets a
    /// caller build hooks on one thread and run verification on another —
    /// the `raven-serve` queue and `raven_worker` both rely on this.
    pub fn with_trace(mut self, ctx: raven_obs::TraceCtx) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// The attached trace context, if any.
    pub fn trace(&self) -> Option<raven_obs::TraceCtx> {
        self.trace
    }

    /// Whether cancellation has been requested (by any attached flag).
    pub fn cancelled(&self) -> bool {
        self.cancels
            .iter()
            .flatten()
            .any(|c| c.load(Ordering::SeqCst))
    }

    /// The absolute deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The solver-level budget combining this run's deadline and cancel
    /// flag, handed to `raven_lp` so solves are interruptible mid-pivot.
    pub fn lp_budget(&self) -> Budget<'a> {
        let mut b = Budget::unlimited();
        if let Some(d) = self.deadline {
            b = b.with_deadline(d);
        }
        for c in self.cancels.iter().flatten() {
            b = b.with_cancel(c);
        }
        b
    }

    /// Reports a phase start and returns `false` when the run should stop.
    /// Phase entries also delimit the telemetry phase spans (the previous
    /// phase's span closes as the next opens; see `crate::metrics`).
    pub(crate) fn enter(&self, phase: Phase) -> bool {
        if self.cancelled() {
            return false;
        }
        crate::metrics::phase_enter(phase);
        if let Some(p) = self.progress {
            p(phase);
        }
        true
    }
}

impl std::fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field(
                "cancels",
                &self
                    .cancels
                    .iter()
                    .map(|c| c.map(|c| c.load(Ordering::SeqCst)))
                    .collect::<Vec<_>>(),
            )
            .field("deadline", &self.deadline)
            .field("progress", &self.progress.is_some())
            .field("trace", &self.trace)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn default_hooks_never_cancel_and_enter_every_phase() {
        let hooks = RunHooks::default();
        assert!(!hooks.cancelled());
        for p in [
            Phase::Margins,
            Phase::Analysis,
            Phase::DiffPoly,
            Phase::Encode,
            Phase::Solve,
        ] {
            assert!(hooks.enter(p));
        }
    }

    #[test]
    fn progress_observer_sees_phases_in_order() {
        let seen: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let observer = |p: Phase| seen.lock().unwrap().push(p.name());
        let hooks = RunHooks::default().with_progress(&observer);
        hooks.enter(Phase::Margins);
        hooks.enter(Phase::Solve);
        assert_eq!(*seen.lock().unwrap(), vec!["margins", "solve"]);
    }

    #[test]
    fn cancel_flag_stops_phase_entry() {
        let cancel = AtomicBool::new(false);
        let hooks = RunHooks::default().with_cancel(&cancel);
        assert!(hooks.enter(Phase::Margins));
        cancel.store(true, Ordering::SeqCst);
        assert!(!hooks.enter(Phase::Analysis));
    }

    #[test]
    fn second_cancel_flag_cancels_independently() {
        let process = AtomicBool::new(false);
        let job = AtomicBool::new(false);
        let hooks = RunHooks::default().with_cancel(&process).with_cancel(&job);
        assert!(!hooks.cancelled());
        assert!(!hooks.lp_budget().cancelled());
        job.store(true, Ordering::SeqCst);
        assert!(hooks.cancelled(), "per-job flag cancels the run");
        assert!(hooks.lp_budget().cancelled(), "and the solver budget");
    }

    #[test]
    fn deadline_does_not_cancel_phase_entry() {
        // A passed deadline degrades solves; it must NOT abort the run the
        // way cancellation does — phases still enter.
        let hooks = RunHooks::default().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(hooks.deadline_exceeded());
        assert!(!hooks.cancelled());
        assert!(hooks.enter(Phase::Solve));
        assert!(hooks.lp_budget().exhausted());
    }

    #[test]
    fn lp_budget_reflects_cancel_and_deadline() {
        let cancel = AtomicBool::new(false);
        let hooks = RunHooks::default()
            .with_cancel(&cancel)
            .with_deadline_in(Duration::from_secs(3600));
        assert!(!hooks.lp_budget().exhausted());
        cancel.store(true, Ordering::SeqCst);
        assert!(hooks.lp_budget().exhausted());
        assert!(hooks.lp_budget().cancelled());
    }

    #[test]
    fn trace_context_rides_along_and_stays_copy() {
        let ctx = raven_obs::begin_trace(42, 7);
        let hooks = RunHooks::default().with_trace(ctx);
        // RunHooks must stay `Copy` so callers can hand it around freely.
        let copied = hooks;
        assert_eq!(copied.trace(), Some(ctx));
        assert_eq!(hooks.trace(), Some(ctx));
        assert!(RunHooks::default().trace().is_none());
        raven_obs::discard_trace(ctx);
    }

    #[test]
    fn phase_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            Phase::Margins,
            Phase::Analysis,
            Phase::DiffPoly,
            Phase::Encode,
            Phase::Solve,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(names.len(), 5);
    }
}
