//! The precision-tier ladder reported by budgeted verification runs.
//!
//! RaVeN escalates MILP ← LP ← abstract analysis for *precision*; under a
//! deadline the run walks the same ladder downward for *liveness*: whatever
//! tier completes in budget produces the verdict, and every tier is sound
//! (lower tiers only over-approximate the adversary). [`Tier`] names the
//! tier that produced the final bound and [`TierMillis`] accounts the
//! wall-clock spent per tier, so reports can show both what precision a
//! deadline bought and where the time went.

/// The precision tier of the degradation ladder that produced a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Exact (or anytime-bounded) MILP over the spec indicators.
    Milp,
    /// LP relaxation of the spec (fractional but sound).
    Lp,
    /// Abstract analysis only: per-execution margins and the union bound
    /// (`k − individually_verified` misclassifications), no spec solve.
    Analysis,
}

impl Tier {
    /// Stable lowercase name used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Milp => "milp",
            Tier::Lp => "lp",
            Tier::Analysis => "analysis",
        }
    }
}

/// Wall-clock milliseconds spent per tier during one verification run.
///
/// `analysis` covers everything before the spec solve (margins, abstract
/// analyses, DiffPoly, LP assembly); `lp`/`milp` cover the respective spec
/// solves (both may be nonzero when the run degraded from MILP to LP).
/// Timing is environment-dependent, so this lives next to — never inside —
/// the deterministic verdict object (see [`crate::report`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TierMillis {
    /// Time before any spec solve (abstract analyses and encoding).
    pub analysis: f64,
    /// Time inside the LP relaxation solve.
    pub lp: f64,
    /// Time inside the MILP solve.
    pub milp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_are_stable_and_distinct() {
        assert_eq!(Tier::Milp.name(), "milp");
        assert_eq!(Tier::Lp.name(), "lp");
        assert_eq!(Tier::Analysis.name(), "analysis");
    }

    #[test]
    fn tier_millis_defaults_to_zero() {
        let t = TierMillis::default();
        assert_eq!((t.analysis, t.lp, t.milp), (0.0, 0.0, 0.0));
    }
}
