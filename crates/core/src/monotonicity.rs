//! Monotonicity certification: `x' = x + t·e_f` with `t ∈ [0, τ]` implies
//! `score(N(x')) ≥ score(N(x))` (or ≤ for decreasing features).
//!
//! This property is *inherently* relational: the two executions share every
//! coordinate except the perturbed feature, and only difference tracking
//! preserves that correlation through the layers. The non-relational
//! baselines bound each execution's score independently, which almost never
//! certifies monotonicity — exactly the gap the paper reports.

use crate::certificate::CertSink;
use crate::config::{Method, RavenConfig};
use crate::encode::{encode, Expr};
use crate::hooks::{Phase, RunHooks};
use crate::tier::{Tier, TierMillis};
use raven_deeppoly::DeepPolyAnalysis;
use raven_diffpoly::DiffPolyAnalysis;
use raven_interval::{linf_ball, Interval, IntervalAnalysis};
use raven_lp::{Direction, LinExpr, LpError, LpProblem, SolveStatus, VarId};
use raven_nn::{AnalysisPlan, PlanStep};
use raven_tensor::Matrix;
use std::time::Instant;

/// A monotonicity verification instance.
#[derive(Debug, Clone)]
pub struct MonotonicityProblem {
    /// The analyzed network (lowered).
    pub plan: AnalysisPlan,
    /// Center of the input region.
    pub center: Vec<f64>,
    /// ℓ∞ radius of the input region around `center`.
    pub eps: f64,
    /// Index of the perturbed feature.
    pub feature: usize,
    /// Maximum feature increase `τ`.
    pub tau: f64,
    /// Linear functional over the outputs defining the score (e.g.
    /// `[-1, 1]` for the positive-class logit margin of a binary
    /// classifier).
    pub output_weights: Vec<f64>,
    /// Whether the score is expected to be non-decreasing in the feature.
    pub increasing: bool,
}

/// Outcome of a monotonicity verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotonicityResult {
    /// The method that produced this result.
    pub method: Method,
    /// Certified bound on the signed score change
    /// `score(x + t e_f) − score(x)`: a lower bound for increasing
    /// properties, an upper bound (negated) for decreasing ones. The
    /// property is verified when this is ≥ 0.
    pub certified_change: f64,
    /// Whether the property was certified.
    pub verified: bool,
    /// Wall-clock milliseconds spent.
    pub solve_millis: f64,
    /// Precision tier that produced the bound ([`Tier::Lp`] for the
    /// relational methods, [`Tier::Analysis`] for the baselines or after
    /// deadline degradation; monotonicity never solves a MILP).
    pub tier: Tier,
    /// True when a budget pushed the result below the configured
    /// precision (the bound stays sound, only looser).
    pub degraded: bool,
    /// Wall-clock spent per tier.
    pub tier_millis: TierMillis,
}

/// Extends the plan with a single-row affine step computing the score.
fn score_plan(plan: &AnalysisPlan, weights: &[f64]) -> AnalysisPlan {
    let out_dim = plan.output_dim();
    assert_eq!(weights.len(), out_dim, "score weight width mismatch");
    let mut w = Matrix::zeros(1, out_dim);
    for (j, &v) in weights.iter().enumerate() {
        w.set(0, j, v);
    }
    let mut steps = plan.steps().to_vec();
    steps.push(PlanStep::Affine {
        weight: w,
        bias: vec![0.0],
    });
    AnalysisPlan::from_parts(plan.input_dim(), steps)
}

/// The two input boxes: execution A over the base region, execution B over
/// the region shifted by `[0, τ]` along the feature.
fn input_boxes(problem: &MonotonicityProblem) -> (Vec<Interval>, Vec<Interval>) {
    let ball = linf_ball(
        &problem.center,
        problem.eps,
        f64::NEG_INFINITY,
        f64::INFINITY,
    );
    let mut shifted = ball.clone();
    shifted[problem.feature] = Interval::new(
        shifted[problem.feature].lo(),
        shifted[problem.feature].hi() + problem.tau,
    );
    (ball, shifted)
}

/// Verifies a monotonicity instance with the chosen method.
///
/// # Panics
///
/// Panics when the feature index or weight vector is inconsistent with the
/// plan.
pub fn verify_monotonicity(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
) -> MonotonicityResult {
    verify_monotonicity_with_hooks(problem, method, config, &RunHooks::default())
        .expect("default hooks never cancel")
}

/// [`verify_monotonicity`] with cancellation/progress hooks. Returns
/// `None` when the run was cancelled at a phase boundary.
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_monotonicity`].
pub fn verify_monotonicity_with_hooks(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
) -> Option<MonotonicityResult> {
    verify_monotonicity_inner(problem, method, config, hooks, None)
}

/// [`verify_monotonicity`] that additionally emits a replayable proof
/// certificate: the LP dual evidence from a secondary certified solve when
/// the relational LP finished, plus the per-neuron DeepPoly relaxation
/// records for the two executions. `None` certificate when the run
/// produced no certifiable evidence; the [`MonotonicityResult`] is the
/// same verdict the uncertified path computes.
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_monotonicity`].
pub fn verify_monotonicity_certified(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
) -> (MonotonicityResult, Option<raven_check::Certificate>) {
    verify_monotonicity_certified_with_hooks(problem, method, config, &RunHooks::default())
        .expect("default hooks never cancel")
}

/// [`verify_monotonicity_certified`] with cancellation/progress hooks.
/// Returns `None` when the run was cancelled at a phase boundary.
///
/// # Panics
///
/// Panics on the same shape violations as [`verify_monotonicity`].
pub fn verify_monotonicity_certified_with_hooks(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
) -> Option<(MonotonicityResult, Option<raven_check::Certificate>)> {
    let mut sink = CertSink::default();
    let res = verify_monotonicity_inner(problem, method, config, hooks, Some(&mut sink))?;
    let cert = sink.into_certificate("monotonicity", res.tier, res.degraded);
    Some((res, cert))
}

fn verify_monotonicity_inner(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
    hooks: &RunHooks<'_>,
    cert: Option<&mut CertSink>,
) -> Option<MonotonicityResult> {
    assert!(
        problem.feature < problem.plan.input_dim(),
        "feature index out of range"
    );
    assert!(problem.tau >= 0.0, "tau must be non-negative");
    let start = Instant::now();
    let sign = if problem.increasing { 1.0 } else { -1.0 };
    let _phase_scope = crate::metrics::PhaseScope::new(hooks);
    if !hooks.enter(Phase::Analysis) {
        return None;
    }
    let (certified_change, tier, degraded, lp_millis) = match method {
        Method::Box | Method::ZonotopeIndividual | Method::DeepPolyIndividual => (
            independent_change_bound(problem, method),
            Tier::Analysis,
            false,
            0.0,
        ),
        Method::IoLp | Method::Raven => {
            verify_monotonicity_lp(problem, method, config, sign, hooks, cert)?
        }
    };
    let millis = start.elapsed().as_secs_f64() * 1e3;
    crate::metrics::record_verdict("monotonicity", tier, degraded);
    Some(MonotonicityResult {
        method,
        certified_change,
        verified: certified_change >= 0.0,
        solve_millis: millis,
        tier,
        degraded,
        tier_millis: TierMillis {
            analysis: (millis - lp_millis).max(0.0),
            lp: lp_millis,
            milp: 0.0,
        },
    })
}

/// Independent-bounds certified change via the chosen abstract domain:
/// always sound (it simply ignores the cross-execution correlation), used
/// both by the non-relational baselines and as the degradation fallback
/// when a deadline interrupts the relational LP.
fn independent_change_bound(problem: &MonotonicityProblem, method: Method) -> f64 {
    let splan = score_plan(&problem.plan, &problem.output_weights);
    let (box_a, box_b) = input_boxes(problem);
    let (score_a, score_b) = match method {
        Method::Box => {
            let a = IntervalAnalysis::run(&splan, &box_a);
            let b = IntervalAnalysis::run(&splan, &box_b);
            (a.output()[0], b.output()[0])
        }
        Method::ZonotopeIndividual => {
            let a = raven_zonotope::ZonotopeAnalysis::run(&splan, &box_a);
            let b = raven_zonotope::ZonotopeAnalysis::run(&splan, &box_b);
            (a.output()[0], b.output()[0])
        }
        _ => {
            let a = DeepPolyAnalysis::run(&splan, &box_a);
            let b = DeepPolyAnalysis::run(&splan, &box_b);
            (a.output()[0], b.output()[0])
        }
    };
    // Independent bounds: worst signed change.
    if problem.increasing {
        score_b.lo() - score_a.hi()
    } else {
        score_a.lo() - score_b.hi()
    }
}

/// The relational LP path; returns `(certified_change, tier, degraded,
/// lp_millis)`, or `None` when cancelled.
fn verify_monotonicity_lp(
    problem: &MonotonicityProblem,
    method: Method,
    config: &RavenConfig,
    sign: f64,
    hooks: &RunHooks<'_>,
    mut cert: Option<&mut CertSink>,
) -> Option<(f64, Tier, bool, f64)> {
    let plan = &problem.plan;
    let (box_a, box_b) = input_boxes(problem);
    let dp_a = DeepPolyAnalysis::run(plan, &box_a);
    let dp_b = DeepPolyAnalysis::run(plan, &box_b);
    if let Some(sink) = cert.as_deref_mut() {
        sink.record_analyses(plan, &[&dp_a, &dp_b]);
    }
    // Base variables: the shared input x (box A) and the shift t.
    let mut lp = LpProblem::new();
    let x_vars: Vec<VarId> = box_a
        .iter()
        .map(|iv| lp.add_var(iv.lo(), iv.hi()))
        .collect();
    let t_var = lp.add_var(0.0, problem.tau);
    let exprs_a: Vec<Expr> = x_vars.iter().map(|&v| Expr::var(v)).collect();
    let exprs_b: Vec<Expr> = x_vars
        .iter()
        .enumerate()
        .map(|(j, &v)| {
            if j == problem.feature {
                Expr::var(v).plus_var(1.0, t_var)
            } else {
                Expr::var(v)
            }
        })
        .collect();
    if !hooks.enter(Phase::DiffPoly) {
        return None;
    }
    let diffs: Vec<(usize, usize, DiffPolyAnalysis)> = if method == Method::Raven {
        let delta: Vec<Interval> = (0..plan.input_dim())
            .map(|j| {
                if j == problem.feature {
                    Interval::new(0.0, problem.tau)
                } else {
                    Interval::point(0.0)
                }
            })
            .collect();
        // B − A is the natural orientation: δ = x_B − x_A ≥ 0.
        vec![(1, 0, DiffPolyAnalysis::run(plan, &dp_b, &dp_a, &delta))]
    } else {
        Vec::new()
    };
    if !hooks.enter(Phase::Encode) {
        return None;
    }
    let dp_refs = vec![&dp_a, &dp_b];
    let input_exprs = vec![exprs_a, exprs_b];
    let pair_refs: Vec<(usize, usize, &DiffPolyAnalysis)> =
        diffs.iter().map(|(a, b, d)| (*a, *b, d)).collect();
    let encoding = encode(&mut lp, plan, &input_exprs, &dp_refs, &pair_refs);
    // Objective: minimize sign · (score_B − score_A).
    let mut obj = LinExpr::new();
    for (c, &w) in problem.output_weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        obj.push(sign * w, encoding.execs[1].outputs[c]);
        obj.push(-sign * w, encoding.execs[0].outputs[c]);
    }
    if !hooks.enter(Phase::Solve) {
        return None;
    }
    lp.set_objective(Direction::Minimize, obj);
    let t0 = Instant::now();
    let res = lp.solve_with_budget(&config.simplex, &hooks.lp_budget());
    let lp_millis = t0.elapsed().as_secs_f64() * 1e3;
    Some(match res {
        Ok(sol) if sol.status == SolveStatus::Optimal => {
            if let Some(sink) = cert {
                sink.solve_lp(&lp, Tier::Lp, config, hooks);
            }
            (sol.objective, Tier::Lp, false, lp_millis)
        }
        Err(LpError::BudgetExceeded) => {
            if hooks.cancelled() {
                // Cancellation wants no answer at all; deadline expiry
                // (below) wants the best sound one.
                return None;
            }
            (
                independent_change_bound(problem, Method::DeepPolyIndividual),
                Tier::Analysis,
                true,
                lp_millis,
            )
        }
        // Numerical failure: the independent-bounds answer is still sound
        // (strictly better than the old "uncertifiable" −∞ fallback).
        _ => (
            independent_change_bound(problem, Method::DeepPolyIndividual),
            Tier::Analysis,
            false,
            lp_millis,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::{ActKind, NetworkBuilder};

    /// A hand-built network that is monotone increasing in feature 0:
    /// all paths from input 0 to the score have non-negative weight
    /// products.
    fn monotone_net() -> raven_nn::Network {
        NetworkBuilder::new(3)
            .dense_from(
                &[&[0.8, -0.4, 0.2], &[0.5, 0.3, -0.6], &[0.9, 0.1, 0.4]],
                &[0.1, -0.2, 0.0],
            )
            .activation(ActKind::Sigmoid)
            .dense_from(&[&[0.7, 0.5, 0.6], &[0.0, -0.2, 0.1]], &[0.0, 0.3])
            .build()
    }

    fn problem(tau: f64) -> MonotonicityProblem {
        MonotonicityProblem {
            plan: monotone_net().to_plan(),
            center: vec![0.5, 0.5, 0.5],
            eps: 0.1,
            feature: 0,
            tau,
            // Score = out0 − out1; increasing in input 0 because out0's
            // paths from input 0 are positive and out1's are ~0.
            output_weights: vec![1.0, -1.0],
            increasing: true,
        }
    }

    #[test]
    fn raven_certifies_monotone_network() {
        let p = problem(0.2);
        let res = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        assert!(
            res.verified,
            "raven should certify monotonicity: change {}",
            res.certified_change
        );
    }

    #[test]
    fn nonrelational_baselines_fail_where_raven_succeeds() {
        let p = problem(0.05);
        let raven = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        let dp = verify_monotonicity(&p, Method::DeepPolyIndividual, &RavenConfig::default());
        let bx = verify_monotonicity(&p, Method::Box, &RavenConfig::default());
        assert!(raven.verified);
        // With a small tau the independent-bounds gap (2×eps of slack)
        // dominates, so the baselines cannot certify.
        assert!(!dp.verified, "deeppoly-individual unexpectedly verified");
        assert!(!bx.verified, "box unexpectedly verified");
        assert!(raven.certified_change >= dp.certified_change - 1e-9);
        assert!(dp.certified_change >= bx.certified_change - 1e-9);
    }

    #[test]
    fn certified_change_lower_bounds_sampled_changes() {
        let p = problem(0.3);
        let net = monotone_net();
        let res = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        for s in 0..25 {
            let x: Vec<f64> = (0..3)
                .map(|i| 0.4 + 0.2 * (((s * 5 + i * 11) % 17) as f64 / 16.0))
                .collect();
            let t = p.tau * ((s % 7) as f64 / 6.0);
            let mut x2 = x.clone();
            x2[0] += t;
            let score = |v: &[f64]| {
                let o = net.forward(v);
                o[0] - o[1]
            };
            let change = score(&x2) - score(&x);
            assert!(
                change >= res.certified_change - 1e-7,
                "sampled change {change} below certificate {}",
                res.certified_change
            );
        }
    }

    #[test]
    fn decreasing_direction_flips_the_test() {
        // The same network is *not* monotone decreasing in feature 0.
        let mut p = problem(0.2);
        p.increasing = false;
        let res = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        assert!(!res.verified);
    }

    #[test]
    fn hooks_cancel_monotonicity_runs() {
        use std::sync::atomic::AtomicBool;
        let p = problem(0.2);
        let cancel = AtomicBool::new(true);
        let hooks = RunHooks::default().with_cancel(&cancel);
        assert!(
            verify_monotonicity_with_hooks(&p, Method::Raven, &RavenConfig::default(), &hooks)
                .is_none()
        );
        let plain = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        let hooked = verify_monotonicity_with_hooks(
            &p,
            Method::Raven,
            &RavenConfig::default(),
            &RunHooks::default(),
        )
        .unwrap();
        assert_eq!(plain.certified_change, hooked.certified_change);
    }

    #[test]
    fn zero_tau_is_trivially_monotone_for_raven_only() {
        // With tau = 0 the two executions coincide. RaVeN pins every
        // difference variable to zero and certifies exactly; the I/O LP has
        // no difference tracking, so the two copies may sit at different
        // points of the same activation relaxation band — it cannot certify
        // even this trivial instance. This is the relational gap the paper
        // highlights.
        let p = problem(0.0);
        let raven = verify_monotonicity(&p, Method::Raven, &RavenConfig::default());
        assert!(
            raven.verified,
            "raven: tau=0 must certify, change {}",
            raven.certified_change
        );
        let io = verify_monotonicity(&p, Method::IoLp, &RavenConfig::default());
        assert!(io.certified_change <= raven.certified_change + 1e-9);
    }
}
