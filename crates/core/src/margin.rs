//! Non-relational margin certification: the Box and DeepPoly baselines.
//!
//! A classification `label` is certified robust on an input region when
//! every margin `out[label] − out[c]` (`c ≠ label`) has a positive lower
//! bound. Computing the margin *inside* the abstract domain (as an extra
//! affine row that the domain propagates) is strictly tighter than
//! subtracting the two output intervals — this is the standard DeepPoly
//! margin construction, and what the paper's non-relational baseline does.

use raven_deeppoly::DeepPolyAnalysis;
use raven_interval::{Interval, IntervalAnalysis};
use raven_nn::{AnalysisPlan, PlanStep};
use raven_tensor::Matrix;
use raven_zonotope::ZonotopeAnalysis;

/// Extends `plan` with a final affine step computing the margins
/// `out[label] − out[c]` for all `c ≠ label`, in class order.
///
/// # Panics
///
/// Panics when `label >= plan.output_dim()`.
pub fn margin_plan(plan: &AnalysisPlan, label: usize) -> AnalysisPlan {
    let out_dim = plan.output_dim();
    assert!(label < out_dim, "label out of range");
    let mut w = Matrix::zeros(out_dim - 1, out_dim);
    let mut row = 0;
    for c in 0..out_dim {
        if c == label {
            continue;
        }
        w.set(row, label, 1.0);
        w.set(row, c, -1.0);
        row += 1;
    }
    let mut steps = plan.steps().to_vec();
    steps.push(PlanStep::Affine {
        weight: w,
        bias: vec![0.0; out_dim - 1],
    });
    AnalysisPlan::from_parts(plan.input_dim(), steps)
}

/// Lower bounds on all margins `out[label] − out[c]` (`c ≠ label`) over the
/// input box, computed with DeepPoly.
pub fn deeppoly_margins(plan: &AnalysisPlan, input: &[Interval], label: usize) -> Vec<f64> {
    let extended = margin_plan(plan, label);
    let analysis = DeepPolyAnalysis::run(&extended, input);
    analysis.output().iter().map(Interval::lo).collect()
}

/// Lower bounds on all margins, computed with the interval (Box) domain.
pub fn box_margins(plan: &AnalysisPlan, input: &[Interval], label: usize) -> Vec<f64> {
    let extended = margin_plan(plan, label);
    let analysis = IntervalAnalysis::run(&extended, input);
    analysis.output().iter().map(Interval::lo).collect()
}

/// Lower bounds on all margins, computed with the zonotope (DeepZ) domain,
/// intersected with the Box margins so that the zonotope baseline dominates
/// the interval baseline by construction (the DeepZ activation relaxation
/// alone can be pointwise looser than exact interval propagation).
pub fn zonotope_margins(plan: &AnalysisPlan, input: &[Interval], label: usize) -> Vec<f64> {
    let extended = margin_plan(plan, label);
    let analysis = ZonotopeAnalysis::run(&extended, input);
    let boxed = box_margins(plan, input, label);
    analysis
        .output()
        .iter()
        .zip(boxed)
        .map(|(iv, b)| iv.lo().max(b))
        .collect()
}

/// Whether all margins are strictly positive (robustness certified).
pub fn all_positive(margins: &[f64]) -> bool {
    margins.iter().all(|&m| m > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_interval::linf_ball;
    use raven_nn::{ActKind, NetworkBuilder};

    #[test]
    fn margin_plan_computes_differences_exactly_on_points() {
        let net = NetworkBuilder::new(3)
            .dense(4, 1)
            .activation(ActKind::Relu)
            .dense(3, 2)
            .build();
        let plan = net.to_plan();
        let x = [0.2, 0.5, 0.8];
        let y = net.forward(&x);
        let extended = margin_plan(&plan, 1);
        let m = extended.forward(&x);
        assert_eq!(m.len(), 2);
        assert!((m[0] - (y[1] - y[0])).abs() < 1e-12);
        assert!((m[1] - (y[1] - y[2])).abs() < 1e-12);
    }

    #[test]
    fn deeppoly_margins_tighter_than_box() {
        let net = NetworkBuilder::new(4)
            .dense(8, 5)
            .activation(ActKind::Relu)
            .dense(6, 6)
            .activation(ActKind::Relu)
            .dense(3, 7)
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5; 4], 0.03, 0.0, 1.0);
        let dp = deeppoly_margins(&plan, &ball, 0);
        let bx = box_margins(&plan, &ball, 0);
        for (d, b) in dp.iter().zip(&bx) {
            assert!(d >= &(b - 1e-9), "deeppoly margin looser than box");
        }
        assert!(
            dp.iter().zip(&bx).any(|(d, b)| d > &(b + 1e-9)),
            "deeppoly should strictly improve some margin"
        );
    }

    #[test]
    fn margins_sound_vs_sampled_points() {
        let net = NetworkBuilder::new(3)
            .dense(6, 9)
            .activation(ActKind::Tanh)
            .dense(3, 10)
            .build();
        let plan = net.to_plan();
        let center = [0.4, 0.5, 0.6];
        let eps = 0.05;
        let ball = linf_ball(&center, eps, 0.0, 1.0);
        let margins = deeppoly_margins(&plan, &ball, 2);
        for s in 0..30 {
            let x: Vec<f64> = center
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let t = (((s * 13 + i * 7) % 19) as f64 / 18.0) * 2.0 - 1.0;
                    (c + eps * t).clamp(0.0, 1.0)
                })
                .collect();
            let y = net.forward(&x);
            let mut idx = 0;
            for c in 0..3 {
                if c == 2 {
                    continue;
                }
                assert!(
                    margins[idx] <= y[2] - y[c] + 1e-9,
                    "margin bound {} exceeds concrete {}",
                    margins[idx],
                    y[2] - y[c]
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn zonotope_margins_dominate_box_and_are_sound() {
        let net = NetworkBuilder::new(3)
            .dense(6, 14)
            .activation(ActKind::Relu)
            .dense(3, 15)
            .build();
        let plan = net.to_plan();
        let center = [0.45, 0.55, 0.5];
        let eps = 0.04;
        let ball = linf_ball(&center, eps, 0.0, 1.0);
        let zm = zonotope_margins(&plan, &ball, 0);
        let bm = box_margins(&plan, &ball, 0);
        for (z, b) in zm.iter().zip(&bm) {
            assert!(z >= &(b - 1e-9), "zonotope margin looser than box");
        }
        // Soundness against sampled points.
        for s in 0..25 {
            let x: Vec<f64> = center
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    (c + eps * ((((s * 7 + i * 3) % 9) as f64 / 4.0) - 1.0)).clamp(0.0, 1.0)
                })
                .collect();
            let y = net.forward(&x);
            let mut idx = 0;
            for c in 0..3 {
                if c == 0 {
                    continue;
                }
                assert!(zm[idx] <= y[0] - y[c] + 1e-9);
                idx += 1;
            }
        }
    }

    #[test]
    fn all_positive_detects_nonpositive() {
        assert!(all_positive(&[0.1, 0.2]));
        assert!(!all_positive(&[0.1, 0.0]));
        assert!(!all_positive(&[-0.1]));
        assert!(all_positive(&[]));
    }
}
