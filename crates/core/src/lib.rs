//! RaVeN: input-relational verification of deep neural networks.
//!
//! This crate is the top of the reproduction stack: it combines the
//! per-execution DeepPoly domain (`raven-deeppoly`), the paper's novel
//! DiffPoly difference-tracking domain (`raven-diffpoly`), and the LP/MILP
//! solver (`raven-lp`) into verifiers for input-relational property
//! families:
//!
//! * **UAP robustness** ([`verify_uap`]) — worst-case accuracy of `k`
//!   inputs under one shared ℓ∞-bounded perturbation, plus the
//!   complementary worst-case hamming distance of the predicted label
//!   string;
//! * **monotonicity** ([`verify_monotonicity`]) — the network score is
//!   non-decreasing (or non-increasing) in a designated input feature.
//!
//! Every property can be checked with four methods of increasing precision
//! ([`Method`]): interval analysis, per-execution DeepPoly, the
//! I/O-relational LP (shared perturbation, no difference tracking), and the
//! full RaVeN verifier (difference tracking on execution pairs).
//!
//! # Examples
//!
//! ```
//! use raven::{verify_uap, Method, RavenConfig, UapProblem};
//! use raven_nn::{ActKind, NetworkBuilder};
//!
//! let net = NetworkBuilder::new(4)
//!     .dense(6, 1)
//!     .activation(ActKind::Relu)
//!     .dense(3, 2)
//!     .build();
//! let a = vec![0.4, 0.5, 0.6, 0.5];
//! let b = vec![0.6, 0.4, 0.5, 0.5];
//! let problem = UapProblem {
//!     plan: net.to_plan(),
//!     labels: vec![net.classify(&a), net.classify(&b)],
//!     inputs: vec![a, b],
//!     eps: 0.01,
//! };
//! let result = verify_uap(&problem, Method::Raven, &RavenConfig::default());
//! assert!(result.worst_case_accuracy >= 0.0);
//! ```

mod certificate;
mod config;
pub mod encode;
pub mod hooks;
pub mod margin;
pub mod metrics;
mod monotonicity;
pub mod par;
pub mod refine;
pub mod relational;
pub mod report;
pub mod sweep;
pub mod tier;
mod uap;

pub use config::{Method, PairStrategy, RavenConfig};
pub use hooks::{Phase, RunHooks};
pub use monotonicity::{
    verify_monotonicity, verify_monotonicity_certified, verify_monotonicity_certified_with_hooks,
    verify_monotonicity_with_hooks, MonotonicityProblem, MonotonicityResult,
};
pub use raven_check::Certificate;
pub use relational::{InputCoord, OutputQuery, RelationalBound, RelationalProblem};
pub use tier::{Tier, TierMillis};
pub use uap::{
    merge_uap_results, replay_uap_delta, shard_delta_box, shard_uap_problem, verify_targeted_uap,
    verify_targeted_uap_all, verify_uap, verify_uap_certified, verify_uap_certified_with_hooks,
    verify_uap_l1, verify_uap_shard_certified_with_hooks, verify_uap_with_hooks,
    TargetedUapProblem, TargetedUapResult, UapProblem, UapResult,
};
