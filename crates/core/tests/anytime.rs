//! Anytime-verification integration tests: degraded verdicts under a
//! deadline stay deterministic across thread counts and sound against
//! brute-force enumeration on tiny networks.
//!
//! The lp crate's chaos stall state is process-global, so the stall test
//! serializes itself behind `CHAOS_LOCK` and always clears the injection.

use raven::{
    report, verify_monotonicity_with_hooks, verify_uap_with_hooks, Method, MonotonicityProblem,
    RavenConfig, RunHooks, Tier, UapProblem,
};
use raven_nn::{ActKind, Network, NetworkBuilder};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// A tiny 2-input / 2-class network whose perturbation space can be
/// enumerated densely. It is the identity map on the positive quadrant,
/// so the decision boundary is the diagonal `x0 = x1` and inputs placed
/// near it are *not* individually robust — the spec LP/MILP genuinely has
/// to run (and can therefore be interrupted by a deadline).
fn tiny_net() -> Network {
    NetworkBuilder::new(2)
        .dense_from(&[&[1.0, 0.0], &[0.0, 1.0]], &[0.0, 0.0])
        .activation(ActKind::Relu)
        .dense_from(&[&[1.0, 0.0], &[0.0, 1.0]], &[0.0, 0.0])
        .build()
}

/// Two boundary-straddling inputs (misclassifiable at ε = 0.05, but only
/// one at a time: flipping them needs opposite-sign shared δ) and one
/// robust input.
fn tiny_problem(eps: f64) -> UapProblem {
    let net = tiny_net();
    let inputs = vec![vec![0.52, 0.48], vec![0.45, 0.55], vec![0.7, 0.3]];
    let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
    UapProblem {
        plan: net.to_plan(),
        inputs,
        labels,
        eps,
    }
}

/// Empirical worst-case accuracy over a dense grid of *shared*
/// perturbations — an upper bound on the true worst case, so any sound
/// verdict must stay at or below it.
fn enumerated_worst_case_accuracy(problem: &UapProblem, steps: usize) -> f64 {
    let net = tiny_net();
    let k = problem.k() as f64;
    let mut worst = 1.0_f64;
    for i in 0..=steps {
        for j in 0..=steps {
            let dx = -problem.eps + 2.0 * problem.eps * (i as f64) / (steps as f64);
            let dy = -problem.eps + 2.0 * problem.eps * (j as f64) / (steps as f64);
            let correct = problem
                .inputs
                .iter()
                .zip(&problem.labels)
                .filter(|(x, &label)| net.classify(&[x[0] + dx, x[1] + dy]) == label)
                .count();
            worst = worst.min(correct as f64 / k);
        }
    }
    worst
}

#[test]
fn degraded_uap_verdict_is_sound_against_enumeration() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let problem = tiny_problem(0.05);
    let empirical = enumerated_worst_case_accuracy(&problem, 40);
    let config = RavenConfig::default();

    // Unlimited run: the reference exact answer.
    let exact = verify_uap_with_hooks(&problem, Method::Raven, &config, &RunHooks::default())
        .expect("no cancellation");
    assert!(!exact.degraded);
    assert!(
        exact.worst_case_accuracy <= empirical + 1e-9,
        "exact verdict {} overclaims vs enumerated {}",
        exact.worst_case_accuracy,
        empirical
    );

    // Already-expired deadline: degrades at the first budget checkpoint,
    // identically on every machine.
    let hooks = RunHooks::default().with_deadline(Instant::now() - Duration::from_millis(1));
    let degraded =
        verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks).expect("no cancellation");
    assert!(degraded.degraded, "expired deadline must degrade");
    assert_eq!(degraded.tier, Tier::Analysis);
    assert!(
        degraded.worst_case_accuracy <= empirical + 1e-9,
        "degraded verdict {} overclaims vs enumerated {}",
        degraded.worst_case_accuracy,
        empirical
    );
    // Degradation never *gains* precision.
    assert!(degraded.worst_case_accuracy <= exact.worst_case_accuracy + 1e-9);

    // Stalled solver + finite deadline: the solve is interrupted mid-flight
    // at whatever ladder rung it reached; the verdict must stay sound.
    raven_lp::chaos::set_pivot_stall_micros(2_000);
    let hooks = RunHooks::default().with_deadline_in(Duration::from_millis(100));
    let stalled =
        verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks).expect("no cancellation");
    raven_lp::chaos::clear();
    assert!(
        stalled.worst_case_accuracy <= empirical + 1e-9,
        "stalled verdict {} overclaims vs enumerated {}",
        stalled.worst_case_accuracy,
        empirical
    );
}

#[test]
fn degraded_verdicts_are_identical_across_thread_counts() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let problem = tiny_problem(0.05);
    let verdict_with_threads = |threads: usize| {
        let config = RavenConfig {
            threads,
            ..RavenConfig::default()
        };
        let hooks = RunHooks::default().with_deadline(Instant::now() - Duration::from_millis(1));
        let res = verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks)
            .expect("no cancellation");
        assert!(res.degraded);
        report::uap_verdict_json(problem.k(), problem.eps, &res).to_string()
    };
    let single = verdict_with_threads(1);
    for threads in [2, 4] {
        assert_eq!(
            single,
            verdict_with_threads(threads),
            "degraded verdict differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn degraded_monotonicity_verdict_is_weaker_but_sound() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let net = tiny_net();
    let problem = MonotonicityProblem {
        plan: net.to_plan(),
        center: vec![0.5, 0.5],
        eps: 0.05,
        feature: 0,
        tau: 0.01,
        output_weights: vec![-1.0, 1.0],
        increasing: true,
    };
    let config = RavenConfig::default();
    let exact =
        verify_monotonicity_with_hooks(&problem, Method::Raven, &config, &RunHooks::default())
            .expect("no cancellation");
    let hooks = RunHooks::default().with_deadline(Instant::now() - Duration::from_millis(1));
    let degraded = verify_monotonicity_with_hooks(&problem, Method::Raven, &config, &hooks)
        .expect("no cancellation");
    assert!(degraded.degraded);
    assert_eq!(degraded.tier, Tier::Analysis);
    // The fallback bound is sound, therefore never above the LP bound.
    assert!(degraded.certified_change <= exact.certified_change + 1e-9);
    // A degraded "verified" must still be a true verdict.
    if degraded.verified {
        assert!(exact.verified);
    }
}

#[test]
fn deadline_bounded_run_returns_promptly_under_stall() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let problem = tiny_problem(0.05);
    let config = RavenConfig::default();
    raven_lp::chaos::set_pivot_stall_micros(2_000);
    let start = Instant::now();
    let hooks = RunHooks::default().with_deadline_in(Duration::from_millis(150));
    let res = verify_uap_with_hooks(&problem, Method::Raven, &config, &hooks);
    let elapsed = start.elapsed();
    raven_lp::chaos::clear();
    assert!(res.is_some(), "deadline-only hooks never cancel");
    // Deadline plus generous scheduling grace — far below what the stalled
    // solve would need (it sleeps 2ms per pivot).
    assert!(
        elapsed < Duration::from_secs(10),
        "stalled run took {elapsed:?} despite a 150ms deadline"
    );
}
