//! The DiffPoly analysis: difference tracking between two executions of the
//! same network at every layer, with back-substitution in δ-space.

use crate::relax::{relax_activation_diff, DiffRelaxation};
use raven_deeppoly::DeepPolyAnalysis;
use raven_interval::Interval;
use raven_nn::{AnalysisPlan, PlanStep};
use raven_tensor::Matrix;

/// Result of running DiffPoly on a pair of executions `(A, B)`.
///
/// `bounds[k]` are concrete bounds on `Δ_k = tensor_A(k) − tensor_B(k)` at
/// plan boundary `k`; `relaxations[s]` holds, for activation step `s`, the
/// per-neuron δ-space lines that the LP encoder turns into linear
/// cross-execution constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffPolyAnalysis {
    /// Concrete difference bounds at every plan boundary.
    pub bounds: Vec<Vec<Interval>>,
    /// δ-space relaxations per plan step (`None` for affine steps).
    pub relaxations: Vec<Option<Vec<DiffRelaxation>>>,
}

impl DiffPolyAnalysis {
    /// Runs difference tracking over `plan` for a pair of executions whose
    /// per-execution DeepPoly analyses are `exec_a` and `exec_b`, starting
    /// from the input-difference box `delta_in`.
    ///
    /// For UAP properties `delta_in` is the exact constant `z_A − z_B`; for
    /// monotonicity it is the perturbation box along the monotone feature.
    ///
    /// # Panics
    ///
    /// Panics when widths disagree or the per-execution analyses were not
    /// produced from the same plan.
    pub fn run(
        plan: &AnalysisPlan,
        exec_a: &DeepPolyAnalysis,
        exec_b: &DeepPolyAnalysis,
        delta_in: &[Interval],
    ) -> Self {
        assert_eq!(
            delta_in.len(),
            plan.input_dim(),
            "diffpoly: delta width mismatch"
        );
        assert_eq!(
            exec_a.bounds.len(),
            plan.steps().len() + 1,
            "diffpoly: exec A analysis does not match plan"
        );
        assert_eq!(
            exec_b.bounds.len(),
            plan.steps().len() + 1,
            "diffpoly: exec B analysis does not match plan"
        );
        // Tighten the input difference with the executions' own boxes.
        let delta0: Vec<Interval> = delta_in
            .iter()
            .zip(exec_a.bounds[0].iter().zip(&exec_b.bounds[0]))
            .map(|(d, (a, b))| {
                let t = d.intersect(&(*a - *b));
                if t.is_empty() {
                    *d
                } else {
                    t
                }
            })
            .collect();
        crate::metrics::PAIR_ANALYSES.inc();
        let mut bounds: Vec<Vec<Interval>> = Vec::with_capacity(plan.steps().len() + 1);
        bounds.push(delta0);
        let mut relaxations: Vec<Option<Vec<DiffRelaxation>>> =
            Vec::with_capacity(plan.steps().len());
        for (k, step) in plan.steps().iter().enumerate() {
            let _layer_timer = raven_obs::Timer::start(&crate::metrics::LAYER_SECONDS);
            match step {
                PlanStep::Affine { weight, .. } => {
                    // Δ_{k+1} = W Δ_k exactly (bias cancels); concrete bounds
                    // via δ-space back-substitution to the input difference.
                    let mut next = back_substitute_delta(plan, &bounds, &relaxations, k, weight);
                    // Intersect with the per-execution subtraction, which is
                    // sometimes tighter when δ is wide.
                    let exec_diff = sub_boxes(&exec_a.bounds[k + 1], &exec_b.bounds[k + 1]);
                    intersect_into(&mut next, &exec_diff);
                    bounds.push(next);
                    relaxations.push(None);
                }
                PlanStep::Act(kind) => {
                    let pre_a = &exec_a.bounds[k];
                    let pre_b = &exec_b.bounds[k];
                    let pre_d = &bounds[k];
                    let mut layer_relax = Vec::with_capacity(pre_d.len());
                    let mut next = Vec::with_capacity(pre_d.len());
                    for i in 0..pre_d.len() {
                        let (r, concrete) =
                            relax_activation_diff(*kind, &pre_a[i], &pre_b[i], &pre_d[i]);
                        layer_relax.push(r);
                        next.push(concrete);
                    }
                    bounds.push(next);
                    relaxations.push(Some(layer_relax));
                }
            }
        }
        Self {
            bounds,
            relaxations,
        }
    }

    /// Concrete bounds on the output difference `N(x_A) − N(x_B)`.
    pub fn output(&self) -> &[Interval] {
        self.bounds.last().expect("bounds non-empty")
    }
}

/// Computes concrete Δ bounds after affine step `k` by substituting the
/// δ-space relaxations backwards to the input-difference box.
///
/// Unlike the per-execution case the affine steps carry no bias (it cancels
/// in the difference), so only the coefficient matrices compose.
fn back_substitute_delta(
    plan: &AnalysisPlan,
    bounds: &[Vec<Interval>],
    relaxations: &[Option<Vec<DiffRelaxation>>],
    k: usize,
    weight: &Matrix,
) -> Vec<Interval> {
    let mut lower_coeffs = weight.clone();
    let mut lower_const = vec![0.0; weight.rows()];
    let mut upper_coeffs = weight.clone();
    let mut upper_const = vec![0.0; weight.rows()];
    for t in (0..k).rev() {
        match &plan.steps()[t] {
            PlanStep::Affine { weight: w, .. } => {
                lower_coeffs = lower_coeffs.matmul(w).expect("plan widths validated");
                upper_coeffs = upper_coeffs.matmul(w).expect("plan widths validated");
            }
            PlanStep::Act(_) => {
                let relax = relaxations[t]
                    .as_ref()
                    .expect("activation steps have recorded δ relaxations");
                // As a fallback anchor, clamp substitution through the
                // concrete Δ bounds at this boundary when a line would widen
                // things: standard DeepPoly-style diagonal substitution.
                substitute_diag(
                    &mut lower_coeffs,
                    &mut lower_const,
                    &mut upper_coeffs,
                    &mut upper_const,
                    relax,
                );
            }
        }
    }
    let delta0 = &bounds[0];
    (0..lower_coeffs.rows())
        .map(|i| {
            let lo = eval_lower(lower_coeffs.row(i), lower_const[i], delta0);
            let hi = eval_upper(upper_coeffs.row(i), upper_const[i], delta0);
            Interval::new(lo.min(hi), hi.max(lo))
        })
        .collect()
}

fn substitute_diag(
    lower_coeffs: &mut Matrix,
    lower_const: &mut [f64],
    upper_coeffs: &mut Matrix,
    upper_const: &mut [f64],
    relax: &[DiffRelaxation],
) {
    let rows = lower_coeffs.rows();
    for i in 0..rows {
        let row = lower_coeffs.row_mut(i);
        let c = &mut lower_const[i];
        for (j, r) in relax.iter().enumerate() {
            let e = row[j];
            if e >= 0.0 {
                row[j] = e * r.lower_slope;
                *c += e * r.lower_intercept;
            } else {
                row[j] = e * r.upper_slope;
                *c += e * r.upper_intercept;
            }
        }
        let row = upper_coeffs.row_mut(i);
        let c = &mut upper_const[i];
        for (j, r) in relax.iter().enumerate() {
            let e = row[j];
            if e >= 0.0 {
                row[j] = e * r.upper_slope;
                *c += e * r.upper_intercept;
            } else {
                row[j] = e * r.lower_slope;
                *c += e * r.lower_intercept;
            }
        }
    }
}

fn eval_lower(coeffs: &[f64], constant: f64, input: &[Interval]) -> f64 {
    let mut v = constant;
    for (c, iv) in coeffs.iter().zip(input) {
        v += if *c >= 0.0 { c * iv.lo() } else { c * iv.hi() };
    }
    v
}

fn eval_upper(coeffs: &[f64], constant: f64, input: &[Interval]) -> f64 {
    let mut v = constant;
    for (c, iv) in coeffs.iter().zip(input) {
        v += if *c >= 0.0 { c * iv.hi() } else { c * iv.lo() };
    }
    v
}

fn sub_boxes(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    a.iter().zip(b).map(|(x, y)| *x - *y).collect()
}

fn intersect_into(target: &mut [Interval], other: &[Interval]) {
    for (t, o) in target.iter_mut().zip(other) {
        let merged = t.intersect(o);
        if !merged.is_empty() {
            *t = merged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_interval::linf_ball;
    use raven_nn::{ActKind, NetworkBuilder};

    /// Deterministic pseudo-random point in `[lo, hi]^n`.
    fn point(n: usize, seed: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = (((i * 37 + seed * 101 + 13) % 211) as f64) / 210.0;
                lo + (hi - lo) * t
            })
            .collect()
    }

    fn check_pair_soundness(kind: ActKind, eps: f64, delta_width: f64) {
        let net = NetworkBuilder::new(4)
            .dense(8, 61)
            .activation(kind)
            .dense(6, 62)
            .activation(kind)
            .dense(3, 63)
            .build();
        let plan = net.to_plan();
        let za = point(4, 1, 0.3, 0.7);
        let zb = point(4, 2, 0.3, 0.7);
        let ball_a = linf_ball(&za, eps, 0.0, 1.0);
        let ball_b = linf_ball(&zb, eps, 0.0, 1.0);
        let dp_a = DeepPolyAnalysis::run(&plan, &ball_a);
        let dp_b = DeepPolyAnalysis::run(&plan, &ball_b);
        // Shared perturbation: x_a − x_b = (z_a − z_b) + w where |w| ≤ width.
        let delta: Vec<Interval> = za
            .iter()
            .zip(&zb)
            .map(|(&a, &b)| Interval::new(a - b - delta_width, a - b + delta_width))
            .collect();
        let diff = DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, &delta);
        // Sample concrete paired executions with a shared perturbation.
        for s in 0..40 {
            let shift: Vec<f64> = point(4, s + 7, -eps, eps);
            let xa: Vec<f64> = za
                .iter()
                .zip(&shift)
                .map(|(&z, &d)| (z + d).clamp(0.0, 1.0))
                .collect();
            let xb: Vec<f64> = zb
                .iter()
                .zip(&shift)
                .map(|(&z, &d)| (z + d).clamp(0.0, 1.0))
                .collect();
            // Respect the declared delta box (clamping can violate it).
            let ok = xa
                .iter()
                .zip(&xb)
                .zip(&delta)
                .all(|((&a, &b), d)| d.contains(a - b));
            if !ok {
                continue;
            }
            let ya = net.forward(&xa);
            let yb = net.forward(&xb);
            for ((iv, &va), &vb) in diff.output().iter().zip(&ya).zip(&yb) {
                let dv = va - vb;
                assert!(
                    iv.lo() - 1e-7 <= dv && dv <= iv.hi() + 1e-7,
                    "{kind}: output diff {dv} outside {iv}"
                );
            }
        }
    }

    #[test]
    fn diffpoly_is_sound_for_relu_pairs() {
        check_pair_soundness(ActKind::Relu, 0.05, 1e-9);
    }

    #[test]
    fn diffpoly_is_sound_for_sigmoid_pairs() {
        check_pair_soundness(ActKind::Sigmoid, 0.08, 1e-9);
    }

    #[test]
    fn diffpoly_is_sound_for_tanh_pairs() {
        check_pair_soundness(ActKind::Tanh, 0.08, 1e-9);
    }

    #[test]
    fn shared_perturbation_keeps_difference_tight() {
        // With a shared perturbation the input difference is an exact
        // constant, so DiffPoly's output difference bounds must be far
        // tighter than the subtraction of per-execution DeepPoly bounds.
        let net = NetworkBuilder::new(4)
            .dense(10, 71)
            .activation(ActKind::Relu)
            .dense(8, 72)
            .activation(ActKind::Relu)
            .dense(2, 73)
            .build();
        let plan = net.to_plan();
        let za = point(4, 3, 0.35, 0.65);
        let zb = point(4, 4, 0.35, 0.65);
        let eps = 0.06;
        let dp_a = DeepPolyAnalysis::run(&plan, &linf_ball(&za, eps, 0.0, 1.0));
        let dp_b = DeepPolyAnalysis::run(&plan, &linf_ball(&zb, eps, 0.0, 1.0));
        let delta: Vec<Interval> = za
            .iter()
            .zip(&zb)
            .map(|(&a, &b)| Interval::point(a - b))
            .collect();
        let diff = DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, &delta);
        let mut tighter = 0;
        for (k, (da, db)) in dp_a.output().iter().zip(dp_b.output()).enumerate() {
            let naive = *da - *db;
            let tracked = diff.output()[k];
            assert!(tracked.width() <= naive.width() + 1e-9);
            if tracked.width() < naive.width() * 0.9 {
                tighter += 1;
            }
        }
        assert!(
            tighter > 0,
            "difference tracking gained nothing over subtraction"
        );
    }

    #[test]
    fn identical_executions_have_zero_difference() {
        let net = NetworkBuilder::new(3)
            .dense(5, 81)
            .activation(ActKind::Relu)
            .dense(2, 82)
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5, 0.4, 0.6], 0.05, 0.0, 1.0);
        let dp = DeepPolyAnalysis::run(&plan, &ball);
        let delta: Vec<Interval> = (0..3).map(|_| Interval::point(0.0)).collect();
        let diff = DiffPolyAnalysis::run(&plan, &dp, &dp, &delta);
        for iv in diff.output() {
            assert!(iv.lo() <= 1e-9 && iv.hi() >= -1e-9);
            assert!(iv.width() < 1e-9, "difference of identical runs: {iv}");
        }
    }

    #[test]
    fn monotone_delta_propagates_sign_through_monotone_net() {
        // All-positive weights + monotone activation: δ0 ≥ 0 implies the
        // output difference stays ≥ 0; DiffPoly should certify this.
        let net = NetworkBuilder::new(2)
            .dense_from(&[&[0.5, 0.3], &[0.2, 0.9]], &[0.1, -0.2])
            .activation(ActKind::Sigmoid)
            .dense_from(&[&[0.7, 0.4]], &[0.0])
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5, 0.5], 0.3, 0.0, 1.0);
        let dp_a = DeepPolyAnalysis::run(&plan, &ball);
        let dp_b = DeepPolyAnalysis::run(&plan, &ball);
        let delta = vec![Interval::new(0.0, 0.2), Interval::point(0.0)];
        let diff = DiffPolyAnalysis::run(&plan, &dp_a, &dp_b, &delta);
        assert!(
            diff.output()[0].lo() >= -1e-9,
            "monotone sign lost: {}",
            diff.output()[0]
        );
    }
}
