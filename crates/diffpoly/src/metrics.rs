//! DiffPoly telemetry: pair-analysis counts and δ-space layer timings.
//! Observe-only; see `raven-obs` for the determinism contract.

use raven_obs::{Counter, Desc, Histogram, MetricRef};

/// Execution pairs analyzed (one per [`crate::DiffPolyAnalysis::run`]).
pub static PAIR_ANALYSES: Counter = Counter::new();
/// Wall-clock seconds per δ-space plan step. Only recorded while
/// telemetry is enabled.
pub static LAYER_SECONDS: Histogram = Histogram::new();

/// Exposition table for this crate, in stable scrape order.
pub static DESCS: [Desc; 2] = [
    Desc {
        name: "raven_diffpoly_pair_analyses_total",
        help: "Execution pairs analyzed by DiffPoly difference tracking.",
        labels: "",
        metric: MetricRef::Counter(&PAIR_ANALYSES),
    },
    Desc {
        name: "raven_diffpoly_layer_seconds",
        help: "Wall-clock seconds per DiffPoly delta-space plan step.",
        labels: "",
        metric: MetricRef::Histogram(&LAYER_SECONDS),
    },
];
