//! DiffPoly: the paper's novel abstract domain for difference tracking.
//!
//! Precise verification of input-relational properties (universal
//! adversarial perturbations, monotonicity, hamming distance) requires
//! reasoning about multiple executions of the same network. DiffPoly tracks
//! the *difference* `Δ_k = tensor_A(k) − tensor_B(k)` between two executions
//! at every layer:
//!
//! * affine layers propagate differences **exactly** (`Δ' = W Δ`; the bias
//!   cancels),
//! * activation layers use custom difference transformers
//!   ([`relax_relu_diff`], [`relax_sshape_diff`]) that case-split on the two
//!   executions' activation states and emit sound δ-space lines,
//! * concrete difference bounds come from back-substitution to the
//!   input-difference box, intersected with the per-execution DeepPoly
//!   subtraction.
//!
//! The δ-space lines are exported as [`DiffRelaxation`]s; the `raven` crate
//! turns them into the linear cross-execution constraints of the relational
//! LP.
//!
//! # Examples
//!
//! ```
//! use raven_deeppoly::DeepPolyAnalysis;
//! use raven_diffpoly::DiffPolyAnalysis;
//! use raven_interval::{linf_ball, Interval};
//! use raven_nn::{ActKind, NetworkBuilder};
//!
//! let plan = NetworkBuilder::new(2)
//!     .dense(4, 1)
//!     .activation(ActKind::Relu)
//!     .dense(2, 2)
//!     .build()
//!     .to_plan();
//! let ball = linf_ball(&[0.5, 0.5], 0.1, 0.0, 1.0);
//! let dp = DeepPolyAnalysis::run(&plan, &ball);
//! // Same execution twice: the difference is exactly zero everywhere.
//! let delta = vec![Interval::point(0.0); 2];
//! let diff = DiffPolyAnalysis::run(&plan, &dp, &dp, &delta);
//! assert!(diff.output().iter().all(|iv| iv.width() < 1e-9));
//! ```

mod analyze;
pub mod metrics;
mod relax;

pub use analyze::DiffPolyAnalysis;
pub use relax::{relax_activation_diff, relax_relu_diff, relax_sshape_diff, DiffRelaxation};
