//! Difference transformers: linear bounds on `Δ = act(x) − act(y)` in terms
//! of the pre-activation difference `δ = x − y`.
//!
//! This is the heart of the paper's DiffPoly domain. For ReLU the
//! transformer case-splits on the activation states of the two executions
//! (active / inactive / unstable)² and emits, per neuron, one sound lower
//! and one sound upper line in δ-space plus concrete bounds; the
//! 1-Lipschitz clamp `min(δ,0) ≤ Δ ≤ max(δ,0)` is always intersected. For
//! the S-shaped activations the transformer uses the mean-value theorem:
//! `Δ = σ'(ξ)·δ` with the slope range taken over the joint pre-activation
//! hull.

use raven_interval::Interval;
use raven_nn::ActKind;

/// A pair of δ-space lines `λ_l·δ + μ_l ≤ Δ ≤ λ_u·δ + μ_u`, valid for all
/// `(x, y)` in the analyzed region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffRelaxation {
    /// Slope of the lower line (in δ).
    pub lower_slope: f64,
    /// Intercept of the lower line.
    pub lower_intercept: f64,
    /// Slope of the upper line (in δ).
    pub upper_slope: f64,
    /// Intercept of the upper line.
    pub upper_intercept: f64,
}

impl DiffRelaxation {
    /// The exact relaxation `Δ = s·δ + t`.
    pub fn exact(slope: f64, intercept: f64) -> Self {
        Self {
            lower_slope: slope,
            lower_intercept: intercept,
            upper_slope: slope,
            upper_intercept: intercept,
        }
    }

    /// Evaluates the lower line.
    pub fn lower_at(&self, d: f64) -> f64 {
        self.lower_slope * d + self.lower_intercept
    }

    /// Evaluates the upper line.
    pub fn upper_at(&self, d: f64) -> f64 {
        self.upper_slope * d + self.upper_intercept
    }

    /// Interval image of the relaxation over a δ interval.
    pub fn image(&self, d: &Interval) -> Interval {
        let lo = self.lower_at(d.lo()).min(self.lower_at(d.hi()));
        let hi = self.upper_at(d.lo()).max(self.upper_at(d.hi()));
        Interval::new(lo, hi)
    }
}

/// One sound line `slope·δ + intercept`.
#[derive(Debug, Clone, Copy)]
struct Line {
    slope: f64,
    intercept: f64,
}

impl Line {
    fn at(&self, d: f64) -> f64 {
        self.slope * d + self.intercept
    }
}

/// Picks the lower-bound line whose value at the δ midpoint is largest
/// (tightest on average). All candidates must be individually sound.
fn best_lower(candidates: &[Line], d: &Interval) -> Line {
    let mid = d.mid();
    *candidates
        .iter()
        .max_by(|a, b| a.at(mid).partial_cmp(&b.at(mid)).expect("finite lines"))
        .expect("at least one candidate")
}

/// Picks the upper-bound line with the smallest midpoint value.
fn best_upper(candidates: &[Line], d: &Interval) -> Line {
    let mid = d.mid();
    *candidates
        .iter()
        .min_by(|a, b| a.at(mid).partial_cmp(&b.at(mid)).expect("finite lines"))
        .expect("at least one candidate")
}

/// Activation state of one execution's neuron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Active,
    Inactive,
    Unstable,
}

fn state(x: &Interval) -> State {
    if x.lo() >= 0.0 {
        State::Active
    } else if x.hi() <= 0.0 {
        State::Inactive
    } else {
        State::Unstable
    }
}

/// The ReLU difference transformer.
///
/// Inputs: pre-activation bounds `x` (execution A), `y` (execution B), and
/// the pre-activation difference bounds `d` (already intersected with
/// `x − y` by the caller or not — this function intersects again). Returns
/// the δ-space relaxation and concrete bounds on `Δ = ReLU(x) − ReLU(y)`.
///
/// # Panics
///
/// Panics when any input interval is empty.
pub fn relax_relu_diff(x: &Interval, y: &Interval, d: &Interval) -> (DiffRelaxation, Interval) {
    assert!(
        !x.is_empty() && !y.is_empty() && !d.is_empty(),
        "relu diff transformer: empty input interval"
    );
    // Tighten δ with the executions' own bounds.
    let d = d.intersect(&(*x - *y));
    let d = if d.is_empty() {
        // Numerically inconsistent inputs; fall back to the raw subtraction.
        *x - *y
    } else {
        d
    };
    let (ld, ud) = (d.lo(), d.hi());
    let lipschitz = Interval::new(ld.min(0.0), ud.max(0.0));
    let exec_diff = relu_interval(x) - relu_interval(y);
    let (sx, sy) = (state(x), state(y));
    let (lower, upper, case_interval) = match (sx, sy) {
        (State::Active, State::Active) => {
            let l = Line {
                slope: 1.0,
                intercept: 0.0,
            };
            (l, l, d)
        }
        (State::Inactive, State::Inactive) => {
            let l = Line {
                slope: 0.0,
                intercept: 0.0,
            };
            (l, l, Interval::point(0.0))
        }
        (State::Active, State::Inactive) => {
            // Δ = x: bounded by [lx, ux]; in δ-space Δ = δ + y.
            let lower = best_lower(
                &[
                    Line {
                        slope: 1.0,
                        intercept: y.lo(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: x.lo(),
                    },
                ],
                &d,
            );
            let upper = best_upper(
                &[
                    Line {
                        slope: 1.0,
                        intercept: y.hi(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: x.hi(),
                    },
                ],
                &d,
            );
            (lower, upper, *x)
        }
        (State::Inactive, State::Active) => {
            // Δ = −y: bounded by [−uy, −ly]; in δ-space Δ = δ − x.
            let lower = best_lower(
                &[
                    Line {
                        slope: 1.0,
                        intercept: -x.hi(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: -y.hi(),
                    },
                ],
                &d,
            );
            let upper = best_upper(
                &[
                    Line {
                        slope: 1.0,
                        intercept: -x.lo(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: -y.lo(),
                    },
                ],
                &d,
            );
            (lower, upper, -*y)
        }
        (State::Active, State::Unstable) => {
            // Δ = x − ReLU(y); ReLU(y) ∈ [y, y − ly] gives δ-lines.
            let lower = Line {
                slope: 1.0,
                intercept: y.lo(),
            };
            let upper = Line {
                slope: 1.0,
                intercept: 0.0,
            };
            (
                lower,
                upper,
                Interval::new(x.lo() - y.hi().max(0.0), x.hi()),
            )
        }
        (State::Unstable, State::Active) => {
            // Δ = ReLU(x) − y; ReLU(x) ∈ [x, x − lx].
            let lower = Line {
                slope: 1.0,
                intercept: 0.0,
            };
            let upper = Line {
                slope: 1.0,
                intercept: -x.lo(),
            };
            (
                lower,
                upper,
                Interval::new(-y.hi(), x.hi().max(0.0) - y.lo()),
            )
        }
        (State::Inactive, State::Unstable) => {
            // Δ = −ReLU(y) ∈ [−uy, 0]; ReLU(y) ≤ y − ly → Δ ≥ −y + ly ≥ δ − ux + ly.
            let lower = best_lower(
                &[
                    Line {
                        slope: 1.0,
                        intercept: y.lo() - x.hi(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: -y.hi(),
                    },
                ],
                &d,
            );
            let upper = Line {
                slope: 0.0,
                intercept: 0.0,
            };
            (lower, upper, Interval::new(-y.hi().max(0.0), 0.0))
        }
        (State::Unstable, State::Inactive) => {
            // Δ = ReLU(x) ∈ [0, ux]; ReLU(x) ≤ x − lx → Δ ≤ δ + uy − lx.
            let lower = Line {
                slope: 0.0,
                intercept: 0.0,
            };
            let upper = best_upper(
                &[
                    Line {
                        slope: 1.0,
                        intercept: y.hi() - x.lo(),
                    },
                    Line {
                        slope: 0.0,
                        intercept: x.hi(),
                    },
                ],
                &d,
            );
            (lower, upper, Interval::new(0.0, x.hi().max(0.0)))
        }
        (State::Unstable, State::Unstable) => {
            // Lipschitz envelope: min(δ,0) ≤ Δ ≤ max(δ,0), relaxed by the
            // ReLU-triangle construction in δ-space.
            let upper = if ld >= 0.0 {
                Line {
                    slope: 1.0,
                    intercept: 0.0,
                }
            } else if ud <= 0.0 {
                Line {
                    slope: 0.0,
                    intercept: 0.0,
                }
            } else {
                let s = ud / (ud - ld);
                Line {
                    slope: s,
                    intercept: -ld * s,
                }
            };
            let lower = if ud <= 0.0 {
                Line {
                    slope: 1.0,
                    intercept: 0.0,
                }
            } else if ld >= 0.0 {
                Line {
                    slope: 0.0,
                    intercept: 0.0,
                }
            } else {
                let s = -ld / (ud - ld);
                Line {
                    slope: s,
                    intercept: ld * ud / (ud - ld),
                }
            };
            (lower, upper, lipschitz)
        }
    };
    let relax = DiffRelaxation {
        lower_slope: lower.slope,
        lower_intercept: lower.intercept,
        upper_slope: upper.slope,
        upper_intercept: upper.intercept,
    };
    let concrete = case_interval
        .intersect(&lipschitz)
        .intersect(&exec_diff)
        .intersect(&relax.image(&d));
    let concrete = if concrete.is_empty() {
        // Floating-point corner: fall back to the always-sound pieces.
        lipschitz.intersect(&exec_diff)
    } else {
        concrete
    };
    (relax, concrete)
}

fn relu_interval(x: &Interval) -> Interval {
    Interval::new(x.lo().max(0.0), x.hi().max(0.0))
}

/// Range of difference quotients `(f(x) − f(y)) / (x − y)` of `kind` over
/// the hull `[lo, hi]`: for every monotone Lipschitz activation this is
/// contained in `[inf f', sup f']` over the hull.
fn slope_range(kind: ActKind, lo: f64, hi: f64) -> (f64, f64) {
    match kind {
        ActKind::Sigmoid | ActKind::Tanh => {
            // Unimodal derivative peaking at 0: max at the point closest to
            // 0, min at an endpoint.
            let peak = 0.0f64.clamp(lo, hi);
            (kind.deriv(lo).min(kind.deriv(hi)), kind.deriv(peak))
        }
        ActKind::Relu => (
            if lo < 0.0 { 0.0 } else { 1.0 },
            if hi > 0.0 { 1.0 } else { 0.0 },
        ),
        ActKind::LeakyRelu => {
            let a = ActKind::LEAKY_SLOPE;
            (
                if lo < 0.0 { a } else { 1.0 },
                if hi > 0.0 { 1.0 } else { a },
            )
        }
        ActKind::HardTanh => (
            if lo < -1.0 || hi > 1.0 { 0.0 } else { 1.0 },
            if hi < -1.0 || lo > 1.0 { 0.0 } else { 1.0 },
        ),
    }
}

/// The S-shaped (Sigmoid/Tanh) difference transformer via the mean-value
/// theorem: `Δ = σ'(ξ)·δ` for some `ξ` in the joint hull of the two
/// executions' pre-activation ranges.
///
/// # Panics
///
/// Panics when any input interval is empty.
pub fn relax_sshape_diff(
    kind: ActKind,
    x: &Interval,
    y: &Interval,
    d: &Interval,
) -> (DiffRelaxation, Interval) {
    assert!(
        !x.is_empty() && !y.is_empty() && !d.is_empty(),
        "s-shape diff transformer: empty input interval"
    );
    let d = {
        let t = d.intersect(&(*x - *y));
        if t.is_empty() {
            *x - *y
        } else {
            t
        }
    };
    let hull = x.hull(y);
    let (s_min, s_max) = slope_range(kind, hull.lo(), hull.hi());
    let (ld, ud) = (d.lo(), d.hi());
    // g(δ) = s_max·δ for δ ≥ 0, s_min·δ for δ < 0 is convex and upper-bounds
    // Δ; h(δ) = s_min·δ for δ ≥ 0, s_max·δ for δ < 0 is concave and
    // lower-bounds Δ. Chords of g (above) and h (below) give the lines.
    let g = |t: f64| if t >= 0.0 { s_max * t } else { s_min * t };
    let h = |t: f64| if t >= 0.0 { s_min * t } else { s_max * t };
    let (upper, lower) = if ud - ld < 1e-15 {
        (
            Line {
                slope: 0.0,
                intercept: g(ud),
            },
            Line {
                slope: 0.0,
                intercept: h(ld),
            },
        )
    } else {
        let gu = (g(ud) - g(ld)) / (ud - ld);
        let hu = (h(ud) - h(ld)) / (ud - ld);
        (
            Line {
                slope: gu,
                intercept: g(ld) - gu * ld,
            },
            Line {
                slope: hu,
                intercept: h(ld) - hu * ld,
            },
        )
    };
    let relax = DiffRelaxation {
        lower_slope: lower.slope,
        lower_intercept: lower.intercept,
        upper_slope: upper.slope,
        upper_intercept: upper.intercept,
    };
    let exec_diff = x.map_monotone(|v| kind.eval(v)) - y.map_monotone(|v| kind.eval(v));
    let envelope = Interval::new(h(ld).min(h(ud)), g(ld).max(g(ud)));
    let concrete = envelope.intersect(&exec_diff);
    let concrete = if concrete.is_empty() {
        exec_diff
    } else {
        concrete
    };
    (relax, concrete)
}

/// Dispatches to the ReLU or S-shaped transformer.
pub fn relax_activation_diff(
    kind: ActKind,
    x: &Interval,
    y: &Interval,
    d: &Interval,
) -> (DiffRelaxation, Interval) {
    match kind {
        ActKind::Relu => relax_relu_diff(x, y, d),
        // The slope-range transformer is sound for every monotone Lipschitz
        // activation; ReLU gets the sharper 9-case transformer above.
        ActKind::Sigmoid | ActKind::Tanh | ActKind::LeakyRelu | ActKind::HardTanh => {
            relax_sshape_diff(kind, x, y, d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively samples (x, y) pairs consistent with the boxes and the δ
    /// interval and checks both the lines and the concrete bounds.
    fn check_sound(kind: ActKind, x: Interval, y: Interval, d: Interval) {
        let (relax, concrete) = relax_activation_diff(kind, &x, &y, &d);
        let n = 60;
        for i in 0..=n {
            for j in 0..=n {
                let xv = x.lo() + x.width() * i as f64 / n as f64;
                let yv = y.lo() + y.width() * j as f64 / n as f64;
                let dv = xv - yv;
                if !d.contains(dv) {
                    continue;
                }
                let delta = kind.eval(xv) - kind.eval(yv);
                assert!(
                    relax.lower_at(dv) <= delta + 1e-9,
                    "{kind} lower line violated: x={xv} y={yv} δ={dv}: {} > {delta}",
                    relax.lower_at(dv)
                );
                assert!(
                    relax.upper_at(dv) >= delta - 1e-9,
                    "{kind} upper line violated: x={xv} y={yv} δ={dv}: {} < {delta}",
                    relax.upper_at(dv)
                );
                assert!(
                    concrete.lo() - 1e-9 <= delta && delta <= concrete.hi() + 1e-9,
                    "{kind} concrete {concrete} misses {delta} (x={xv}, y={yv})"
                );
            }
        }
    }

    #[test]
    fn relu_diff_all_nine_cases_are_sound() {
        let act = Interval::new(0.5, 2.0);
        let inact = Interval::new(-2.0, -0.5);
        let unstable = Interval::new(-1.0, 1.5);
        for x in [act, inact, unstable] {
            for y in [act, inact, unstable] {
                let d = (x - y).intersect(&Interval::new(-10.0, 10.0));
                check_sound(ActKind::Relu, x, y, d);
            }
        }
    }

    #[test]
    fn relu_diff_with_tight_delta_beats_interval_subtraction() {
        // Both unstable with the same range, but δ pinned near a constant —
        // the relational information the paper exploits for UAP.
        let x = Interval::new(-1.0, 1.0);
        let y = Interval::new(-1.0, 1.0);
        let d = Interval::new(0.1, 0.2);
        check_sound(ActKind::Relu, x, y, d);
        let (_, concrete) = relax_relu_diff(&x, &y, &d);
        // Interval subtraction gives [-1, 1] − [0? ...]: ReLU images are
        // [0,1] each → diff [-1,1]. Difference tracking keeps Δ ≤ 0.2.
        assert!(concrete.hi() <= 0.2 + 1e-12);
        assert!(concrete.lo() >= 0.0 - 1e-12);
    }

    #[test]
    fn relu_diff_both_active_is_exact() {
        let x = Interval::new(1.0, 2.0);
        let y = Interval::new(0.0, 0.5);
        let d = x - y;
        let (relax, concrete) = relax_relu_diff(&x, &y, &d);
        assert_eq!(relax, DiffRelaxation::exact(1.0, 0.0));
        assert_eq!(concrete, d);
    }

    #[test]
    fn relu_diff_both_inactive_is_zero() {
        let x = Interval::new(-3.0, -1.0);
        let y = Interval::new(-2.0, -0.1);
        let d = x - y;
        let (relax, concrete) = relax_relu_diff(&x, &y, &d);
        assert_eq!(concrete, Interval::point(0.0));
        assert_eq!(relax.lower_at(d.mid()), 0.0);
        assert_eq!(relax.upper_at(d.mid()), 0.0);
    }

    #[test]
    fn sshape_diff_is_sound_across_regimes() {
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            check_sound(
                kind,
                Interval::new(-1.0, 1.0),
                Interval::new(-1.2, 0.8),
                Interval::new(-0.3, 0.4),
            );
            check_sound(
                kind,
                Interval::new(0.5, 2.0),
                Interval::new(0.4, 1.9),
                Interval::new(0.05, 0.15),
            );
            check_sound(
                kind,
                Interval::new(-2.0, -0.5),
                Interval::new(-1.5, 0.5),
                Interval::new(-1.0, 0.0),
            );
        }
    }

    #[test]
    fn sshape_diff_sign_preservation() {
        // Monotone activation: δ ≥ 0 forces Δ ≥ 0 — crucial for
        // monotonicity certification.
        let x = Interval::new(-0.5, 1.5);
        let y = Interval::new(-1.0, 1.0);
        let d = Interval::new(0.0, 0.5);
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            let (_, concrete) = relax_sshape_diff(kind, &x, &y, &d);
            assert!(concrete.lo() >= -1e-12, "{kind}: {concrete}");
        }
        let (_, concrete) = relax_relu_diff(&x, &y, &d);
        assert!(concrete.lo() >= -1e-12, "relu: {concrete}");
    }

    #[test]
    fn piecewise_linear_diff_transformers_are_sound() {
        for kind in [ActKind::LeakyRelu, ActKind::HardTanh] {
            check_sound(
                kind,
                Interval::new(-1.5, 1.5),
                Interval::new(-1.2, 0.8),
                Interval::new(-0.5, 0.6),
            );
            check_sound(
                kind,
                Interval::new(0.5, 2.0),
                Interval::new(0.4, 1.9),
                Interval::new(0.05, 0.15),
            );
            check_sound(
                kind,
                Interval::new(-2.5, -0.5),
                Interval::new(-1.5, 0.5),
                Interval::new(-1.2, 0.0),
            );
        }
    }

    #[test]
    fn leaky_relu_diff_active_pair_is_exact() {
        // Both strictly positive: slope range degenerates to {1} → Δ = δ.
        let x = Interval::new(1.0, 2.0);
        let y = Interval::new(0.5, 1.5);
        let d = Interval::new(0.2, 0.4);
        let (relax, concrete) = relax_activation_diff(ActKind::LeakyRelu, &x, &y, &d);
        assert!((relax.lower_at(0.3) - 0.3).abs() < 1e-12);
        assert!((relax.upper_at(0.3) - 0.3).abs() < 1e-12);
        assert!(concrete.lo() >= 0.2 - 1e-12 && concrete.hi() <= 0.4 + 1e-12);
    }

    #[test]
    fn hard_tanh_diff_saturated_pair_is_zero() {
        // Both saturated high: the difference is exactly zero.
        let x = Interval::new(1.5, 3.0);
        let y = Interval::new(1.2, 2.0);
        let d = x - y;
        let (_, concrete) = relax_activation_diff(ActKind::HardTanh, &x, &y, &d);
        assert!(concrete.lo().abs() < 1e-12 && concrete.hi().abs() < 1e-12);
    }

    #[test]
    fn exact_delta_point_gives_tight_result_for_active_pair() {
        let x = Interval::new(2.0, 3.0);
        let y = Interval::new(1.0, 2.0);
        let d = Interval::point(1.0);
        let (_, concrete) = relax_relu_diff(&x, &y, &d);
        assert!((concrete.lo() - 1.0).abs() < 1e-12);
        assert!((concrete.hi() - 1.0).abs() < 1e-12);
    }
}
