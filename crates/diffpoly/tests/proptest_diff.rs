//! Randomized soundness tests for the difference transformers: for any
//! pre-activation boxes and any consistent pair of points, the δ-space
//! lines and the concrete bounds must contain the true output difference.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_diffpoly::relax_activation_diff;
use raven_interval::Interval;
use raven_nn::ActKind;
use raven_tensor::Rng;

const CASES: usize = 512;

#[derive(Debug, Clone)]
struct PairCase {
    x: Interval,
    y: Interval,
    xv: f64,
    yv: f64,
}

fn pair_case(rng: &mut Rng) -> PairCase {
    let xlo = rng.in_range(-4.0, 4.0);
    let xw = rng.in_range(0.0, 5.0);
    let ylo = rng.in_range(-4.0, 4.0);
    let yw = rng.in_range(0.0, 5.0);
    let tx = rng.uniform();
    let ty = rng.uniform();
    PairCase {
        x: Interval::new(xlo, xlo + xw),
        y: Interval::new(ylo, ylo + yw),
        xv: xlo + xw * tx,
        yv: ylo + yw * ty,
    }
}

fn check(kind: ActKind, case: &PairCase, d: Interval) {
    let dv = case.xv - case.yv;
    if !d.contains(dv) {
        return;
    }
    let (relax, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
    let delta = kind.eval(case.xv) - kind.eval(case.yv);
    assert!(
        relax.lower_at(dv) <= delta + 1e-9,
        "{kind}: lower line {} > Δ = {delta} (x={}, y={})",
        relax.lower_at(dv),
        case.xv,
        case.yv
    );
    assert!(
        relax.upper_at(dv) >= delta - 1e-9,
        "{kind}: upper line {} < Δ = {delta} (x={}, y={})",
        relax.upper_at(dv),
        case.xv,
        case.yv
    );
    assert!(
        concrete.lo() - 1e-9 <= delta && delta <= concrete.hi() + 1e-9,
        "{kind}: concrete {concrete} misses Δ = {delta}"
    );
}

#[test]
fn relu_diff_sound_with_full_delta() {
    let mut rng = Rng::new(0xd1_f0);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let d = case.x - case.y;
        check(ActKind::Relu, &case, d);
    }
}

#[test]
fn relu_diff_sound_with_tight_delta() {
    // Shrink the δ interval symmetrically around the actual difference.
    let mut rng = Rng::new(0xd1_f1);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let shrink = rng.in_range(0.0, 0.45);
        let full = case.x - case.y;
        let dv = case.xv - case.yv;
        let lo = dv - (dv - full.lo()) * (1.0 - shrink);
        let hi = dv + (full.hi() - dv) * (1.0 - shrink);
        check(ActKind::Relu, &case, Interval::new(lo, hi));
    }
}

#[test]
fn sigmoid_diff_sound() {
    let mut rng = Rng::new(0xd1_f2);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let d = case.x - case.y;
        check(ActKind::Sigmoid, &case, d);
    }
}

#[test]
fn tanh_diff_sound() {
    let mut rng = Rng::new(0xd1_f3);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let d = case.x - case.y;
        check(ActKind::Tanh, &case, d);
    }
}

#[test]
fn leaky_relu_diff_sound() {
    let mut rng = Rng::new(0xd1_f6);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let d = case.x - case.y;
        check(ActKind::LeakyRelu, &case, d);
    }
}

#[test]
fn hard_tanh_diff_sound() {
    let mut rng = Rng::new(0xd1_f7);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let d = case.x - case.y;
        check(ActKind::HardTanh, &case, d);
    }
}

#[test]
fn diff_bounds_never_looser_than_lipschitz() {
    // |Δ| ≤ max_slope · |δ| for every activation: the concrete result
    // must stay inside the scaled-Lipschitz envelope of the δ interval.
    let mut rng = Rng::new(0xd1_f4);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        for kind in ActKind::all() {
            let d = case.x - case.y;
            let (_, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
            let s = kind.max_slope();
            let envelope = Interval::new(
                (s * d.lo()).min(0.0).min(s * d.hi()),
                (s * d.hi()).max(0.0).max(s * d.lo()),
            );
            assert!(
                envelope.contains_interval(&concrete)
                    || concrete.width() <= envelope.width() + 1e-9,
                "{kind}: {concrete} escapes the Lipschitz envelope {envelope}"
            );
        }
    }
}

#[test]
fn monotone_sign_preservation() {
    // If δ ≥ 0 everywhere then Δ ≥ 0: monotonicity of the activations.
    let mut rng = Rng::new(0xd1_f5);
    for _ in 0..CASES {
        let case = pair_case(&mut rng);
        let full = case.x - case.y;
        if full.hi() <= 0.0 {
            continue;
        }
        let d = Interval::new(full.lo().max(0.0), full.hi());
        if d.is_empty() || d.lo() < 0.0 {
            continue;
        }
        for kind in ActKind::all() {
            let (_, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
            assert!(concrete.lo() >= -1e-9, "{kind}: sign lost: {concrete}");
        }
    }
}
