//! Property-based soundness tests for the difference transformers: for any
//! pre-activation boxes and any consistent pair of points, the δ-space
//! lines and the concrete bounds must contain the true output difference.

use proptest::prelude::*;
use raven_diffpoly::relax_activation_diff;
use raven_interval::Interval;
use raven_nn::ActKind;

#[derive(Debug, Clone)]
struct PairCase {
    x: Interval,
    y: Interval,
    xv: f64,
    yv: f64,
}

fn pair_case() -> impl Strategy<Value = PairCase> {
    (
        -4.0f64..4.0,
        0.0f64..5.0,
        -4.0f64..4.0,
        0.0f64..5.0,
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(xlo, xw, ylo, yw, tx, ty)| PairCase {
            x: Interval::new(xlo, xlo + xw),
            y: Interval::new(ylo, ylo + yw),
            xv: xlo + xw * tx,
            yv: ylo + yw * ty,
        })
}

fn check(kind: ActKind, case: &PairCase, d: Interval) -> Result<(), TestCaseError> {
    let dv = case.xv - case.yv;
    prop_assume!(d.contains(dv));
    let (relax, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
    let delta = kind.eval(case.xv) - kind.eval(case.yv);
    prop_assert!(
        relax.lower_at(dv) <= delta + 1e-9,
        "{kind}: lower line {} > Δ = {delta} (x={}, y={})",
        relax.lower_at(dv),
        case.xv,
        case.yv
    );
    prop_assert!(
        relax.upper_at(dv) >= delta - 1e-9,
        "{kind}: upper line {} < Δ = {delta} (x={}, y={})",
        relax.upper_at(dv),
        case.xv,
        case.yv
    );
    prop_assert!(
        concrete.lo() - 1e-9 <= delta && delta <= concrete.hi() + 1e-9,
        "{kind}: concrete {concrete} misses Δ = {delta}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn relu_diff_sound_with_full_delta(case in pair_case()) {
        let d = case.x - case.y;
        check(ActKind::Relu, &case, d)?;
    }

    #[test]
    fn relu_diff_sound_with_tight_delta(case in pair_case(), shrink in 0.0f64..0.45) {
        // Shrink the δ interval symmetrically around the actual difference.
        let full = case.x - case.y;
        let dv = case.xv - case.yv;
        let lo = dv - (dv - full.lo()) * (1.0 - shrink);
        let hi = dv + (full.hi() - dv) * (1.0 - shrink);
        check(ActKind::Relu, &case, Interval::new(lo, hi))?;
    }

    #[test]
    fn sigmoid_diff_sound(case in pair_case()) {
        let d = case.x - case.y;
        check(ActKind::Sigmoid, &case, d)?;
    }

    #[test]
    fn tanh_diff_sound(case in pair_case()) {
        let d = case.x - case.y;
        check(ActKind::Tanh, &case, d)?;
    }

    #[test]
    fn diff_bounds_never_looser_than_lipschitz(case in pair_case()) {
        // |Δ| ≤ max_slope · |δ| for every activation: the concrete result
        // must stay inside the scaled-Lipschitz envelope of the δ interval.
        for kind in ActKind::all() {
            let d = case.x - case.y;
            let (_, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
            let s = kind.max_slope();
            let envelope = Interval::new(
                (s * d.lo()).min(0.0).min(s * d.hi()),
                (s * d.hi()).max(0.0).max(s * d.lo()),
            );
            prop_assert!(
                envelope.contains_interval(&concrete)
                    || concrete.width() <= envelope.width() + 1e-9,
                "{kind}: {concrete} escapes the Lipschitz envelope {envelope}"
            );
        }
    }

    #[test]
    fn monotone_sign_preservation(case in pair_case()) {
        // If δ ≥ 0 everywhere then Δ ≥ 0: monotonicity of the activations.
        let full = case.x - case.y;
        prop_assume!(full.hi() > 0.0);
        let d = Interval::new(full.lo().max(0.0), full.hi());
        prop_assume!(!d.is_empty() && d.lo() >= 0.0);
        for kind in ActKind::all() {
            let (_, concrete) = relax_activation_diff(kind, &case.x, &case.y, &d);
            prop_assert!(concrete.lo() >= -1e-9, "{kind}: sign lost: {concrete}");
        }
    }
}
