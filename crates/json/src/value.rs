//! The JSON value type and accessors.

/// A JSON value.
///
/// Objects preserve insertion order (they are association vectors, not
/// hash maps), which makes serialization deterministic — a property the
/// result cache and the byte-identity acceptance tests rely on. Duplicate
/// keys are not rejected; [`Json::get`] returns the first match.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    ///
    /// # Examples
    ///
    /// ```
    /// use raven_json::Json;
    /// let v = Json::obj([("a", Json::from(1.0))]);
    /// assert_eq!(v.get("a"), Some(&Json::Num(1.0)));
    /// ```
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array of numbers from an `f64` slice.
    pub fn num_array(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a `usize`, when this is a non-negative
    /// integer-valued number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets this value as a vector of `f64` (an array of numbers).
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Json::as_f64).collect()
    }

    /// `true` when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Json::obj([("x", Json::from(2.0)), ("s", Json::from("hi"))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("x").unwrap().as_usize(), Some(2));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(v.get("s").unwrap().as_f64().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Num(1.5).as_usize().is_none());
        assert!(Json::Num(-1.0).as_usize().is_none());
    }

    #[test]
    fn f64_vec_roundtrip() {
        let v = Json::num_array(&[1.0, -2.5, 0.0]);
        assert_eq!(v.as_f64_vec(), Some(vec![1.0, -2.5, 0.0]));
        let mixed = Json::Arr(vec![Json::Num(1.0), Json::Str("x".into())]);
        assert!(mixed.as_f64_vec().is_none());
    }

    #[test]
    fn first_key_wins_on_duplicates() {
        let v = Json::obj([("k", Json::from(1.0)), ("k", Json::from(2.0))]);
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
    }
}
