//! Compact JSON serialization.

use crate::Json;
use std::fmt;

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(x) => write_num(f, *x),
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_str(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Numbers use Rust's shortest-roundtrip `f64` formatting; integral values
/// print without a fractional part. Non-finite values become `null`.
fn write_num(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    // `{}` on f64 is shortest-roundtrip in Rust, so `Json::parse` of the
    // output recovers the exact bits; integral values render as "42".
    write!(f, "{x}")
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_serialize_compactly() {
        let v = Json::obj([
            ("a", Json::Null),
            ("b", Json::Bool(true)),
            ("c", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":null,"b":true,"c":[1,2.5]}"#);
    }

    #[test]
    fn strings_escape_control_and_special_characters() {
        let v = Json::from("a\"b\\c\nd\te\u{0001}f");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn floats_roundtrip_through_display() {
        for x in [0.1, 1.0 / 3.0, 1e-308, 123456789.123456, -0.0] {
            let text = Json::Num(x).to_string();
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }
}
