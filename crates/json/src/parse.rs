//! Recursive-descent JSON parser.

use crate::Json;

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Nesting ceiling: malicious bodies like `[[[[…` must error, not blow the
/// stack (the server parses untrusted request bodies with this).
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing content rejected).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input, nesting deeper than 128,
    /// or trailing non-whitespace content.
    ///
    /// # Examples
    ///
    /// ```
    /// use raven_json::Json;
    /// let v = Json::parse(r#"{"k": [1, -2.5e1, "x\n"]}"#).unwrap();
    /// assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 3);
    /// assert!(Json::parse("{} trailing").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar from the input
                    // (the input is a &str, so it is valid UTF-8 already).
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

/// Byte length of a UTF-8 scalar from its lead byte.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let text = r#"{"a":[1,2.5,-300],"b":{"c":null,"d":[true,false]},"s":"x\"y"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\tAé😀"));
        let raw = Json::parse("\"héllo — ≤\"").unwrap();
        assert_eq!(raw.as_str(), Some("héllo — ≤"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "\"\\ud800\"",
            "01x",
            "[1] 2",
            "nan",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn number_forms_parse() {
        for (text, want) in [
            ("0", 0.0),
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("123456789", 123456789.0),
        ] {
            assert_eq!(Json::parse(text).unwrap().as_f64(), Some(want), "{text}");
        }
    }

    #[test]
    fn float_bits_survive_write_parse_roundtrip() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1e-300] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }
}
