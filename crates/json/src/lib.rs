//! Minimal std-only JSON for the RaVeN verification service.
//!
//! The workspace policy (PR 1) forbids registry dependencies, so the
//! service layer cannot use `serde`. This crate provides the small JSON
//! subset the server and the CLI's `--json` mode need: a [`Json`] value
//! type with **order-preserving** objects (so serialization is
//! deterministic and responses can be compared byte-for-byte), a compact
//! writer with full string escaping, and a recursive-descent parser.
//!
//! Numbers are `f64` throughout. Non-finite floats have no JSON
//! representation and serialize as `null`, mirroring what dynamic-language
//! encoders do.
//!
//! # Examples
//!
//! ```
//! use raven_json::Json;
//!
//! let v = Json::obj([
//!     ("name", Json::from("demo")),
//!     ("eps", Json::from(0.05)),
//!     ("labels", Json::Arr(vec![Json::from(1.0), Json::from(0.0)])),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"demo","eps":0.05,"labels":[1,0]}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("eps").and_then(Json::as_f64), Some(0.05));
//! ```

mod parse;
mod value;
mod write;

pub use parse::ParseError;
pub use value::Json;
