//! DeepPoly telemetry: layer timings, ReLU split counts, and relaxation
//! tightness. Observe-only; see `raven-obs` for the determinism contract.

use crate::relax::Relaxation;
use raven_interval::Interval;
use raven_nn::ActKind;
use raven_obs::{Counter, Desc, Histogram, MetricRef};

/// Wall-clock seconds per plan step (affine back-substitution or
/// activation relaxation). Only recorded while telemetry is enabled.
pub static LAYER_SECONDS: Histogram = Histogram::new();
/// Piecewise-linear neurons whose pre-activation interval straddles a kink
/// (a "split" neuron that forces a triangle relaxation).
pub static SPLIT_NEURONS: Counter = Counter::new();
/// Activation neurons relaxed in total (split or stable).
pub static RELAXED_NEURONS: Counter = Counter::new();
/// Tightness of each activation relaxation: vertical gap between the upper
/// and lower relaxation line at the pre-activation interval midpoint
/// (0 for stable neurons — smaller is tighter).
pub static RELAX_GAP: Histogram = Histogram::new();

/// Whether the pre-activation interval straddles a kink of a
/// piecewise-linear activation (smooth activations have none).
fn straddles_kink(kind: ActKind, iv: &Interval) -> bool {
    match kind {
        ActKind::Relu | ActKind::LeakyRelu => iv.lo() < 0.0 && iv.hi() > 0.0,
        ActKind::HardTanh => (iv.lo() < -1.0 && iv.hi() > -1.0) || (iv.lo() < 1.0 && iv.hi() > 1.0),
        ActKind::Sigmoid | ActKind::Tanh => false,
    }
}

/// Records split counts and relaxation tightness for one activation step.
/// The per-neuron gap histogram is gated behind the telemetry switch; the
/// two counters are always live (one atomic add per layer each).
pub(crate) fn observe_relaxations(kind: ActKind, pre: &[Interval], relaxations: &[Relaxation]) {
    RELAXED_NEURONS.add(pre.len() as u64);
    let splits = pre.iter().filter(|iv| straddles_kink(kind, iv)).count();
    if splits > 0 {
        SPLIT_NEURONS.add(splits as u64);
    }
    if raven_obs::enabled() {
        for (iv, r) in pre.iter().zip(relaxations) {
            let m = 0.5 * (iv.lo() + iv.hi());
            let gap =
                (r.upper_slope * m + r.upper_intercept) - (r.lower_slope * m + r.lower_intercept);
            RELAX_GAP.observe(gap.max(0.0));
        }
    }
}

/// Exposition table for this crate, in stable scrape order.
pub static DESCS: [Desc; 4] = [
    Desc {
        name: "raven_deeppoly_layer_seconds",
        help: "Wall-clock seconds per DeepPoly plan step.",
        labels: "",
        metric: MetricRef::Histogram(&LAYER_SECONDS),
    },
    Desc {
        name: "raven_deeppoly_split_neurons_total",
        help: "Piecewise-linear neurons straddling a kink (triangle relaxation).",
        labels: "",
        metric: MetricRef::Counter(&SPLIT_NEURONS),
    },
    Desc {
        name: "raven_deeppoly_relaxed_neurons_total",
        help: "Activation neurons relaxed by DeepPoly in total.",
        labels: "",
        metric: MetricRef::Counter(&RELAXED_NEURONS),
    },
    Desc {
        name: "raven_deeppoly_relax_gap",
        help: "Upper-minus-lower relaxation line gap at the interval midpoint.",
        labels: "",
        metric: MetricRef::Histogram(&RELAX_GAP),
    },
];
