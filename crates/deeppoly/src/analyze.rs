//! The DeepPoly analysis: per-neuron symbolic linear bounds with
//! back-substitution to the input box.

use crate::relax::{relax_activation, Relaxation};
use raven_interval::Interval;
use raven_nn::{ActKind, AnalysisPlan, PlanStep};
use raven_tensor::Matrix;

/// Result of a DeepPoly run over an [`AnalysisPlan`].
///
/// `bounds[k]` holds concrete interval bounds for the tensor at plan
/// boundary `k` (`bounds[0]` is the input box). For activation steps the
/// relaxations used are recoverable via
/// [`relax_activation`] from the *pre*-activation bounds, which is how the
/// LP encoder in `raven` reconstructs the same constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepPolyAnalysis {
    /// Concrete bounds at every plan boundary.
    pub bounds: Vec<Vec<Interval>>,
    /// Activation relaxations per plan step (`None` for affine steps),
    /// reusable by the LP encoder and by [`DeepPolyAnalysis::input_bounds`].
    pub relaxations: Vec<Option<Vec<Relaxation>>>,
}

/// Symbolic affine bounds of a tensor directly over the *input* variables:
/// `lower_coeffs·x + lower_const ≤ t ≤ upper_coeffs·x + upper_const` for
/// every `x` in the analyzed input box.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBounds {
    /// Coefficients of the lower bounds (`neurons x input_dim`).
    pub lower_coeffs: Matrix,
    /// Constants of the lower bounds.
    pub lower_const: Vec<f64>,
    /// Coefficients of the upper bounds.
    pub upper_coeffs: Matrix,
    /// Constants of the upper bounds.
    pub upper_const: Vec<f64>,
}

/// Symbolic affine expressions over a given plan boundary:
/// `rows(coeffs) = tracked neurons`, plus a constant per neuron.
#[derive(Debug, Clone)]
struct SymBounds {
    lower_coeffs: Matrix,
    lower_const: Vec<f64>,
    upper_coeffs: Matrix,
    upper_const: Vec<f64>,
}

impl DeepPolyAnalysis {
    /// Runs DeepPoly over `plan` starting from the input box.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != plan.input_dim()` or any input interval
    /// is empty/unbounded.
    pub fn run(plan: &AnalysisPlan, input: &[Interval]) -> Self {
        assert_eq!(
            input.len(),
            plan.input_dim(),
            "deeppoly: input width mismatch"
        );
        for iv in input {
            assert!(
                !iv.is_empty() && iv.lo().is_finite() && iv.hi().is_finite(),
                "deeppoly: input intervals must be finite and non-empty"
            );
        }
        let mut bounds: Vec<Vec<Interval>> = Vec::with_capacity(plan.steps().len() + 1);
        bounds.push(input.to_vec());
        // Per-step relaxation metadata for activation steps (indexed by step).
        let mut act_relax: Vec<Option<Vec<Relaxation>>> = Vec::with_capacity(plan.steps().len());
        for (k, step) in plan.steps().iter().enumerate() {
            let _layer_timer = raven_obs::Timer::start(&crate::metrics::LAYER_SECONDS);
            match step {
                PlanStep::Affine { weight, bias } => {
                    let concrete = back_substitute(plan, &bounds, &act_relax, k, weight, bias)
                        .concretize(&bounds[0]);
                    // Intersect with plain interval propagation: a single
                    // symbolic line can concretize looser than the box on
                    // saturating activations, and the intersection makes
                    // DeepPoly dominate the Box domain by construction.
                    let boxed = raven_interval::affine_image(weight, bias, &bounds[k]);
                    let concrete: Vec<Interval> = concrete
                        .iter()
                        .zip(&boxed)
                        .map(|(a, b)| {
                            let t = a.intersect(b);
                            if t.is_empty() {
                                // Floating-point corner: keep the wider one.
                                *b
                            } else {
                                t
                            }
                        })
                        .collect();
                    bounds.push(concrete);
                    act_relax.push(None);
                }
                PlanStep::Act(kind) => {
                    let pre = &bounds[k];
                    let relaxations: Vec<Relaxation> = pre
                        .iter()
                        .map(|iv| relax_activation(*kind, iv.lo(), iv.hi()))
                        .collect();
                    crate::metrics::observe_relaxations(*kind, pre, &relaxations);
                    let post: Vec<Interval> = pre
                        .iter()
                        .map(|iv| iv.map_monotone(|x| kind.eval(x)))
                        .collect();
                    bounds.push(post);
                    act_relax.push(Some(relaxations));
                }
            }
        }
        Self {
            bounds,
            relaxations: act_relax,
        }
    }

    /// Flat per-neuron relaxation records across every activation step:
    /// `(kind, pre-activation lo, pre-activation hi, relaxation)` in plan
    /// order. This is the raw material for analysis-tier certificates — an
    /// exact checker can replay each piecewise-linear relaxation against
    /// its pre-activation interval without rerunning the analysis.
    ///
    /// # Panics
    ///
    /// Panics when the analysis was produced from a different plan.
    pub fn relaxation_records(&self, plan: &AnalysisPlan) -> Vec<(ActKind, f64, f64, Relaxation)> {
        assert_eq!(
            self.bounds.len(),
            plan.steps().len() + 1,
            "analysis does not match plan"
        );
        let mut records = Vec::new();
        for (k, step) in plan.steps().iter().enumerate() {
            if let (PlanStep::Act(kind), Some(relaxations)) = (step, &self.relaxations[k]) {
                for (iv, r) in self.bounds[k].iter().zip(relaxations) {
                    records.push((*kind, iv.lo(), iv.hi(), *r));
                }
            }
        }
        records
    }

    /// Symbolic bounds of the *output* tensor directly over the input
    /// variables — the "I/O formulation" view of the network that the
    /// paper's baseline couples with a shared perturbation.
    ///
    /// # Panics
    ///
    /// Panics when `plan` does not end with an affine step, or when the
    /// analysis was produced from a different plan.
    pub fn input_bounds(&self, plan: &AnalysisPlan) -> InputBounds {
        assert_eq!(
            self.bounds.len(),
            plan.steps().len() + 1,
            "analysis does not match plan"
        );
        let last = plan.steps().len() - 1;
        let PlanStep::Affine { weight, bias } = &plan.steps()[last] else {
            panic!("input_bounds requires the plan to end with an affine step");
        };
        back_substitute(plan, &self.bounds, &self.relaxations, last, weight, bias)
    }

    /// Concrete bounds on the network output.
    pub fn output(&self) -> &[Interval] {
        self.bounds.last().expect("bounds non-empty")
    }

    /// Certified lower bound on the margin `out[target] - out[other]`.
    ///
    /// This is the coarse interval version; the LP encoding in `raven`
    /// produces tighter margins. Returns `-inf`-free finite values because
    /// all bounds are finite.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn margin_lower_bound(&self, target: usize, other: usize) -> f64 {
        let out = self.output();
        out[target].lo() - out[other].hi()
    }
}

impl InputBounds {
    /// Evaluates the symbolic bounds over the input box.
    pub fn concretize(&self, input: &[Interval]) -> Vec<Interval> {
        (0..self.lower_coeffs.rows())
            .map(|i| {
                let lo = eval_lower(self.lower_coeffs.row(i), self.lower_const[i], input);
                let hi = eval_upper(self.upper_coeffs.row(i), self.upper_const[i], input);
                // Guard against rounding producing inverted bounds.
                Interval::new(lo.min(hi), hi.max(lo))
            })
            .collect()
    }
}

/// Substitutes the symbolic bounds of affine step `k` (mapping boundary `k`
/// to `k+1`) backwards to the input variables.
fn back_substitute(
    plan: &AnalysisPlan,
    bounds: &[Vec<Interval>],
    act_relax: &[Option<Vec<Relaxation>>],
    k: usize,
    weight: &Matrix,
    bias: &[f64],
) -> InputBounds {
    let mut sym = SymBounds {
        lower_coeffs: weight.clone(),
        lower_const: bias.to_vec(),
        upper_coeffs: weight.clone(),
        upper_const: bias.to_vec(),
    };
    // Walk steps k-1, k-2, ..., 0; expressions currently refer to boundary t+1
    // (initially boundary k, the input of step k).
    for t in (0..k).rev() {
        match &plan.steps()[t] {
            PlanStep::Affine { weight: w, bias: b } => {
                sym.lower_const = add_vec(&sym.lower_const, &sym.lower_coeffs.matvec(b));
                sym.upper_const = add_vec(&sym.upper_const, &sym.upper_coeffs.matvec(b));
                sym.lower_coeffs = sym
                    .lower_coeffs
                    .matmul(w)
                    .expect("plan widths are validated");
                sym.upper_coeffs = sym
                    .upper_coeffs
                    .matmul(w)
                    .expect("plan widths are validated");
            }
            PlanStep::Act(_) => {
                let relaxations = act_relax[t]
                    .as_ref()
                    .expect("activation steps have recorded relaxations");
                substitute_activation(&mut sym, relaxations);
            }
        }
    }
    let _ = bounds; // boundary data only needed by callers via `concretize`
    InputBounds {
        lower_coeffs: sym.lower_coeffs,
        lower_const: sym.lower_const,
        upper_coeffs: sym.upper_coeffs,
        upper_const: sym.upper_const,
    }
}

/// Substitutes the diagonal activation relaxation into both symbolic bound
/// sets: positive coefficients take the same-side line, negative the
/// opposite side.
fn substitute_activation(sym: &mut SymBounds, relaxations: &[Relaxation]) {
    let rows = sym.lower_coeffs.rows();
    let cols = sym.lower_coeffs.cols();
    debug_assert_eq!(cols, relaxations.len());
    for i in 0..rows {
        {
            let row = sym.lower_coeffs.row_mut(i);
            let c = &mut sym.lower_const[i];
            for (j, r) in relaxations.iter().enumerate() {
                let e = row[j];
                if e >= 0.0 {
                    row[j] = e * r.lower_slope;
                    *c += e * r.lower_intercept;
                } else {
                    row[j] = e * r.upper_slope;
                    *c += e * r.upper_intercept;
                }
            }
        }
        {
            let row = sym.upper_coeffs.row_mut(i);
            let c = &mut sym.upper_const[i];
            for (j, r) in relaxations.iter().enumerate() {
                let e = row[j];
                if e >= 0.0 {
                    row[j] = e * r.upper_slope;
                    *c += e * r.upper_intercept;
                } else {
                    row[j] = e * r.lower_slope;
                    *c += e * r.lower_intercept;
                }
            }
        }
    }
}

fn add_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn eval_lower(coeffs: &[f64], constant: f64, input: &[Interval]) -> f64 {
    let mut v = constant;
    for (c, iv) in coeffs.iter().zip(input) {
        v += if *c >= 0.0 { c * iv.lo() } else { c * iv.hi() };
    }
    v
}

fn eval_upper(coeffs: &[f64], constant: f64, input: &[Interval]) -> f64 {
    let mut v = constant;
    for (c, iv) in coeffs.iter().zip(input) {
        v += if *c >= 0.0 { c * iv.hi() } else { c * iv.lo() };
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_interval::{linf_ball, IntervalAnalysis};
    use raven_nn::{ActKind, NetworkBuilder};

    fn sample_ball(center: &[f64], eps: f64, s: usize) -> Vec<f64> {
        center
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let t = (((i * 31 + s * 17) % 97) as f64 / 96.0) * 2.0 - 1.0;
                (c + eps * t).clamp(0.0, 1.0)
            })
            .collect()
    }

    #[test]
    fn deeppoly_is_sound_on_relu_net() {
        let net = NetworkBuilder::new(4)
            .dense(8, 1)
            .activation(ActKind::Relu)
            .dense(6, 2)
            .activation(ActKind::Relu)
            .dense(3, 3)
            .build();
        let plan = net.to_plan();
        let center = [0.4, 0.6, 0.5, 0.3];
        let ball = linf_ball(&center, 0.08, 0.0, 1.0);
        let dp = DeepPolyAnalysis::run(&plan, &ball);
        for s in 0..50 {
            let x = sample_ball(&center, 0.08, s);
            let y = net.forward(&x);
            for (iv, &v) in dp.output().iter().zip(&y) {
                assert!(
                    iv.lo() - 1e-7 <= v && v <= iv.hi() + 1e-7,
                    "output {v} outside {iv}"
                );
            }
        }
    }

    #[test]
    fn deeppoly_is_sound_on_smooth_nets() {
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            let net = NetworkBuilder::new(3)
                .dense(6, 4)
                .activation(kind)
                .dense(4, 5)
                .activation(kind)
                .dense(2, 6)
                .build();
            let plan = net.to_plan();
            let center = [0.5, 0.5, 0.5];
            let ball = linf_ball(&center, 0.1, 0.0, 1.0);
            let dp = DeepPolyAnalysis::run(&plan, &ball);
            for s in 0..50 {
                let x = sample_ball(&center, 0.1, s);
                let y = net.forward(&x);
                for (iv, &v) in dp.output().iter().zip(&y) {
                    assert!(
                        iv.lo() - 1e-7 <= v && v <= iv.hi() + 1e-7,
                        "{kind}: output {v} outside {iv}"
                    );
                }
            }
        }
    }

    #[test]
    fn deeppoly_no_looser_than_interval_on_output() {
        let net = NetworkBuilder::new(5)
            .dense(10, 7)
            .activation(ActKind::Relu)
            .dense(8, 8)
            .activation(ActKind::Relu)
            .dense(4, 9)
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5; 5], 0.05, 0.0, 1.0);
        let dp = DeepPolyAnalysis::run(&plan, &ball);
        let iv = IntervalAnalysis::run(&plan, &ball);
        let mut strictly_tighter = false;
        for (d, i) in dp.output().iter().zip(iv.output()) {
            assert!(d.lo() >= i.lo() - 1e-7, "deeppoly lower looser than box");
            assert!(d.hi() <= i.hi() + 1e-7, "deeppoly upper looser than box");
            if d.width() < i.width() - 1e-9 {
                strictly_tighter = true;
            }
        }
        assert!(strictly_tighter, "deeppoly should beat box somewhere");
    }

    #[test]
    fn pure_affine_network_is_exact() {
        let net = NetworkBuilder::new(3).dense(4, 11).dense(2, 12).build();
        let plan = net.to_plan();
        let x = [0.2, 0.8, 0.5];
        let input: Vec<Interval> = x.iter().map(|&v| Interval::point(v)).collect();
        let dp = DeepPolyAnalysis::run(&plan, &input);
        let y = net.forward(&x);
        for (iv, &v) in dp.output().iter().zip(&y) {
            assert!((iv.lo() - v).abs() < 1e-9 && (iv.hi() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn margin_lower_bound_matches_output_bounds() {
        let net = NetworkBuilder::new(2)
            .dense(3, 20)
            .activation(ActKind::Relu)
            .dense(2, 21)
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5, 0.5], 0.02, 0.0, 1.0);
        let dp = DeepPolyAnalysis::run(&plan, &ball);
        let m = dp.margin_lower_bound(0, 1);
        assert!((m - (dp.output()[0].lo() - dp.output()[1].hi())).abs() < 1e-12);
    }
}
