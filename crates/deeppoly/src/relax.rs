//! Linear relaxations of activation functions.
//!
//! Given concrete pre-activation bounds `[lo, hi]`, each activation is
//! bracketed by two lines `λ_l·x + μ_l ≤ act(x) ≤ λ_u·x + μ_u` valid on
//! `[lo, hi]`. These are the DeepPoly transformers: the exact identity/zero
//! cases for stable ReLUs, the triangle relaxation for unstable ReLUs, and
//! the minimum-endpoint-slope bounds for the S-shaped activations.

use raven_nn::ActKind;

/// A pair of linear bounds `λ_l·x + μ_l ≤ f(x) ≤ λ_u·x + μ_u` on an
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relaxation {
    /// Slope of the lower bounding line.
    pub lower_slope: f64,
    /// Intercept of the lower bounding line.
    pub lower_intercept: f64,
    /// Slope of the upper bounding line.
    pub upper_slope: f64,
    /// Intercept of the upper bounding line.
    pub upper_intercept: f64,
}

impl Relaxation {
    /// The exact relaxation of a linear piece `f(x) = s·x + t`.
    pub fn exact(slope: f64, intercept: f64) -> Self {
        Self {
            lower_slope: slope,
            lower_intercept: intercept,
            upper_slope: slope,
            upper_intercept: intercept,
        }
    }

    /// Evaluates the lower line at `x`.
    pub fn lower_at(&self, x: f64) -> f64 {
        self.lower_slope * x + self.lower_intercept
    }

    /// Evaluates the upper line at `x`.
    pub fn upper_at(&self, x: f64) -> f64 {
        self.upper_slope * x + self.upper_intercept
    }
}

/// Computes the DeepPoly relaxation of `kind` over `[lo, hi]`.
///
/// # Panics
///
/// Panics when `lo > hi` or either bound is non-finite (concrete bounds are
/// always finite after interval/DeepPoly analysis of a bounded input box).
///
/// # Examples
///
/// ```
/// use raven_deeppoly::relax_activation;
/// use raven_nn::ActKind;
///
/// // Stable-active ReLU is exact.
/// let r = relax_activation(ActKind::Relu, 0.5, 2.0);
/// assert_eq!(r.lower_at(1.0), 1.0);
/// assert_eq!(r.upper_at(1.0), 1.0);
/// ```
pub fn relax_activation(kind: ActKind, lo: f64, hi: f64) -> Relaxation {
    assert!(
        lo.is_finite() && hi.is_finite() && lo <= hi,
        "relaxation needs finite ordered bounds, got [{lo}, {hi}]"
    );
    match kind {
        ActKind::Relu => relax_relu(lo, hi),
        ActKind::Sigmoid | ActKind::Tanh => relax_sshape(kind, lo, hi),
        ActKind::LeakyRelu => relax_leaky_relu(lo, hi),
        ActKind::HardTanh => relax_hard_tanh(lo, hi),
    }
}

fn relax_leaky_relu(lo: f64, hi: f64) -> Relaxation {
    let alpha = ActKind::LEAKY_SLOPE;
    if lo >= 0.0 {
        Relaxation::exact(1.0, 0.0)
    } else if hi <= 0.0 {
        Relaxation::exact(alpha, 0.0)
    } else {
        // Unstable: chord above (the function is convex), area-heuristic
        // tangent slope below, both through the kink at the origin.
        let upper_slope = (hi - alpha * lo) / (hi - lo);
        let upper_intercept = alpha * lo - upper_slope * lo;
        let lower_slope = if hi > -lo { 1.0 } else { alpha };
        Relaxation {
            lower_slope,
            lower_intercept: 0.0,
            upper_slope,
            upper_intercept,
        }
    }
}

fn relax_hard_tanh(lo: f64, hi: f64) -> Relaxation {
    if hi <= -1.0 {
        return Relaxation::exact(0.0, -1.0);
    }
    if lo >= 1.0 {
        return Relaxation::exact(0.0, 1.0);
    }
    if lo >= -1.0 && hi <= 1.0 {
        return Relaxation::exact(1.0, 0.0);
    }
    if lo < -1.0 && hi <= 1.0 {
        // Convex piece `max(x, -1)`: chord above, kink-anchored line below.
        let upper_slope = (hi + 1.0) / (hi - lo);
        let upper_intercept = -1.0 - upper_slope * lo;
        let lower_slope = if hi + 1.0 > -1.0 - lo { 1.0 } else { 0.0 };
        return Relaxation {
            lower_slope,
            lower_intercept: lower_slope - 1.0, // s·(x+1) − 1 at slope s
            upper_slope,
            upper_intercept,
        };
    }
    if lo >= -1.0 && hi > 1.0 {
        // Concave piece `min(x, 1)`: chord below, kink-anchored line above.
        let lower_slope = (1.0 - lo) / (hi - lo);
        let lower_intercept = lo - lower_slope * lo;
        let upper_slope = if 1.0 - lo > hi - 1.0 { 1.0 } else { 0.0 };
        return Relaxation {
            lower_slope,
            lower_intercept,
            upper_slope,
            upper_intercept: 1.0 - upper_slope, // s·(x−1) + 1 at slope s
        };
    }
    // Both kinks inside: the tightest single lines anchored at the kinks.
    let lower_slope = (2.0 / (hi + 1.0)).min(1.0);
    let upper_slope = (2.0 / (1.0 - lo)).min(1.0);
    Relaxation {
        lower_slope,
        lower_intercept: lower_slope - 1.0,
        upper_slope,
        upper_intercept: 1.0 - upper_slope,
    }
}

fn relax_relu(lo: f64, hi: f64) -> Relaxation {
    if lo >= 0.0 {
        Relaxation::exact(1.0, 0.0)
    } else if hi <= 0.0 {
        Relaxation::exact(0.0, 0.0)
    } else {
        // Unstable: triangle upper bound, area-heuristic lower bound.
        let upper_slope = hi / (hi - lo);
        let upper_intercept = -lo * upper_slope;
        let lower_slope = if hi > -lo { 1.0 } else { 0.0 };
        Relaxation {
            lower_slope,
            lower_intercept: 0.0,
            upper_slope,
            upper_intercept,
        }
    }
}

fn relax_sshape(kind: ActKind, lo: f64, hi: f64) -> Relaxation {
    let (flo, fhi) = (kind.eval(lo), kind.eval(hi));
    if (hi - lo) < 1e-12 {
        // Degenerate interval: constant bounds.
        return Relaxation {
            lower_slope: 0.0,
            lower_intercept: flo,
            upper_slope: 0.0,
            upper_intercept: fhi,
        };
    }
    let secant = (fhi - flo) / (hi - lo);
    let lambda = kind.deriv(lo).min(kind.deriv(hi));
    // Both sigmoid and tanh are convex below 0 and concave above 0, with a
    // unimodal derivative peaking at 0 — the standard DeepPoly case split.
    if hi <= 0.0 {
        // Convex: secant above, tangent-slope line anchored at (lo, f(lo))
        // below.
        Relaxation {
            lower_slope: lambda,
            lower_intercept: flo - lambda * lo,
            upper_slope: secant,
            upper_intercept: flo - secant * lo,
        }
    } else if lo >= 0.0 {
        // Concave: secant below, tangent-slope line anchored at (hi, f(hi))
        // above.
        Relaxation {
            lower_slope: secant,
            lower_intercept: flo - secant * lo,
            upper_slope: lambda,
            upper_intercept: fhi - lambda * hi,
        }
    } else {
        // Mixed: λ-slope lines anchored at the endpoints (sound because the
        // derivative exceeds λ throughout the interval).
        Relaxation {
            lower_slope: lambda,
            lower_intercept: flo - lambda * lo,
            upper_slope: lambda,
            upper_intercept: fhi - lambda * hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sound(kind: ActKind, lo: f64, hi: f64) {
        let r = relax_activation(kind, lo, hi);
        let n = 200;
        for i in 0..=n {
            let x = lo + (hi - lo) * i as f64 / n as f64;
            let f = kind.eval(x);
            assert!(
                r.lower_at(x) <= f + 1e-9,
                "{kind} lower violated at {x}: {} > {f} on [{lo},{hi}]",
                r.lower_at(x)
            );
            assert!(
                r.upper_at(x) >= f - 1e-9,
                "{kind} upper violated at {x}: {} < {f} on [{lo},{hi}]",
                r.upper_at(x)
            );
        }
    }

    #[test]
    fn relu_cases_are_sound_and_tight() {
        check_sound(ActKind::Relu, 1.0, 2.0);
        check_sound(ActKind::Relu, -2.0, -1.0);
        check_sound(ActKind::Relu, -1.0, 3.0);
        check_sound(ActKind::Relu, -3.0, 1.0);
        // Stable cases are exact.
        let r = relax_activation(ActKind::Relu, 0.0, 1.0);
        assert_eq!(r, Relaxation::exact(1.0, 0.0));
        let r = relax_activation(ActKind::Relu, -1.0, 0.0);
        assert_eq!(r, Relaxation::exact(0.0, 0.0));
        // Triangle upper bound passes through both corners.
        let r = relax_activation(ActKind::Relu, -1.0, 2.0);
        assert!((r.upper_at(-1.0) - 0.0).abs() < 1e-12);
        assert!((r.upper_at(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sshape_relaxations_are_sound_across_regimes() {
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            check_sound(kind, -3.0, -0.5); // convex
            check_sound(kind, 0.5, 3.0); // concave
            check_sound(kind, -2.0, 2.0); // mixed
            check_sound(kind, -0.01, 0.01); // tiny
            check_sound(kind, -8.0, 8.0); // wide
        }
    }

    #[test]
    fn leaky_relu_relaxation_is_sound_and_tight_when_stable() {
        check_sound(ActKind::LeakyRelu, 0.5, 2.0);
        check_sound(ActKind::LeakyRelu, -2.0, -0.5);
        check_sound(ActKind::LeakyRelu, -1.0, 3.0);
        check_sound(ActKind::LeakyRelu, -3.0, 1.0);
        let r = relax_activation(ActKind::LeakyRelu, 0.1, 2.0);
        assert_eq!(r, Relaxation::exact(1.0, 0.0));
        let r = relax_activation(ActKind::LeakyRelu, -2.0, -0.1);
        assert_eq!(r, Relaxation::exact(ActKind::LEAKY_SLOPE, 0.0));
    }

    #[test]
    fn hard_tanh_relaxation_sound_in_all_five_regimes() {
        check_sound(ActKind::HardTanh, -3.0, -1.5); // saturated low
        check_sound(ActKind::HardTanh, 1.5, 3.0); // saturated high
        check_sound(ActKind::HardTanh, -0.8, 0.9); // linear
        check_sound(ActKind::HardTanh, -2.0, 0.5); // low kink
        check_sound(ActKind::HardTanh, -0.5, 2.0); // high kink
        check_sound(ActKind::HardTanh, -2.5, 2.5); // both kinks
        let r = relax_activation(ActKind::HardTanh, -0.5, 0.5);
        assert_eq!(r, Relaxation::exact(1.0, 0.0));
    }

    #[test]
    fn degenerate_interval_is_exact() {
        let r = relax_activation(ActKind::Sigmoid, 0.3, 0.3);
        assert!((r.lower_at(0.3) - ActKind::Sigmoid.eval(0.3)).abs() < 1e-12);
        assert!((r.upper_at(0.3) - ActKind::Sigmoid.eval(0.3)).abs() < 1e-12);
    }
}
