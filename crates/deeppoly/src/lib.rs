//! DeepPoly abstract domain: per-neuron symbolic linear bounds.
//!
//! DeepPoly (Singh et al., POPL 2019) assigns every neuron a pair of linear
//! bounds over the previous layer plus concrete interval bounds obtained by
//! substituting those bounds backwards to the input box. It is the
//! per-execution substrate that RaVeN builds on: the strongest
//! *non-relational* baseline in the paper's evaluation, and the source of
//! the per-execution constraints in the relational LP.
//!
//! # Examples
//!
//! ```
//! use raven_deeppoly::DeepPolyAnalysis;
//! use raven_interval::linf_ball;
//! use raven_nn::{ActKind, NetworkBuilder};
//!
//! let plan = NetworkBuilder::new(2)
//!     .dense(4, 1)
//!     .activation(ActKind::Relu)
//!     .dense(2, 2)
//!     .build()
//!     .to_plan();
//! let dp = DeepPolyAnalysis::run(&plan, &linf_ball(&[0.5, 0.5], 0.1, 0.0, 1.0));
//! assert_eq!(dp.output().len(), 2);
//! ```

mod analyze;
pub mod metrics;
mod relax;

pub use analyze::{DeepPolyAnalysis, InputBounds};
pub use relax::{relax_activation, Relaxation};
