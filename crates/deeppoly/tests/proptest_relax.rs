//! Property-based soundness tests for the activation relaxations: for any
//! interval and any point inside it, the lower line must be below the
//! function and the upper line above it.

use proptest::prelude::*;
use raven_deeppoly::relax_activation;
use raven_nn::ActKind;

fn bounds() -> impl Strategy<Value = (f64, f64)> {
    (-6.0f64..6.0, 0.0f64..8.0).prop_map(|(lo, w)| (lo, lo + w))
}

fn check(kind: ActKind, lo: f64, hi: f64, t: f64) -> Result<(), TestCaseError> {
    let r = relax_activation(kind, lo, hi);
    let x = lo + (hi - lo) * t;
    let f = kind.eval(x);
    prop_assert!(
        r.lower_at(x) <= f + 1e-9,
        "{kind}: lower {} > f({x}) = {f} on [{lo}, {hi}]",
        r.lower_at(x)
    );
    prop_assert!(
        r.upper_at(x) >= f - 1e-9,
        "{kind}: upper {} < f({x}) = {f} on [{lo}, {hi}]",
        r.upper_at(x)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn relu_relaxation_sound((lo, hi) in bounds(), t in 0.0f64..1.0) {
        check(ActKind::Relu, lo, hi, t)?;
    }

    #[test]
    fn sigmoid_relaxation_sound((lo, hi) in bounds(), t in 0.0f64..1.0) {
        check(ActKind::Sigmoid, lo, hi, t)?;
    }

    #[test]
    fn tanh_relaxation_sound((lo, hi) in bounds(), t in 0.0f64..1.0) {
        check(ActKind::Tanh, lo, hi, t)?;
    }

    #[test]
    fn leaky_relu_relaxation_sound((lo, hi) in bounds(), t in 0.0f64..1.0) {
        check(ActKind::LeakyRelu, lo, hi, t)?;
    }

    #[test]
    fn hard_tanh_relaxation_sound((lo, hi) in bounds(), t in 0.0f64..1.0) {
        check(ActKind::HardTanh, lo, hi, t)?;
    }

    #[test]
    fn relaxation_band_is_ordered((lo, hi) in bounds(), t in 0.0f64..1.0) {
        // The lower line never exceeds the upper line on the interval.
        for kind in ActKind::all() {
            let r = relax_activation(kind, lo, hi);
            let x = lo + (hi - lo) * t;
            prop_assert!(r.lower_at(x) <= r.upper_at(x) + 1e-9);
        }
    }

    #[test]
    fn endpoints_are_tight_for_relu_upper(lo in -6.0f64..-0.01, hi in 0.01f64..6.0) {
        // The triangle upper bound touches ReLU at both interval endpoints
        // (unstable case: lo < 0 < hi by construction).
        let r = relax_activation(ActKind::Relu, lo, hi);
        prop_assert!((r.upper_at(lo) - 0.0).abs() < 1e-9);
        prop_assert!((r.upper_at(hi) - hi).abs() < 1e-9);
    }
}
