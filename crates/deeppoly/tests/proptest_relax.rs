//! Randomized soundness tests for the activation relaxations: for any
//! interval and any point inside it, the lower line must be below the
//! function and the upper line above it.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_deeppoly::relax_activation;
use raven_nn::ActKind;
use raven_tensor::Rng;

const CASES: usize = 512;

fn bounds(rng: &mut Rng) -> (f64, f64) {
    let lo = rng.in_range(-6.0, 6.0);
    let w = rng.in_range(0.0, 8.0);
    (lo, lo + w)
}

fn check(kind: ActKind, lo: f64, hi: f64, t: f64) {
    let r = relax_activation(kind, lo, hi);
    let x = lo + (hi - lo) * t;
    let f = kind.eval(x);
    assert!(
        r.lower_at(x) <= f + 1e-9,
        "{kind}: lower {} > f({x}) = {f} on [{lo}, {hi}]",
        r.lower_at(x)
    );
    assert!(
        r.upper_at(x) >= f - 1e-9,
        "{kind}: upper {} < f({x}) = {f} on [{lo}, {hi}]",
        r.upper_at(x)
    );
}

fn check_kind(kind: ActKind, seed: u64) {
    let mut rng = Rng::new(seed);
    for _ in 0..CASES {
        let (lo, hi) = bounds(&mut rng);
        let t = rng.uniform();
        check(kind, lo, hi, t);
    }
}

#[test]
fn relu_relaxation_sound() {
    check_kind(ActKind::Relu, 0xd_e0);
}

#[test]
fn sigmoid_relaxation_sound() {
    check_kind(ActKind::Sigmoid, 0xd_e1);
}

#[test]
fn tanh_relaxation_sound() {
    check_kind(ActKind::Tanh, 0xd_e2);
}

#[test]
fn leaky_relu_relaxation_sound() {
    check_kind(ActKind::LeakyRelu, 0xd_e3);
}

#[test]
fn hard_tanh_relaxation_sound() {
    check_kind(ActKind::HardTanh, 0xd_e4);
}

#[test]
fn relaxation_band_is_ordered() {
    // The lower line never exceeds the upper line on the interval.
    let mut rng = Rng::new(0xd_e5);
    for _ in 0..CASES {
        let (lo, hi) = bounds(&mut rng);
        let t = rng.uniform();
        for kind in ActKind::all() {
            let r = relax_activation(kind, lo, hi);
            let x = lo + (hi - lo) * t;
            assert!(r.lower_at(x) <= r.upper_at(x) + 1e-9);
        }
    }
}

#[test]
fn endpoints_are_tight_for_relu_upper() {
    // The triangle upper bound touches ReLU at both interval endpoints
    // (unstable case: lo < 0 < hi by construction).
    let mut rng = Rng::new(0xd_e6);
    for _ in 0..CASES {
        let lo = rng.in_range(-6.0, -0.01);
        let hi = rng.in_range(0.01, 6.0);
        let r = relax_activation(ActKind::Relu, lo, hi);
        assert!((r.upper_at(lo) - 0.0).abs() < 1e-9);
        assert!((r.upper_at(hi) - hi).abs() < 1e-9);
    }
}
