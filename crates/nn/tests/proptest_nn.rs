//! Randomized tests for the network substrate: serialization roundtrips,
//! conv/affine lowering equivalence, and training-facing numerical
//! identities on randomized architectures.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_nn::{network_to_string, parse_network, ActKind, Conv2d, NetworkBuilder};
use raven_tensor::Rng;

const CASES: usize = 64;

fn act(rng: &mut Rng) -> ActKind {
    ActKind::all()[rng.below(ActKind::all().len())]
}

#[test]
fn serialization_roundtrips_random_mlps() {
    let mut rng = Rng::new(0x22_00);
    for _ in 0..CASES {
        let input = 1 + rng.below(5);
        let depth = 1 + rng.below(3);
        let widths: Vec<usize> = (0..depth).map(|_| 1 + rng.below(5)).collect();
        let kinds: Vec<ActKind> = (0..3).map(|_| act(&mut rng)).collect();
        let seed = rng.below(1000) as u64;
        let mut b = NetworkBuilder::new(input);
        for (i, &w) in widths.iter().enumerate() {
            b = b
                .dense(w, seed + i as u64)
                .activation(kinds[i % kinds.len()]);
        }
        let net = b.dense(2, seed + 99).build();
        let back = parse_network(&network_to_string(&net)).expect("roundtrip parses");
        assert_eq!(net, back);
    }
}

#[test]
fn conv_forward_equals_affine_lowering() {
    let mut rng = Rng::new(0x22_01);
    for _ in 0..CASES {
        let in_c = 1 + rng.below(2);
        let side = 2 + rng.below(3);
        let out_c = 1 + rng.below(3);
        let k = 1 + rng.below(2);
        let pad = rng.below(2);
        let seed = rng.below(500) as u64;
        if side + 2 * pad < k {
            continue;
        }
        let wlen = out_c * in_c * k * k;
        let weight: Vec<f64> = (0..wlen)
            .map(|i| ((i as f64 + seed as f64) * 0.731).sin())
            .collect();
        let bias: Vec<f64> = (0..out_c).map(|i| (i as f64 * 0.17) - 0.3).collect();
        let conv = Conv2d::new(in_c, side, side, out_c, k, k, 1, pad, weight, bias);
        let x: Vec<f64> = (0..conv.in_dim())
            .map(|i| ((i as f64 * 1.37) + seed as f64 * 0.11).cos())
            .collect();
        let direct = conv.forward(&x);
        let (m, b) = conv.to_affine();
        let mut lowered = m.matvec(&x);
        for (l, bi) in lowered.iter_mut().zip(&b) {
            *l += bi;
        }
        assert_eq!(direct.len(), lowered.len());
        for (d, l) in direct.iter().zip(&lowered) {
            assert!((d - l).abs() < 1e-9, "{d} vs {l}");
        }
    }
}

#[test]
fn plan_forward_equals_network_forward() {
    let mut rng = Rng::new(0x22_02);
    for _ in 0..CASES {
        let input = 2 + rng.below(3);
        let hidden = 1 + rng.below(5);
        let kind = act(&mut rng);
        let seed = rng.below(500) as u64;
        let x: Vec<f64> = (0..input).map(|_| rng.in_range(-1.0, 1.0)).collect();
        let net = NetworkBuilder::new(input)
            .dense(hidden, seed)
            .activation(kind)
            .dense(3, seed + 1)
            .build();
        let plan = net.to_plan();
        let a = net.forward(&x);
        let b = plan.forward(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}

#[test]
fn softmax_is_shift_invariant() {
    let mut rng = Rng::new(0x22_03);
    for _ in 0..CASES {
        let n = 2 + rng.below(4);
        let logits: Vec<f64> = (0..n).map(|_| rng.in_range(-10.0, 10.0)).collect();
        let shift = rng.in_range(-5.0, 5.0);
        let p = raven_nn::train::softmax(&logits);
        let shifted: Vec<f64> = logits.iter().map(|z| z + shift).collect();
        let q = raven_nn::train::softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn activations_are_monotone() {
    let mut rng = Rng::new(0x22_04);
    for _ in 0..CASES {
        let kind = act(&mut rng);
        let a = rng.in_range(-10.0, 10.0);
        let b = rng.in_range(-10.0, 10.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(kind.eval(lo) <= kind.eval(hi) + 1e-15);
    }
}

#[test]
fn activations_are_lipschitz() {
    let mut rng = Rng::new(0x22_05);
    for _ in 0..CASES {
        let kind = act(&mut rng);
        let a = rng.in_range(-10.0, 10.0);
        let b = rng.in_range(-10.0, 10.0);
        let diff = (kind.eval(a) - kind.eval(b)).abs();
        assert!(diff <= kind.max_slope() * (a - b).abs() + 1e-12);
    }
}
