//! Property-based tests for the network substrate: serialization
//! roundtrips, conv/affine lowering equivalence, and training-facing
//! numerical identities on randomized architectures.

use proptest::prelude::*;
use raven_nn::{network_to_string, parse_network, ActKind, Conv2d, NetworkBuilder};

fn act() -> impl Strategy<Value = ActKind> {
    prop_oneof![
        Just(ActKind::Relu),
        Just(ActKind::Sigmoid),
        Just(ActKind::Tanh),
        Just(ActKind::LeakyRelu),
        Just(ActKind::HardTanh),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialization_roundtrips_random_mlps(
        input in 1usize..6,
        widths in proptest::collection::vec(1usize..6, 1..4),
        kinds in proptest::collection::vec(act(), 3),
        seed in 0u64..1000,
    ) {
        let mut b = NetworkBuilder::new(input);
        for (i, &w) in widths.iter().enumerate() {
            b = b.dense(w, seed + i as u64).activation(kinds[i % kinds.len()]);
        }
        let net = b.dense(2, seed + 99).build();
        let back = parse_network(&network_to_string(&net)).expect("roundtrip parses");
        prop_assert_eq!(net, back);
    }

    #[test]
    fn conv_forward_equals_affine_lowering(
        in_c in 1usize..3,
        side in 2usize..5,
        out_c in 1usize..4,
        k in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(side + 2 * pad >= k);
        let wlen = out_c * in_c * k * k;
        let weight: Vec<f64> = (0..wlen).map(|i| ((i as f64 + seed as f64) * 0.731).sin()).collect();
        let bias: Vec<f64> = (0..out_c).map(|i| (i as f64 * 0.17) - 0.3).collect();
        let conv = Conv2d::new(in_c, side, side, out_c, k, k, 1, pad, weight, bias);
        let x: Vec<f64> = (0..conv.in_dim())
            .map(|i| ((i as f64 * 1.37) + seed as f64 * 0.11).cos())
            .collect();
        let direct = conv.forward(&x);
        let (m, b) = conv.to_affine();
        let mut lowered = m.matvec(&x);
        for (l, bi) in lowered.iter_mut().zip(&b) {
            *l += bi;
        }
        prop_assert_eq!(direct.len(), lowered.len());
        for (d, l) in direct.iter().zip(&lowered) {
            prop_assert!((d - l).abs() < 1e-9, "{d} vs {l}");
        }
    }

    #[test]
    fn plan_forward_equals_network_forward(
        input in 2usize..5,
        hidden in 1usize..6,
        kind in act(),
        seed in 0u64..500,
        x_raw in proptest::collection::vec(-1.0f64..1.0, 2..5),
    ) {
        prop_assume!(x_raw.len() >= input);
        let net = NetworkBuilder::new(input)
            .dense(hidden, seed)
            .activation(kind)
            .dense(3, seed + 1)
            .build();
        let plan = net.to_plan();
        let x = &x_raw[..input];
        let a = net.forward(x);
        let b = plan.forward(x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(logits in proptest::collection::vec(-10.0f64..10.0, 2..6), shift in -5.0f64..5.0) {
        let p = raven_nn::train::softmax(&logits);
        let shifted: Vec<f64> = logits.iter().map(|z| z + shift).collect();
        let q = raven_nn::train::softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activations_are_monotone(kind in act(), a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(kind.eval(lo) <= kind.eval(hi) + 1e-15);
    }

    #[test]
    fn activations_are_lipschitz(kind in act(), a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let diff = (kind.eval(a) - kind.eval(b)).abs();
        prop_assert!(diff <= kind.max_slope() * (a - b).abs() + 1e-12);
    }
}
