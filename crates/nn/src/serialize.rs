//! Plain-text model (de)serialization.
//!
//! Format (line-oriented, whitespace-separated, `#` comments):
//!
//! ```text
//! raven-net v1
//! input 784
//! dense 128 784
//! <128 rows of 784 weights>
//! <1 row of 128 biases>
//! act relu
//! conv 1 28 28 4 3 3 1 1
//! <1 row of out_c*in_c*kh*kw kernel weights>
//! <1 row of out_c biases>
//! end
//! ```
//!
//! The format stands in for ONNX in the paper's toolchain: it lets trained
//! models be committed, reloaded, and shared between examples, tests, and
//! benchmarks.

use crate::{ActKind, BatchNorm, Conv2d, Dense, Layer, Network, NnError};
use raven_tensor::Matrix;
use std::fmt::Write as _;
use std::path::Path;

/// Serializes a network to the text format.
///
/// # Examples
///
/// ```
/// use raven_nn::{ActKind, NetworkBuilder, parse_network, network_to_string};
///
/// let net = NetworkBuilder::new(3).dense(2, 1).activation(ActKind::Relu).build();
/// let text = network_to_string(&net);
/// let back = parse_network(&text).unwrap();
/// assert_eq!(net, back);
/// ```
pub fn network_to_string(net: &Network) -> String {
    let mut out = String::new();
    out.push_str("raven-net v1\n");
    let _ = writeln!(out, "input {}", net.input_dim());
    for layer in net.layers() {
        match layer {
            Layer::Dense(d) => {
                let _ = writeln!(out, "dense {} {}", d.out_dim(), d.in_dim());
                for i in 0..d.out_dim() {
                    push_row(&mut out, d.weight().row(i));
                }
                push_row(&mut out, d.bias());
            }
            Layer::Conv(c) => {
                let (ic, ih, iw, oc, kh, kw, s, p) = c.geometry();
                let _ = writeln!(out, "conv {ic} {ih} {iw} {oc} {kh} {kw} {s} {p}");
                push_row(&mut out, c.weight());
                push_row(&mut out, c.bias());
            }
            Layer::Act(a) => {
                let _ = writeln!(out, "act {}", a.name());
            }
            Layer::BatchNorm(bn) => {
                let (gamma, beta, mean, var, eps) = bn.params();
                let _ = writeln!(out, "batchnorm {} {eps:?}", bn.dim());
                push_row(&mut out, gamma);
                push_row(&mut out, beta);
                push_row(&mut out, mean);
                push_row(&mut out, var);
            }
        }
    }
    out.push_str("end\n");
    out
}

fn push_row(out: &mut String, vals: &[f64]) {
    let mut first = true;
    for v in vals {
        if !first {
            out.push(' ');
        }
        let _ = write!(out, "{v:?}");
        first = false;
    }
    out.push('\n');
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if !line.is_empty() {
                return Some((i + 1, line));
            }
        }
        None
    }

    fn expect(&mut self) -> Result<(usize, &'a str), NnError> {
        self.next_content().ok_or(NnError::Parse {
            line: 0,
            message: "unexpected end of input".into(),
        })
    }
}

fn parse_floats(line: usize, s: &str, expected: usize) -> Result<Vec<f64>, NnError> {
    let vals: Result<Vec<f64>, _> = s.split_whitespace().map(str::parse::<f64>).collect();
    let vals = vals.map_err(|e| NnError::Parse {
        line,
        message: format!("bad float: {e}"),
    })?;
    if vals.len() != expected {
        return Err(NnError::Parse {
            line,
            message: format!("expected {expected} values, found {}", vals.len()),
        });
    }
    Ok(vals)
}

fn parse_usizes(line: usize, s: &str, expected: usize) -> Result<Vec<usize>, NnError> {
    let vals: Result<Vec<usize>, _> = s.split_whitespace().map(str::parse::<usize>).collect();
    let vals = vals.map_err(|e| NnError::Parse {
        line,
        message: format!("bad integer: {e}"),
    })?;
    if vals.len() != expected {
        return Err(NnError::Parse {
            line,
            message: format!("expected {expected} integers, found {}", vals.len()),
        });
    }
    Ok(vals)
}

/// Parses a network from the text format.
///
/// # Errors
///
/// Returns [`NnError::Parse`] with a line number on malformed input, or
/// [`NnError::DimensionMismatch`] when the parsed layers do not chain.
pub fn parse_network(text: &str) -> Result<Network, NnError> {
    let mut lines = Lines {
        iter: text.lines().enumerate(),
    };
    let (ln, header) = lines.expect()?;
    if header != "raven-net v1" {
        return Err(NnError::Parse {
            line: ln,
            message: format!("bad header {header:?}"),
        });
    }
    let (ln, input_line) = lines.expect()?;
    let input_dim = match input_line.strip_prefix("input ") {
        Some(rest) => parse_usizes(ln, rest, 1)?[0],
        None => {
            return Err(NnError::Parse {
                line: ln,
                message: "expected `input <dim>`".into(),
            })
        }
    };
    let mut layers = Vec::new();
    loop {
        let (ln, line) = lines.expect()?;
        if line == "end" {
            break;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("dense") => {
                let rest: String = parts.collect::<Vec<_>>().join(" ");
                let dims = parse_usizes(ln, &rest, 2)?;
                let (out_dim, in_dim) = (dims[0], dims[1]);
                let mut w = Matrix::zeros(out_dim, in_dim);
                for i in 0..out_dim {
                    let (rln, row) = lines.expect()?;
                    let vals = parse_floats(rln, row, in_dim)?;
                    w.row_mut(i).copy_from_slice(&vals);
                }
                let (bln, brow) = lines.expect()?;
                let bias = parse_floats(bln, brow, out_dim)?;
                layers.push(Layer::Dense(Dense::new(w, bias)));
            }
            Some("conv") => {
                let rest: String = parts.collect::<Vec<_>>().join(" ");
                let g = parse_usizes(ln, &rest, 8)?;
                let (ic, ih, iw, oc, kh, kw, s, p) =
                    (g[0], g[1], g[2], g[3], g[4], g[5], g[6], g[7]);
                let (wln, wrow) = lines.expect()?;
                let weight = parse_floats(wln, wrow, oc * ic * kh * kw)?;
                let (bln, brow) = lines.expect()?;
                let bias = parse_floats(bln, brow, oc)?;
                layers.push(Layer::Conv(Conv2d::new(
                    ic, ih, iw, oc, kh, kw, s, p, weight, bias,
                )));
            }
            Some("batchnorm") => {
                let rest: String = parts.collect::<Vec<_>>().join(" ");
                let mut it = rest.split_whitespace();
                let dim: usize = it
                    .next()
                    .ok_or(NnError::Parse {
                        line: ln,
                        message: "batchnorm: missing dim".into(),
                    })?
                    .parse()
                    .map_err(|e| NnError::Parse {
                        line: ln,
                        message: format!("batchnorm dim: {e}"),
                    })?;
                let eps: f64 = it
                    .next()
                    .ok_or(NnError::Parse {
                        line: ln,
                        message: "batchnorm: missing eps".into(),
                    })?
                    .parse()
                    .map_err(|e| NnError::Parse {
                        line: ln,
                        message: format!("batchnorm eps: {e}"),
                    })?;
                let (gln, grow) = lines.expect()?;
                let gamma = parse_floats(gln, grow, dim)?;
                let (bln, brow) = lines.expect()?;
                let beta = parse_floats(bln, brow, dim)?;
                let (mln, mrow) = lines.expect()?;
                let mean = parse_floats(mln, mrow, dim)?;
                let (vln, vrow) = lines.expect()?;
                let var = parse_floats(vln, vrow, dim)?;
                layers.push(Layer::BatchNorm(BatchNorm::new(
                    gamma, beta, mean, var, eps,
                )));
            }
            Some("act") => {
                let name = parts.next().unwrap_or("");
                let kind = ActKind::from_name(name).ok_or_else(|| NnError::Parse {
                    line: ln,
                    message: format!("unknown activation {name:?}"),
                })?;
                layers.push(Layer::Act(kind));
            }
            other => {
                return Err(NnError::Parse {
                    line: ln,
                    message: format!("unknown directive {other:?}"),
                })
            }
        }
    }
    Network::new(input_dim, layers)
}

/// Content hash of a network: FNV-1a 64 over the canonical text
/// serialization.
///
/// Two networks hash equal iff their serializations are byte-identical —
/// since `{v:?}` float formatting is shortest-roundtrip, that means
/// bit-identical parameters and identical architecture. The service layer
/// uses this as the model component of its result-cache key, so cached
/// verdicts can never be served for a model whose weights changed on disk.
///
/// # Examples
///
/// ```
/// use raven_nn::{network_fingerprint, NetworkBuilder};
///
/// let a = NetworkBuilder::new(2).dense(3, 7).build();
/// let b = NetworkBuilder::new(2).dense(3, 7).build();
/// let c = NetworkBuilder::new(2).dense(3, 8).build();
/// assert_eq!(network_fingerprint(&a), network_fingerprint(&b));
/// assert_ne!(network_fingerprint(&a), network_fingerprint(&c));
/// ```
pub fn network_fingerprint(net: &Network) -> u64 {
    fnv1a64(network_to_string(net).as_bytes())
}

/// FNV-1a 64-bit over a byte string — the workspace's standard content
/// hash (deterministic across platforms, no registry deps).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Saves a network to `path` in the text format.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failure.
pub fn save_network(net: &Network, path: &Path) -> Result<(), NnError> {
    std::fs::write(path, network_to_string(net))?;
    Ok(())
}

/// Loads a network from `path`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failure or [`NnError::Parse`] on
/// malformed content.
pub fn load_network(path: &Path) -> Result<Network, NnError> {
    let text = std::fs::read_to_string(path)?;
    parse_network(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    #[test]
    fn roundtrip_preserves_mixed_network_exactly() {
        let net = NetworkBuilder::new(2 * 3 * 3)
            .conv(2, 3, 3, 4, 2, 2, 1, 0, 11)
            .activation(ActKind::Relu)
            .dense(5, 12)
            .activation(ActKind::Sigmoid)
            .dense(3, 13)
            .build();
        let text = network_to_string(&net);
        let back = parse_network(&text).expect("roundtrip parses");
        assert_eq!(net, back);
    }

    #[test]
    fn roundtrip_preserves_batchnorm() {
        let samples: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.05, 0.5]).collect();
        let net = NetworkBuilder::new(2)
            .batch_norm_from(&samples)
            .dense(3, 5)
            .activation(ActKind::Relu)
            .dense(2, 6)
            .build();
        let back = parse_network(&network_to_string(&net)).expect("parses");
        assert_eq!(net, back);
    }

    #[test]
    fn parse_rejects_bad_header() {
        let err = parse_network("bogus v9\ninput 2\nend\n").unwrap_err();
        assert!(matches!(err, NnError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_wrong_row_width() {
        let text = "raven-net v1\ninput 2\ndense 1 2\n1.0\n0.0\nend\n";
        let err = parse_network(text).unwrap_err();
        assert!(matches!(err, NnError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_non_finite_parameters() {
        // `str::parse::<f64>` happily accepts "NaN" and "inf", so the
        // rejection must come from network validation at load time.
        let nan = "raven-net v1\ninput 2\ndense 1 2\n1.0 NaN\n0.0\nend\n";
        let err = parse_network(nan).unwrap_err();
        assert!(
            matches!(err, NnError::NonFinite { layer: 0, .. }),
            "NaN weight must be rejected, got: {err}"
        );
        let inf = "raven-net v1\ninput 2\ndense 1 2\n1.0 2.0\ninf\nend\n";
        let err = parse_network(inf).unwrap_err();
        assert!(
            matches!(
                err,
                NnError::NonFinite {
                    layer: 0,
                    param: "biases"
                }
            ),
            "infinite bias must be rejected, got: {err}"
        );
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text = "# model\nraven-net v1\n\ninput 1\n# layer\nact relu\nend\n";
        let net = parse_network(text).expect("parses");
        assert_eq!(net.layers().len(), 1);
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_parameter() {
        let base = NetworkBuilder::new(3)
            .dense(4, 21)
            .activation(ActKind::Relu)
            .dense(2, 22)
            .build();
        let fp = network_fingerprint(&base);
        assert_eq!(fp, network_fingerprint(&base), "fingerprint is stable");
        // A one-ULP weight nudge must change the hash.
        let mut text = network_to_string(&base);
        let pos = text.find("dense").unwrap();
        let line_start = text[pos..].find('\n').unwrap() + pos + 1;
        let line_end = text[line_start..].find('\n').unwrap() + line_start;
        let first_row: Vec<f64> = text[line_start..line_end]
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        let nudged: Vec<String> = first_row
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let v = if i == 0 {
                    f64::from_bits(v.to_bits() + 1)
                } else {
                    v
                };
                format!("{v:?}")
            })
            .collect();
        text.replace_range(line_start..line_end, &nudged.join(" "));
        let tweaked = parse_network(&text).unwrap();
        assert_ne!(fp, network_fingerprint(&tweaked));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_and_load_roundtrip_via_tempfile() {
        let net = NetworkBuilder::new(3).dense(2, 7).build();
        let dir = std::env::temp_dir();
        let path = dir.join("raven_nn_serialize_test.net");
        save_network(&net, &path).expect("save");
        let back = load_network(&path).expect("load");
        assert_eq!(net, back);
        let _ = std::fs::remove_file(&path);
    }
}
