use std::error::Error;
use std::fmt;

/// Errors produced by network construction, execution, and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two adjacent layers disagree about the width of the tensor flowing
    /// between them.
    DimensionMismatch {
        /// Index of the offending layer within the network.
        layer: usize,
        /// Width the layer expects on its input.
        expected: usize,
        /// Width actually produced by the preceding layer.
        actual: usize,
    },
    /// A layer carries a NaN or infinite parameter. Non-finite weights
    /// would silently poison every downstream analysis (DiffPoly bound
    /// arithmetic and simplex pivots both assume finite coefficients), so
    /// they are rejected at construction/load time instead.
    NonFinite {
        /// Index of the offending layer within the network.
        layer: usize,
        /// Which parameter tensor holds the non-finite value.
        param: &'static str,
    },
    /// A serialized model could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure while loading or saving a model.
    Io(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::DimensionMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} expects input width {expected} but receives {actual}"
            ),
            NnError::NonFinite { layer, param } => write!(
                f,
                "layer {layer} has a non-finite (NaN or infinite) value in its {param}; \
                 refusing to load a model whose parameters would poison sound bounds"
            ),
            NnError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NnError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for NnError {}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::DimensionMismatch {
            layer: 2,
            expected: 10,
            actual: 12,
        };
        let s = e.to_string();
        assert!(s.contains("layer 2") && s.contains("10") && s.contains("12"));
    }
}
