//! Neural-network substrate for the RaVeN reproduction.
//!
//! The paper verifies input-relational properties of feed-forward networks
//! (fully-connected and convolutional, with ReLU/Sigmoid/Tanh activations).
//! This crate provides everything needed to *produce* such networks inside
//! the repository, with no external model zoo:
//!
//! * [`Network`] — a feed-forward stack of [`Layer`]s with exact forward
//!   execution and an *analysis lowering* ([`AnalysisPlan`]) that turns every
//!   affine-ish layer (dense or convolution) into an explicit matrix so the
//!   abstract domains and LP encodings can consume a uniform representation.
//! * [`train`] — a from-scratch SGD trainer (softmax cross-entropy, optional
//!   PGD adversarial training) standing in for the paper's pretrained
//!   standard/robust models.
//! * [`data`] — deterministic synthetic datasets substituting for
//!   MNIST/CIFAR/tabular data (see `DESIGN.md` for the substitution
//!   rationale).
//! * [`attack`] — FGSM/PGD and a universal-adversarial-perturbation attack,
//!   used by the benchmark harness to sandwich certified bounds from above.
//!
//! # Examples
//!
//! ```
//! use raven_nn::{ActKind, NetworkBuilder};
//!
//! let net = NetworkBuilder::new(4)
//!     .dense_from(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]], &[0.0, 0.0])
//!     .activation(ActKind::Relu)
//!     .dense_from(&[&[1.0, -1.0]], &[0.5])
//!     .build();
//! let out = net.forward(&[1.0, -2.0, 3.0, 4.0]);
//! assert_eq!(out, vec![1.5]);
//! ```

mod activation;
pub mod attack;
mod builder;
pub mod data;
mod error;
mod layer;
pub mod metrics;
mod network;
mod plan;
mod serialize;
pub mod train;

pub use activation::ActKind;
pub use builder::NetworkBuilder;
pub use error::NnError;
pub use layer::{BatchNorm, Conv2d, Dense, Layer};
pub use network::Network;
pub use plan::{AnalysisPlan, PlanStep};
pub use serialize::{
    fnv1a64, load_network, network_fingerprint, network_to_string, parse_network, save_network,
};
