//! Deterministic synthetic datasets.
//!
//! The paper evaluates on MNIST and CIFAR-10 plus tabular monotone data.
//! Those assets cannot be shipped inside this repository, so we substitute
//! procedurally generated datasets with the same *interface shape*: image
//! classification over low-dimensional grids (`synth_digits`, `synth_rgb`)
//! and a tabular task whose ground truth is monotone in known features
//! (`synth_credit`). Verification precision and cost depend on network
//! topology, input dimension, and perturbation radius — all of which these
//! datasets exercise identically — not on pixel provenance. See `DESIGN.md`.

use raven_tensor::Rng;

/// A labelled classification dataset with flat `f64` feature vectors.
///
/// # Examples
///
/// ```
/// let ds = raven_nn::data::synth_digits(6, 4, 100, 0.15, 7);
/// assert_eq!(ds.len(), 100);
/// assert_eq!(ds.input_dim, 36);
/// assert_eq!(ds.num_classes, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors, one per example.
    pub inputs: Vec<Vec<f64>>,
    /// Class label per example, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub num_classes: usize,
    /// Width of each feature vector.
    pub input_dim: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into `(train, test)` with `test_fraction` of examples held out
    /// (deterministic: the tail of the generation order is the test set).
    ///
    /// # Panics
    ///
    /// Panics when `test_fraction` is outside `[0, 1]`.
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&test_fraction),
            "test_fraction must be in [0, 1]"
        );
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let n_train = self.len() - n_test;
        let mk = |inputs: &[Vec<f64>], labels: &[usize]| Dataset {
            inputs: inputs.to_vec(),
            labels: labels.to_vec(),
            num_classes: self.num_classes,
            input_dim: self.input_dim,
        };
        (
            mk(&self.inputs[..n_train], &self.labels[..n_train]),
            mk(&self.inputs[n_train..], &self.labels[n_train..]),
        )
    }

    /// Fraction of examples that `classify` maps to their label.
    pub fn accuracy_of<F: Fn(&[f64]) -> usize>(&self, classify: F) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let correct = self
            .inputs
            .iter()
            .zip(&self.labels)
            .filter(|(x, &y)| classify(x) == y)
            .count();
        correct as f64 / self.len() as f64
    }
}

/// Generates a grayscale "digit-like" dataset on a `side x side` grid.
///
/// Each class has a fixed prototype pattern (deterministic in `seed`);
/// samples are the prototype plus Gaussian pixel noise and a random ±1-pixel
/// cyclic shift, clamped to `[0, 1]`. This mirrors MNIST's role in the
/// paper: clusters that a small network separates well but that sit close
/// enough for ε-perturbations to matter.
pub fn synth_digits(side: usize, num_classes: usize, n: usize, noise: f64, seed: u64) -> Dataset {
    synth_grid(side, 1, num_classes, n, noise, seed)
}

/// Generates a 3-channel "CIFAR-like" dataset on a `side x side` grid.
pub fn synth_rgb(side: usize, num_classes: usize, n: usize, noise: f64, seed: u64) -> Dataset {
    synth_grid(side, 3, num_classes, n, noise, seed)
}

fn synth_grid(
    side: usize,
    channels: usize,
    num_classes: usize,
    n: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    assert!(num_classes >= 2, "need at least two classes");
    assert!(side >= 2, "grid side must be at least 2");
    let dim = channels * side * side;
    let mut rng = Rng::new(seed);
    // Class prototypes: smooth low-frequency fields (random sinusoid mixes),
    // so the ±1-pixel shift below keeps samples close to their prototype.
    // Distinct integer frequency pairs per class keep prototypes
    // near-orthogonal while staying smooth under ±1-pixel shifts.
    let freqs: [(f64, f64); 8] = [
        (1.0, 0.0),
        (0.0, 1.0),
        (1.0, 1.0),
        (2.0, 0.0),
        (0.0, 2.0),
        (2.0, 1.0),
        (1.0, 2.0),
        (2.0, 2.0),
    ];
    assert!(
        num_classes <= freqs.len(),
        "synthetic grid data supports at most {} classes",
        freqs.len()
    );
    let prototypes: Vec<Vec<f64>> = (0..num_classes)
        .map(|class| {
            let (fr, fc) = freqs[class];
            let mut proto = vec![0.0; dim];
            for ch in 0..channels {
                let phase = rng.in_range(0.0, std::f64::consts::TAU);
                for r in 0..side {
                    for c in 0..side {
                        let u = fr * r as f64 / side as f64 * std::f64::consts::TAU;
                        let v = fc * c as f64 / side as f64 * std::f64::consts::TAU;
                        proto[(ch * side + r) * side + c] = 0.5 + 0.4 * (u + v + phase).sin();
                    }
                }
            }
            proto
        })
        .collect();
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % num_classes;
        // Structured variation: blend a little of the ±1-pixel shifted
        // prototype into the sample (a soft sub-pixel shift), plus noise.
        let dr = rng.below(3) as isize - 1;
        let dc = rng.below(3) as isize - 1;
        let alpha = 0.25;
        let mut x = vec![0.0; dim];
        for ch in 0..channels {
            for r in 0..side {
                for c in 0..side {
                    let sr = (r as isize + dr).rem_euclid(side as isize) as usize;
                    let sc = (c as isize + dc).rem_euclid(side as isize) as usize;
                    let base = prototypes[label][(ch * side + r) * side + c];
                    let shifted = prototypes[label][(ch * side + sr) * side + sc];
                    let v = (1.0 - alpha) * base + alpha * shifted + noise * rng.gaussian();
                    x[(ch * side + r) * side + c] = v.clamp(0.0, 1.0);
                }
            }
        }
        inputs.push(x);
        labels.push(label);
    }
    Dataset {
        inputs,
        labels,
        num_classes,
        input_dim: dim,
    }
}

/// Ground-truth description of the monotone tabular task.
#[derive(Debug, Clone, PartialEq)]
pub struct CreditSpec {
    /// Indices of features in which the true score is non-decreasing.
    pub increasing: Vec<usize>,
    /// Indices of features in which the true score is non-increasing.
    pub decreasing: Vec<usize>,
    /// Total feature count.
    pub dim: usize,
}

/// Generates a tabular "credit-risk" dataset whose true decision boundary is
/// monotone in known features (increasing in 0,1,2; decreasing in 3,4).
///
/// Returns the dataset (binary labels) plus the [`CreditSpec`] naming the
/// monotone features — the specification that the monotonicity experiments
/// (T4) try to certify on trained networks.
pub fn synth_credit(n: usize, noise: f64, seed: u64) -> (Dataset, CreditSpec) {
    let dim = 6;
    let spec = CreditSpec {
        increasing: vec![0, 1, 2],
        decreasing: vec![3, 4],
        dim,
    };
    let mut rng = Rng::new(seed);
    let mut inputs = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.uniform()).collect();
        // Monotone score: increasing in x0..x2, decreasing in x3, x4;
        // x5 is a nuisance feature entering through a bounded nonlinearity.
        let score = 1.2 * x[0] + 0.8 * x[1] + 1.5 * x[2].powi(2) - 1.0 * x[3] - 0.7 * x[4].sqrt()
            + 0.3 * (3.0 * x[5]).sin()
            + noise * rng.gaussian();
        inputs.push(x);
        labels.push(usize::from(score > 0.9));
    }
    (
        Dataset {
            inputs,
            labels,
            num_classes: 2,
            input_dim: dim,
        },
        spec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_digits_is_deterministic_and_in_range() {
        let a = synth_digits(5, 3, 60, 0.1, 11);
        let b = synth_digits(5, 3, 60, 0.1, 11);
        assert_eq!(a, b);
        assert!(a.inputs.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        let c = synth_digits(5, 3, 60, 0.1, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = synth_digits(4, 4, 40, 0.05, 3);
        for cls in 0..4 {
            assert_eq!(ds.labels.iter().filter(|&&l| l == cls).count(), 10);
        }
    }

    #[test]
    fn split_partitions_examples() {
        let ds = synth_digits(4, 2, 50, 0.1, 5);
        let (train, test) = ds.split(0.2);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
        assert_eq!(train.num_classes, 2);
    }

    #[test]
    fn nearest_prototype_classifier_beats_chance() {
        // The clusters must be separable for training to make sense.
        let ds = synth_digits(6, 4, 200, 0.1, 17);
        let protos: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                let members: Vec<&Vec<f64>> = ds
                    .inputs
                    .iter()
                    .zip(&ds.labels)
                    .filter(|(_, &l)| l == c)
                    .map(|(x, _)| x)
                    .collect();
                let mut mean = vec![0.0; ds.input_dim];
                for m in &members {
                    for (s, v) in mean.iter_mut().zip(m.iter()) {
                        *s += v;
                    }
                }
                mean.iter_mut().for_each(|v| *v /= members.len() as f64);
                mean
            })
            .collect();
        let acc = ds.accuracy_of(|x| {
            let mut best = (0, f64::INFINITY);
            for (c, p) in protos.iter().enumerate() {
                let d: f64 = x.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.1 {
                    best = (c, d);
                }
            }
            best.0
        });
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn credit_labels_follow_monotone_score() {
        let (ds, spec) = synth_credit(300, 0.0, 9);
        assert_eq!(spec.dim, ds.input_dim);
        // Increasing feature 2 (noise-free) never flips a positive to
        // negative: check on a controlled pair.
        let x = vec![0.5; 6];
        let mut x_hi = x.clone();
        x_hi[2] = 0.9;
        let score = |x: &[f64]| {
            1.2 * x[0] + 0.8 * x[1] + 1.5 * x[2] * x[2] - x[3] - 0.7 * x[4].sqrt()
                + 0.3 * (3.0 * x[5]).sin()
        };
        assert!(score(&x_hi) >= score(&x));
        // Both classes are represented.
        assert!(ds.labels.contains(&0));
        assert!(ds.labels.contains(&1));
    }
}
