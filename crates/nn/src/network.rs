use crate::{ActKind, AnalysisPlan, Dense, Layer, NnError};
use raven_tensor::Matrix;

/// A feed-forward neural network: an input width plus a stack of layers.
///
/// `Network` is the concrete executable object; analyses never consume it
/// directly but go through [`Network::to_plan`], which lowers convolutions to
/// affine maps and fuses adjacent affine layers.
///
/// # Examples
///
/// ```
/// use raven_nn::{ActKind, Network, Dense, Layer};
/// use raven_tensor::Matrix;
///
/// let net = Network::new(
///     2,
///     vec![
///         Layer::Dense(Dense::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![0.0])),
///         Layer::Act(ActKind::Relu),
///     ],
/// )
/// .unwrap();
/// assert_eq!(net.forward(&[1.0, -3.0]), vec![0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    input_dim: usize,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network, validating that adjacent layer widths agree and
    /// that every parameter is finite.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when a layer's expected input
    /// width differs from what the previous layer produces, and
    /// [`NnError::NonFinite`] when any weight, bias, or normalization
    /// statistic is NaN or infinite (such values would silently corrupt
    /// DiffPoly bounds and solver pivots, so they are rejected at load).
    pub fn new(input_dim: usize, layers: Vec<Layer>) -> Result<Self, NnError> {
        let mut width = input_dim;
        for (i, layer) in layers.iter().enumerate() {
            if let Some(expected) = layer.in_dim() {
                if expected != width {
                    return Err(NnError::DimensionMismatch {
                        layer: i,
                        expected,
                        actual: width,
                    });
                }
            }
            check_finite_params(i, layer)?;
            width = layer.out_dim(width);
        }
        Ok(Self { input_dim, layers })
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        let mut width = self.input_dim;
        for layer in &self.layers {
            width = layer.out_dim(width);
        }
        width
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer stack (used by the trainer; widths must be preserved).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Widths of all inter-layer tensors, starting with the input width.
    pub fn widths(&self) -> Vec<usize> {
        let mut widths = vec![self.input_dim];
        let mut w = self.input_dim;
        for layer in &self.layers {
            w = layer.out_dim(w);
            widths.push(w);
        }
        widths
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.in_dim() * d.out_dim() + d.out_dim(),
                Layer::Conv(c) => c.weight().len() + c.bias().len(),
                Layer::Act(_) => 0,
                Layer::BatchNorm(bn) => 4 * bn.dim(),
            })
            .sum()
    }

    /// Executes the network on one input.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "network: input width mismatch");
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Executes the network, returning every intermediate tensor
    /// (`result[0]` is the input, `result.last()` the output).
    pub fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.input_dim, "network: input width mismatch");
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(trace.last().expect("trace is non-empty"));
            trace.push(next);
        }
        trace
    }

    /// Predicted class: argmax of the output logits.
    ///
    /// # Panics
    ///
    /// Panics when the network has zero outputs.
    pub fn classify(&self, x: &[f64]) -> usize {
        raven_tensor::argmax(&self.forward(x)).expect("network has at least one output")
    }

    /// Lowers the network into an [`AnalysisPlan`]: convolutions become
    /// explicit affine maps, and runs of adjacent affine layers are fused
    /// into a single affine step, yielding a strict affine/activation
    /// alternation that every abstract domain in the workspace consumes.
    pub fn to_plan(&self) -> AnalysisPlan {
        let mut steps: Vec<PlanAffineOrAct> = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Dense(d) => push_affine(&mut steps, d.weight().clone(), d.bias().to_vec()),
                Layer::Conv(c) => {
                    let (w, b) = c.to_affine();
                    push_affine(&mut steps, w, b);
                }
                Layer::BatchNorm(bn) => {
                    let (w, b) = bn.to_affine();
                    push_affine(&mut steps, w, b);
                }
                Layer::Act(a) => steps.push(PlanAffineOrAct::Act(*a)),
            }
        }
        AnalysisPlan::from_parts(
            self.input_dim,
            steps
                .into_iter()
                .map(|s| match s {
                    PlanAffineOrAct::Affine(w, b) => crate::PlanStep::Affine { weight: w, bias: b },
                    PlanAffineOrAct::Act(a) => crate::PlanStep::Act(a),
                })
                .collect(),
        )
    }
}

/// Rejects NaN/±inf parameters in `layer` (index `i` used for the error).
fn check_finite_params(i: usize, layer: &Layer) -> Result<(), NnError> {
    let bad = |values: &[f64]| values.iter().any(|v| !v.is_finite());
    let fail = |param: &'static str| Err(NnError::NonFinite { layer: i, param });
    match layer {
        Layer::Dense(d) => {
            if bad(d.weight().as_slice()) {
                return fail("weights");
            }
            if bad(d.bias()) {
                return fail("biases");
            }
        }
        Layer::Conv(c) => {
            if bad(c.weight()) {
                return fail("weights");
            }
            if bad(c.bias()) {
                return fail("biases");
            }
        }
        Layer::Act(_) => {}
        Layer::BatchNorm(bn) => {
            let (gamma, beta, mean, var, eps) = bn.params();
            for (param, values) in [
                ("gamma", gamma),
                ("beta", beta),
                ("running mean", mean),
                ("running variance", var),
            ] {
                if bad(values) {
                    return fail(param);
                }
            }
            if !eps.is_finite() {
                return fail("epsilon");
            }
        }
    }
    Ok(())
}

enum PlanAffineOrAct {
    Affine(Matrix, Vec<f64>),
    Act(ActKind),
}

fn push_affine(steps: &mut Vec<PlanAffineOrAct>, w: Matrix, b: Vec<f64>) {
    if let Some(PlanAffineOrAct::Affine(prev_w, prev_b)) = steps.last() {
        // Fuse: (W2 (W1 x + b1) + b2) = (W2 W1) x + (W2 b1 + b2).
        let fused_w = w.matmul(prev_w).expect("plan fusion shapes validated");
        let mut fused_b = w.matvec(prev_b);
        for (fb, bi) in fused_b.iter_mut().zip(&b) {
            *fb += bi;
        }
        *steps.last_mut().expect("non-empty") = PlanAffineOrAct::Affine(fused_w, fused_b);
    } else {
        steps.push(PlanAffineOrAct::Affine(w, b));
    }
}

/// Convenience constructors for common test networks.
impl Network {
    /// Builds a single-dense-layer network (useful in tests and docs).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::DimensionMismatch`] when widths are inconsistent
    /// (cannot happen for this constructor, but kept for API uniformity).
    pub fn single_dense(weight: Matrix, bias: Vec<f64>) -> Result<Self, NnError> {
        let input_dim = weight.cols();
        Network::new(input_dim, vec![Layer::Dense(Dense::new(weight, bias))])
    }
}

// Re-export used by `to_plan` internals.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn toy_net() -> Network {
        NetworkBuilder::new(3)
            .dense_from(&[&[1.0, 0.0, -1.0], &[0.5, 0.5, 0.5]], &[0.0, 1.0])
            .activation(ActKind::Relu)
            .dense_from(&[&[2.0, -1.0]], &[0.0])
            .build()
    }

    #[test]
    fn widths_and_params() {
        let net = toy_net();
        assert_eq!(net.widths(), vec![3, 2, 2, 1]);
        assert_eq!(net.num_params(), 6 + 2 + 2 + 1);
        assert_eq!(net.output_dim(), 1);
    }

    #[test]
    fn new_rejects_mismatched_layers() {
        let err = Network::new(
            3,
            vec![Layer::Dense(Dense::new(Matrix::zeros(2, 4), vec![0.0; 2]))],
        )
        .unwrap_err();
        assert!(matches!(err, NnError::DimensionMismatch { layer: 0, .. }));
    }

    #[test]
    fn new_rejects_nan_weight() {
        let err = Network::new(
            2,
            vec![Layer::Dense(Dense::new(
                Matrix::from_rows(&[&[1.0, f64::NAN]]),
                vec![0.0],
            ))],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NnError::NonFinite {
                layer: 0,
                param: "weights"
            }
        ));
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn new_rejects_infinite_bias_with_layer_index() {
        let err = Network::new(
            2,
            vec![
                Layer::Dense(Dense::new(
                    Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
                    vec![0.0, 0.0],
                )),
                Layer::Act(ActKind::Relu),
                Layer::Dense(Dense::new(
                    Matrix::from_rows(&[&[1.0, 1.0]]),
                    vec![f64::NEG_INFINITY],
                )),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NnError::NonFinite {
                layer: 2,
                param: "biases"
            }
        ));
    }

    #[test]
    fn new_rejects_non_finite_batchnorm_stats() {
        let bn = crate::BatchNorm::new(
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![0.0, f64::INFINITY],
            vec![1.0, 1.0],
            1e-5,
        );
        let err = Network::new(2, vec![Layer::BatchNorm(bn)]).unwrap_err();
        assert!(matches!(
            err,
            NnError::NonFinite {
                layer: 0,
                param: "running mean"
            }
        ));
    }

    #[test]
    fn forward_trace_ends_with_forward() {
        let net = toy_net();
        let x = [0.3, -0.7, 0.2];
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.last().unwrap(), &net.forward(&x));
    }

    #[test]
    fn plan_matches_network_on_random_points() {
        let net = NetworkBuilder::new(4)
            .conv(1, 2, 2, 2, 2, 2, 1, 1, 7)
            .activation(ActKind::Tanh)
            .dense(3, 11)
            .activation(ActKind::Relu)
            .dense(2, 13)
            .build();
        let plan = net.to_plan();
        for s in 0..5 {
            let x: Vec<f64> = (0..4).map(|i| ((i + s * 7) as f64 * 0.37).sin()).collect();
            let a = net.forward(&x);
            let b = plan.forward(&x);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn plan_fuses_adjacent_affine_layers() {
        let net = NetworkBuilder::new(3)
            .dense(4, 1)
            .dense(2, 2)
            .activation(ActKind::Relu)
            .dense(2, 3)
            .build();
        let plan = net.to_plan();
        // dense+dense fused -> affine, act, affine = 3 steps.
        assert_eq!(plan.steps().len(), 3);
        let x = [0.1, -0.2, 0.3];
        let a = net.forward(&x);
        let b = plan.forward(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn classify_returns_argmax() {
        let net = Network::single_dense(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        assert_eq!(net.classify(&[0.2, 0.9]), 1);
    }
}
