use crate::ActKind;
use raven_tensor::Matrix;

/// One step of an [`AnalysisPlan`]: either an explicit affine map or an
/// elementwise activation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// `y = weight * x + bias`.
    Affine {
        /// `out x in` coefficient matrix.
        weight: Matrix,
        /// Output-width bias vector.
        bias: Vec<f64>,
    },
    /// Elementwise activation.
    Act(ActKind),
}

impl PlanStep {
    /// Output width given the input width.
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            PlanStep::Affine { weight, .. } => weight.rows(),
            PlanStep::Act(_) => in_dim,
        }
    }

    /// Whether this step is an activation.
    pub fn is_activation(&self) -> bool {
        matches!(self, PlanStep::Act(_))
    }
}

/// The analysis-ready lowering of a [`crate::Network`].
///
/// Produced by [`crate::Network::to_plan`]: convolutions are unrolled into
/// dense affine maps and adjacent affine layers are fused, so the plan is a
/// strict alternation of affine and activation steps. Every abstract domain
/// (interval, DeepPoly, DiffPoly) and the LP encoder consume this type.
///
/// # Examples
///
/// ```
/// use raven_nn::{ActKind, NetworkBuilder};
///
/// let plan = NetworkBuilder::new(2)
///     .dense(3, 1)
///     .activation(ActKind::Relu)
///     .dense(2, 2)
///     .build()
///     .to_plan();
/// assert_eq!(plan.input_dim(), 2);
/// assert_eq!(plan.output_dim(), 2);
/// assert_eq!(plan.steps().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisPlan {
    input_dim: usize,
    steps: Vec<PlanStep>,
}

impl AnalysisPlan {
    /// Assembles a plan from raw parts.
    ///
    /// # Panics
    ///
    /// Panics when affine step widths do not chain.
    pub fn from_parts(input_dim: usize, steps: Vec<PlanStep>) -> Self {
        let mut w = input_dim;
        for (i, s) in steps.iter().enumerate() {
            if let PlanStep::Affine { weight, bias } = s {
                assert_eq!(weight.cols(), w, "plan step {i}: input width mismatch");
                assert_eq!(weight.rows(), bias.len(), "plan step {i}: bias mismatch");
            }
            w = s.out_dim(w);
        }
        Self { input_dim, steps }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        let mut w = self.input_dim;
        for s in &self.steps {
            w = s.out_dim(w);
        }
        w
    }

    /// The plan's steps in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Widths of all inter-step tensors, starting with the input width.
    pub fn widths(&self) -> Vec<usize> {
        let mut widths = vec![self.input_dim];
        let mut w = self.input_dim;
        for s in &self.steps {
            w = s.out_dim(w);
            widths.push(w);
        }
        widths
    }

    /// Indices of activation steps (useful for per-activation-layer domains).
    pub fn activation_steps(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_activation().then_some(i))
            .collect()
    }

    /// Executes the plan exactly (concrete semantics), mirroring
    /// [`crate::Network::forward`]; used to cross-check the lowering.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "plan: input width mismatch");
        let mut cur = x.to_vec();
        for s in &self.steps {
            cur = match s {
                PlanStep::Affine { weight, bias } => {
                    let mut y = weight.matvec(&cur);
                    for (yi, bi) in y.iter_mut().zip(bias) {
                        *yi += bi;
                    }
                    y
                }
                PlanStep::Act(a) => cur.iter().map(|&v| a.eval(v)).collect(),
            };
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_validates_chaining() {
        let plan = AnalysisPlan::from_parts(
            2,
            vec![
                PlanStep::Affine {
                    weight: Matrix::from_rows(&[&[1.0, 1.0]]),
                    bias: vec![0.5],
                },
                PlanStep::Act(ActKind::Relu),
            ],
        );
        assert_eq!(plan.widths(), vec![2, 1, 1]);
        assert_eq!(plan.activation_steps(), vec![1]);
        assert_eq!(plan.forward(&[1.0, -2.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn from_parts_rejects_bad_widths() {
        AnalysisPlan::from_parts(
            3,
            vec![PlanStep::Affine {
                weight: Matrix::zeros(1, 2),
                bias: vec![0.0],
            }],
        );
    }
}
