//! From-scratch SGD training with optional PGD adversarial training.
//!
//! The paper contrasts standard-trained networks with robust-trained ones
//! (PGD / DiffAI / COLT). This module supplies the two regimes this
//! reproduction uses: plain SGD and PGD adversarial training (the certified
//! training methods are out of scope per the repro band; see `DESIGN.md`).

use crate::data::Dataset;
use crate::{Layer, Network};
use raven_tensor::{Matrix, Rng};

/// Configuration for [`train_classifier`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Classical momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Minibatch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Seed for shuffling (and adversarial example generation).
    pub seed: u64,
    /// When set, each training example is replaced by a PGD adversarial
    /// example inside the given radius before the gradient step.
    pub adversarial: Option<AdvTrainConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 0.1,
            momentum: 0.0,
            batch_size: 16,
            seed: 0,
            adversarial: None,
        }
    }
}

/// PGD adversarial-training parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvTrainConfig {
    /// ℓ∞ radius of the training perturbation.
    pub eps: f64,
    /// Number of PGD steps.
    pub steps: usize,
    /// PGD step size.
    pub step_size: f64,
    /// Fraction of training examples replaced by adversarial ones (the rest
    /// stay clean). Mixing keeps clean accuracy from collapsing on hard
    /// tasks; 1.0 is classic Madry-style training.
    pub adv_fraction: f64,
}

impl Default for AdvTrainConfig {
    fn default() -> Self {
        Self {
            eps: 0.05,
            steps: 4,
            step_size: 0.02,
            adv_fraction: 0.5,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss over the final epoch.
    pub final_loss: f64,
    /// Training-set accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Epochs actually executed.
    pub epochs_run: usize,
}

/// Numerically stable softmax.
///
/// # Examples
///
/// ```
/// let p = raven_nn::train::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Cross-entropy loss of `logits` against `label`, plus the gradient of the
/// loss with respect to the logits (`softmax - onehot`).
///
/// # Panics
///
/// Panics when `label >= logits.len()`.
pub fn cross_entropy(logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    assert!(label < logits.len(), "label out of range");
    let probs = softmax(logits);
    let loss = -(probs[label].max(1e-300)).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, grad)
}

/// Per-layer parameter gradients mirroring [`Network::layers`].
#[derive(Debug, Clone)]
enum LayerGrad {
    Dense { dw: Matrix, db: Vec<f64> },
    Conv { dw: Vec<f64>, db: Vec<f64> },
    None,
}

fn zero_grads(net: &Network) -> Vec<LayerGrad> {
    net.layers()
        .iter()
        .map(|l| match l {
            Layer::Dense(d) => LayerGrad::Dense {
                dw: Matrix::zeros(d.out_dim(), d.in_dim()),
                db: vec![0.0; d.out_dim()],
            },
            Layer::Conv(c) => LayerGrad::Conv {
                dw: vec![0.0; c.weight().len()],
                db: vec![0.0; c.bias().len()],
            },
            Layer::Act(_) | Layer::BatchNorm(_) => LayerGrad::None,
        })
        .collect()
}

/// Runs forward + backward for one example, accumulating parameter
/// gradients into `grads` and returning `(loss, d loss / d input)`.
fn backprop(net: &Network, x: &[f64], label: usize, grads: &mut [LayerGrad]) -> (f64, Vec<f64>) {
    let trace = net.forward_trace(x);
    let logits = trace.last().expect("trace non-empty");
    let (loss, mut grad) = cross_entropy(logits, label);
    for (li, layer) in net.layers().iter().enumerate().rev() {
        let input = &trace[li];
        grad = match (layer, &mut grads[li]) {
            (Layer::Dense(d), LayerGrad::Dense { dw, db }) => {
                for (i, &g) in grad.iter().enumerate() {
                    raven_tensor::axpy(g, input, dw.row_mut(i));
                    db[i] += g;
                }
                d.weight().matvec_t(&grad)
            }
            (Layer::Conv(c), LayerGrad::Conv { dw, db }) => conv_backward(c, input, &grad, dw, db),
            (Layer::Act(a), LayerGrad::None) => grad
                .iter()
                .zip(input)
                .map(|(&g, &z)| g * a.deriv(z))
                .collect(),
            (Layer::BatchNorm(bn), LayerGrad::None) => {
                // Frozen normalization: gradient passes through the fixed
                // per-channel scale.
                let (w, _) = bn.to_affine();
                w.matvec_t(&grad)
            }
            _ => unreachable!("gradient layout mirrors the layer stack"),
        };
    }
    (loss, grad)
}

fn conv_backward(
    c: &crate::Conv2d,
    input: &[f64],
    grad_out: &[f64],
    dw: &mut [f64],
    db: &mut [f64],
) -> Vec<f64> {
    let (in_channels, in_h, in_w, out_channels, kh, kw, stride, padding) = c.geometry();
    let (oh, ow) = (c.out_h(), c.out_w());
    let mut grad_in = vec![0.0; c.in_dim()];
    for oc in 0..out_channels {
        for orow in 0..oh {
            for ocol in 0..ow {
                let g = grad_out[(oc * oh + orow) * ow + ocol];
                if g == 0.0 {
                    continue;
                }
                db[oc] += g;
                let base_r = (orow * stride) as isize - padding as isize;
                let base_c = (ocol * stride) as isize - padding as isize;
                for ic in 0..in_channels {
                    for kr in 0..kh {
                        for kc in 0..kw {
                            let r = base_r + kr as isize;
                            let cc = base_c + kc as isize;
                            if r < 0 || cc < 0 || r as usize >= in_h || cc as usize >= in_w {
                                continue;
                            }
                            let in_idx = (ic * in_h + r as usize) * in_w + cc as usize;
                            let w_idx = ((oc * in_channels + ic) * kh + kr) * kw + kc;
                            dw[w_idx] += g * input[in_idx];
                            grad_in[in_idx] += g * c.weight()[w_idx];
                        }
                    }
                }
            }
        }
    }
    grad_in
}

/// Gradient of the cross-entropy loss with respect to the *input*.
///
/// Used by the attacks in [`crate::attack`]; parameter gradients are
/// discarded.
pub fn input_gradient(net: &Network, x: &[f64], label: usize) -> (f64, Vec<f64>) {
    let mut grads = zero_grads(net);
    backprop(net, x, label, &mut grads)
}

/// Folds the batch gradient into the velocity: `v ← m·v + g`.
fn update_velocity(velocity: &mut [LayerGrad], grads: &[LayerGrad], momentum: f64) {
    for (v, g) in velocity.iter_mut().zip(grads) {
        match (v, g) {
            (LayerGrad::Dense { dw: vw, db: vb }, LayerGrad::Dense { dw, db }) => {
                for i in 0..vw.rows() {
                    for (vx, gx) in vw.row_mut(i).iter_mut().zip(dw.row(i)) {
                        *vx = momentum * *vx + gx;
                    }
                }
                for (vx, gx) in vb.iter_mut().zip(db) {
                    *vx = momentum * *vx + gx;
                }
            }
            (LayerGrad::Conv { dw: vw, db: vb }, LayerGrad::Conv { dw, db }) => {
                for (vx, gx) in vw.iter_mut().zip(dw) {
                    *vx = momentum * *vx + gx;
                }
                for (vx, gx) in vb.iter_mut().zip(db) {
                    *vx = momentum * *vx + gx;
                }
            }
            (LayerGrad::None, LayerGrad::None) => {}
            _ => unreachable!("velocity layout mirrors the layer stack"),
        }
    }
}

fn apply_grads(net: &mut Network, grads: &[LayerGrad], lr: f64, batch: usize) {
    let scale = lr / batch as f64;
    for (layer, grad) in net.layers_mut().iter_mut().zip(grads) {
        match (layer, grad) {
            (Layer::Dense(d), LayerGrad::Dense { dw, db }) => {
                d.weight_mut().add_scaled(-scale, dw);
                for (b, g) in d.bias_mut().iter_mut().zip(db) {
                    *b -= scale * g;
                }
            }
            (Layer::Conv(c), LayerGrad::Conv { dw, db }) => {
                for (w, g) in c.weight_mut().iter_mut().zip(dw) {
                    *w -= scale * g;
                }
                for (b, g) in c.bias_mut().iter_mut().zip(db) {
                    *b -= scale * g;
                }
            }
            (Layer::Act(_) | Layer::BatchNorm(_), LayerGrad::None) => {}
            _ => unreachable!("gradient layout mirrors the layer stack"),
        }
    }
}

/// Trains `net` in place on `ds` with minibatch SGD (optionally on PGD
/// adversarial examples) and returns a [`TrainReport`].
///
/// # Panics
///
/// Panics when the dataset is empty or its width does not match the network.
pub fn train_classifier(net: &mut Network, ds: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!ds.is_empty(), "cannot train on an empty dataset");
    assert_eq!(ds.input_dim, net.input_dim(), "dataset width mismatch");
    let mut rng = Rng::new(cfg.seed);
    let mut order: Vec<usize> = (0..ds.len()).collect();
    let mut last_epoch_loss = 0.0;
    let mut velocity = (cfg.momentum != 0.0).then(|| zero_grads(net));
    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut grads = zero_grads(net);
            for (pos, &idx) in chunk.iter().enumerate() {
                let use_adv = cfg
                    .adversarial
                    .as_ref()
                    .is_some_and(|adv| (pos as f64 + 0.5) / chunk.len() as f64 <= adv.adv_fraction);
                let x = match (&cfg.adversarial, use_adv) {
                    (Some(adv), true) => crate::attack::pgd(
                        net,
                        &ds.inputs[idx],
                        ds.labels[idx],
                        adv.eps,
                        adv.steps,
                        adv.step_size,
                    ),
                    _ => ds.inputs[idx].clone(),
                };
                let (loss, _) = backprop(net, &x, ds.labels[idx], &mut grads);
                epoch_loss += loss;
            }
            match &mut velocity {
                Some(v) => {
                    update_velocity(v, &grads, cfg.momentum);
                    apply_grads(net, v, cfg.lr, chunk.len());
                }
                None => apply_grads(net, &grads, cfg.lr, chunk.len()),
            }
        }
        last_epoch_loss = epoch_loss / ds.len() as f64;
    }
    TrainReport {
        final_loss: last_epoch_loss,
        final_accuracy: ds.accuracy_of(|x| net.classify(x)),
        epochs_run: cfg.epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_digits;
    use crate::{ActKind, NetworkBuilder};

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = [0.3, -0.7, 1.2];
        let (_, grad) = cross_entropy(&logits, 1);
        let h = 1e-6;
        for i in 0..3 {
            let mut up = logits;
            up[i] += h;
            let mut dn = logits;
            dn[i] -= h;
            let fd = (cross_entropy(&up, 1).0 - cross_entropy(&dn, 1).0) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-6,
                "coord {i}: {fd} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let net = NetworkBuilder::new(3)
            .dense(4, 1)
            .activation(ActKind::Tanh)
            .dense(2, 2)
            .build();
        let x = [0.2, -0.4, 0.6];
        let label = 1;
        let mut grads = zero_grads(&net);
        backprop(&net, &x, label, &mut grads);
        // Check dense-0 weight (1, 2) by central difference.
        let h = 1e-6;
        let fd = {
            let mut up = net.clone();
            let mut dn = net.clone();
            if let Layer::Dense(d) = &mut up.layers_mut()[0] {
                let v = d.weight().get(1, 2);
                d.weight_mut().set(1, 2, v + h);
            }
            if let Layer::Dense(d) = &mut dn.layers_mut()[0] {
                let v = d.weight().get(1, 2);
                d.weight_mut().set(1, 2, v - h);
            }
            (cross_entropy(&up.forward(&x), label).0 - cross_entropy(&dn.forward(&x), label).0)
                / (2.0 * h)
        };
        let LayerGrad::Dense { dw, .. } = &grads[0] else {
            panic!("layer 0 is dense");
        };
        assert!((fd - dw.get(1, 2)).abs() < 1e-6, "{fd} vs {}", dw.get(1, 2));
    }

    #[test]
    fn conv_parameter_gradients_match_finite_differences() {
        let net = NetworkBuilder::new(4)
            .conv(1, 2, 2, 2, 2, 2, 1, 1, 3)
            .activation(ActKind::Relu)
            .dense(2, 4)
            .build();
        let x = [0.5, -0.3, 0.8, 0.1];
        let label = 0;
        let mut grads = zero_grads(&net);
        backprop(&net, &x, label, &mut grads);
        let h = 1e-6;
        let widx = 3;
        let fd = {
            let mut up = net.clone();
            let mut dn = net.clone();
            if let Layer::Conv(c) = &mut up.layers_mut()[0] {
                c.weight_mut()[widx] += h;
            }
            if let Layer::Conv(c) = &mut dn.layers_mut()[0] {
                c.weight_mut()[widx] -= h;
            }
            (cross_entropy(&up.forward(&x), label).0 - cross_entropy(&dn.forward(&x), label).0)
                / (2.0 * h)
        };
        let LayerGrad::Conv { dw, .. } = &grads[0] else {
            panic!("layer 0 is conv");
        };
        assert!((fd - dw[widx]).abs() < 1e-6, "{fd} vs {}", dw[widx]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = NetworkBuilder::new(3)
            .dense(5, 9)
            .activation(ActKind::Sigmoid)
            .dense(3, 10)
            .build();
        let x = [0.1, 0.5, -0.2];
        let (_, grad) = input_gradient(&net, &x, 2);
        let h = 1e-6;
        for i in 0..3 {
            let mut up = x;
            up[i] += h;
            let mut dn = x;
            dn[i] -= h;
            let fd = (cross_entropy(&net.forward(&up), 2).0
                - cross_entropy(&net.forward(&dn), 2).0)
                / (2.0 * h);
            assert!((fd - grad[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_data() {
        let ds = synth_digits(5, 3, 120, 0.08, 21);
        let mut net = NetworkBuilder::new(25)
            .dense(16, 1)
            .activation(ActKind::Relu)
            .dense(3, 2)
            .build();
        let report = train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 40,
                lr: 0.5,
                momentum: 0.0,
                batch_size: 8,
                seed: 1,
                adversarial: None,
            },
        );
        assert!(report.final_accuracy > 0.95, "{report:?}");
    }

    #[test]
    fn momentum_training_converges() {
        let ds = synth_digits(5, 3, 120, 0.08, 21);
        let mut net = NetworkBuilder::new(25)
            .dense(16, 1)
            .activation(ActKind::Relu)
            .dense(3, 2)
            .build();
        let report = train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 30,
                lr: 0.2,
                momentum: 0.9,
                batch_size: 8,
                seed: 1,
                adversarial: None,
            },
        );
        assert!(report.final_accuracy > 0.95, "{report:?}");
    }

    #[test]
    fn zero_momentum_matches_plain_sgd_exactly() {
        let ds = synth_digits(4, 2, 40, 0.06, 8);
        let make = || {
            NetworkBuilder::new(16)
                .dense(6, 3)
                .activation(ActKind::Relu)
                .dense(2, 4)
                .build()
        };
        let cfg = |momentum| TrainConfig {
            epochs: 5,
            lr: 0.3,
            momentum,
            batch_size: 8,
            seed: 2,
            adversarial: None,
        };
        let mut a = make();
        train_classifier(&mut a, &ds, &cfg(0.0));
        let mut b = make();
        train_classifier(&mut b, &ds, &cfg(0.0));
        assert_eq!(a, b, "training must be deterministic");
    }

    #[test]
    fn adversarial_training_runs_and_learns() {
        let ds = synth_digits(4, 2, 60, 0.05, 33);
        let mut net = NetworkBuilder::new(16)
            .dense(8, 1)
            .activation(ActKind::Relu)
            .dense(2, 2)
            .build();
        let report = train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 25,
                lr: 0.4,
                momentum: 0.0,
                batch_size: 8,
                seed: 2,
                adversarial: Some(AdvTrainConfig {
                    eps: 0.05,
                    steps: 3,
                    step_size: 0.02,
                    adv_fraction: 0.5,
                }),
            },
        );
        assert!(report.final_accuracy > 0.9, "{report:?}");
    }
}
