//! Classification metrics: confusion matrices and per-class statistics for
//! evaluating trained benchmark models (used by the examples and the
//! benchmark harness's model zoo sanity checks).

use crate::data::Dataset;
use crate::Network;

/// A confusion matrix: `counts[true][predicted]`.
///
/// # Examples
///
/// ```
/// use raven_nn::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.accuracy(), 2.0 / 3.0);
/// assert_eq!(cm.count(0, 1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds the matrix by classifying every example of `ds` with `net`.
    ///
    /// # Panics
    ///
    /// Panics when widths disagree or a label is out of range.
    pub fn from_network(net: &Network, ds: &Dataset) -> Self {
        let mut cm = Self::new(ds.num_classes);
        for (x, &y) in ds.inputs.iter().zip(&ds.labels) {
            cm.record(y, net.classify(x));
        }
        cm
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes);
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Count of examples with the given true and predicted classes.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.classes + predicted]
    }

    /// Total number of recorded examples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c` (`None` when the class has no examples).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let row: usize = (0..self.classes).map(|p| self.count(c, p)).sum();
        (row > 0).then(|| self.count(c, c) as f64 / row as f64)
    }

    /// Precision of class `c` (`None` when the class is never predicted).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let col: usize = (0..self.classes).map(|t| self.count(t, c)).sum();
        (col > 0).then(|| self.count(c, c) as f64 / col as f64)
    }

    /// Renders a compact text table.
    pub fn to_text(&self) -> String {
        let mut out = String::from("true\\pred");
        for p in 0..self.classes {
            out.push_str(&format!(" {p:>6}"));
        }
        out.push('\n');
        for t in 0..self.classes {
            out.push_str(&format!("{t:>9}"));
            for p in 0..self.classes {
                out.push_str(&format!(" {:>6}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_digits;
    use crate::train::{train_classifier, TrainConfig};
    use crate::{ActKind, NetworkBuilder};

    #[test]
    fn per_class_metrics() {
        let mut cm = ConfusionMatrix::new(3);
        // Class 0: 2 right, 1 wrong into 1.
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        // Class 1: 1 right.
        cm.record(1, 1);
        // Class 2: never seen.
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.precision(2), None);
    }

    #[test]
    fn from_network_matches_dataset_accuracy() {
        let ds = synth_digits(4, 2, 60, 0.08, 3);
        let mut net = NetworkBuilder::new(16)
            .dense(8, 1)
            .activation(ActKind::Relu)
            .dense(2, 2)
            .build();
        train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 20,
                lr: 0.4,
                momentum: 0.0,
                batch_size: 8,
                seed: 1,
                adversarial: None,
            },
        );
        let cm = ConfusionMatrix::from_network(&net, &ds);
        assert_eq!(cm.total(), ds.len());
        let acc = ds.accuracy_of(|x| net.classify(x));
        assert!((cm.accuracy() - acc).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_is_square() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 1);
        let text = cm.to_text();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("true\\pred"));
    }
}
