use crate::{ActKind, BatchNorm, Conv2d, Dense, Layer, Network};
use raven_tensor::{Matrix, Rng};

/// Incremental constructor for [`Network`]s.
///
/// Layers added with [`dense`](NetworkBuilder::dense) /
/// [`conv`](NetworkBuilder::conv) receive deterministic pseudo-random
/// weights derived from the provided seed (He-style scaling), which keeps
/// tests, docs and benches reproducible without threading an RNG through.
/// Use [`dense_from`](NetworkBuilder::dense_from) for explicit weights.
///
/// # Examples
///
/// ```
/// use raven_nn::{ActKind, NetworkBuilder};
///
/// let net = NetworkBuilder::new(8)
///     .dense(16, 1)
///     .activation(ActKind::Relu)
///     .dense(4, 2)
///     .build();
/// assert_eq!(net.input_dim(), 8);
/// assert_eq!(net.output_dim(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_dim: usize,
    width: usize,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a builder for a network with the given input width.
    pub fn new(input_dim: usize) -> Self {
        Self {
            input_dim,
            width: input_dim,
            layers: Vec::new(),
        }
    }

    /// Appends a dense layer with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics when the row widths do not match the current tensor width.
    pub fn dense_from(mut self, rows: &[&[f64]], bias: &[f64]) -> Self {
        let w = Matrix::from_rows(rows);
        assert_eq!(w.cols(), self.width, "dense_from: input width mismatch");
        self.width = w.rows();
        self.layers.push(Layer::Dense(Dense::new(w, bias.to_vec())));
        self
    }

    /// Appends a dense layer with `out_dim` outputs and deterministic
    /// pseudo-random weights derived from `seed`.
    pub fn dense(mut self, out_dim: usize, seed: u64) -> Self {
        let in_dim = self.width;
        let scale = (2.0 / in_dim as f64).sqrt();
        let mut rng = Rng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut w = Matrix::zeros(out_dim, in_dim);
        for i in 0..out_dim {
            for j in 0..in_dim {
                w.set(i, j, rng.gaussian() * scale);
            }
        }
        let bias: Vec<f64> = (0..out_dim).map(|_| rng.gaussian() * 0.01).collect();
        self.width = out_dim;
        self.layers.push(Layer::Dense(Dense::new(w, bias)));
        self
    }

    /// Appends a convolution with deterministic pseudo-random weights.
    ///
    /// # Panics
    ///
    /// Panics when `in_channels * in_h * in_w` does not match the current
    /// tensor width.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        mut self,
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            in_channels * in_h * in_w,
            self.width,
            "conv: input geometry does not match current width"
        );
        let fan_in = (in_channels * kh * kw) as f64;
        let scale = (2.0 / fan_in).sqrt();
        let mut rng = Rng::new(seed ^ 0xbf58_476d_1ce4_e5b9);
        let weight: Vec<f64> = (0..out_channels * in_channels * kh * kw)
            .map(|_| rng.gaussian() * scale)
            .collect();
        let bias: Vec<f64> = (0..out_channels).map(|_| rng.gaussian() * 0.01).collect();
        let conv = Conv2d::new(
            in_channels,
            in_h,
            in_w,
            out_channels,
            kh,
            kw,
            stride,
            padding,
            weight,
            bias,
        );
        self.width = conv.out_dim();
        self.layers.push(Layer::Conv(conv));
        self
    }

    /// Appends an elementwise activation.
    pub fn activation(mut self, kind: ActKind) -> Self {
        self.layers.push(Layer::Act(kind));
        self
    }

    /// Appends a batch-normalization layer calibrated on the given samples
    /// (must match the current tensor width).
    ///
    /// # Panics
    ///
    /// Panics when the samples are empty or have the wrong width.
    pub fn batch_norm_from(mut self, samples: &[Vec<f64>]) -> Self {
        let bn = BatchNorm::calibrated(samples);
        assert_eq!(bn.dim(), self.width, "batch_norm: width mismatch");
        self.layers.push(Layer::BatchNorm(bn));
        self
    }

    /// Appends an explicit batch-normalization layer.
    ///
    /// # Panics
    ///
    /// Panics when the layer width does not match the current tensor width.
    pub fn batch_norm(mut self, bn: BatchNorm) -> Self {
        assert_eq!(bn.dim(), self.width, "batch_norm: width mismatch");
        self.layers.push(Layer::BatchNorm(bn));
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics when the accumulated layers are inconsistent (cannot happen if
    /// only builder methods were used, since each one validates widths).
    pub fn build(self) -> Network {
        Network::new(self.input_dim, self.layers).expect("builder maintains width invariant")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic() {
        let a = NetworkBuilder::new(6).dense(4, 42).build();
        let b = NetworkBuilder::new(6).dense(4, 42).build();
        assert_eq!(a, b);
        let c = NetworkBuilder::new(6).dense(4, 43).build();
        assert_ne!(a, c);
    }

    #[test]
    fn builder_tracks_widths_through_conv() {
        let net = NetworkBuilder::new(2 * 4 * 4)
            .conv(2, 4, 4, 3, 3, 3, 1, 1, 5)
            .activation(ActKind::Relu)
            .dense(10, 6)
            .build();
        assert_eq!(net.output_dim(), 10);
        assert_eq!(net.widths()[1], 3 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn dense_from_validates_width() {
        let _ = NetworkBuilder::new(3).dense_from(&[&[1.0, 2.0]], &[0.0]);
    }
}
