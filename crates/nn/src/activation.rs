/// The activation functions supported by the networks and by every abstract
/// domain in the workspace (matching the paper's ReLU/Sigmoid/Tanh coverage).
///
/// # Examples
///
/// ```
/// use raven_nn::ActKind;
///
/// assert_eq!(ActKind::Relu.eval(-2.0), 0.0);
/// assert!(ActKind::Sigmoid.eval(0.0) == 0.5);
/// assert!(ActKind::Tanh.deriv(0.0) == 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActKind {
    /// `max(x, 0)` — piecewise linear, 1-Lipschitz, monotone.
    Relu,
    /// `1 / (1 + e^{-x})` — smooth, 1/4-Lipschitz, monotone.
    Sigmoid,
    /// `tanh(x)` — smooth, 1-Lipschitz, monotone.
    Tanh,
    /// `max(x, αx)` with `α =` [`ActKind::LEAKY_SLOPE`] — piecewise linear,
    /// 1-Lipschitz, strictly monotone.
    LeakyRelu,
    /// `clamp(x, -1, 1)` — piecewise linear, 1-Lipschitz, monotone.
    HardTanh,
}

impl ActKind {
    /// Negative-side slope of [`ActKind::LeakyRelu`].
    pub const LEAKY_SLOPE: f64 = 0.01;

    /// Evaluates the activation at `x`.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Sigmoid => sigmoid(x),
            ActKind::Tanh => x.tanh(),
            ActKind::LeakyRelu => x.max(Self::LEAKY_SLOPE * x),
            ActKind::HardTanh => x.clamp(-1.0, 1.0),
        }
    }

    /// Evaluates the derivative at `x`.
    ///
    /// For ReLU the derivative at 0 is taken to be 0 (subgradient choice
    /// consistent with `eval(0) == 0` being on the inactive branch).
    pub fn deriv(self, x: f64) -> f64 {
        match self {
            ActKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            ActKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            ActKind::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    Self::LEAKY_SLOPE
                }
            }
            ActKind::HardTanh => {
                if (-1.0..=1.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Largest possible derivative value anywhere (global Lipschitz constant).
    pub fn max_slope(self) -> f64 {
        match self {
            ActKind::Relu | ActKind::Tanh | ActKind::LeakyRelu | ActKind::HardTanh => 1.0,
            ActKind::Sigmoid => 0.25,
        }
    }

    /// Whether the function is monotonically non-decreasing (all are).
    pub fn is_monotone(self) -> bool {
        true
    }

    /// Short stable name used by the text serialization format.
    pub fn name(self) -> &'static str {
        match self {
            ActKind::Relu => "relu",
            ActKind::Sigmoid => "sigmoid",
            ActKind::Tanh => "tanh",
            ActKind::LeakyRelu => "leaky_relu",
            ActKind::HardTanh => "hard_tanh",
        }
    }

    /// Every supported activation kind.
    pub fn all() -> [ActKind; 5] {
        [
            ActKind::Relu,
            ActKind::Sigmoid,
            ActKind::Tanh,
            ActKind::LeakyRelu,
            ActKind::HardTanh,
        ]
    }

    /// Parses a name produced by [`ActKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "relu" => Some(ActKind::Relu),
            "sigmoid" => Some(ActKind::Sigmoid),
            "tanh" => Some(ActKind::Tanh),
            "leaky_relu" => Some(ActKind::LeakyRelu),
            "hard_tanh" => Some(ActKind::HardTanh),
            _ => None,
        }
    }
}

impl std::fmt::Display for ActKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_matches_definition() {
        assert_eq!(ActKind::Relu.eval(3.0), 3.0);
        assert_eq!(ActKind::Relu.eval(-3.0), 0.0);
        assert_eq!(ActKind::Relu.deriv(2.0), 1.0);
        assert_eq!(ActKind::Relu.deriv(-2.0), 0.0);
    }

    #[test]
    fn sigmoid_is_stable_for_extreme_inputs() {
        assert!(ActKind::Sigmoid.eval(1000.0) <= 1.0);
        assert!(ActKind::Sigmoid.eval(-1000.0) >= 0.0);
        assert!((ActKind::Sigmoid.eval(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            for &x in &[-2.0, -0.5, 0.0, 0.7, 3.0] {
                let fd = (kind.eval(x + h) - kind.eval(x - h)) / (2.0 * h);
                assert!(
                    (fd - kind.deriv(x)).abs() < 1e-6,
                    "{kind} deriv mismatch at {x}"
                );
            }
        }
    }

    #[test]
    fn max_slope_bounds_derivative() {
        for kind in ActKind::all() {
            for i in -40..40 {
                let x = i as f64 / 4.0;
                assert!(kind.deriv(x) <= kind.max_slope() + 1e-15);
            }
        }
    }

    #[test]
    fn name_roundtrip() {
        for kind in ActKind::all() {
            assert_eq!(ActKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ActKind::from_name("gelu"), None);
    }

    #[test]
    fn leaky_relu_matches_definition() {
        let a = ActKind::LEAKY_SLOPE;
        assert_eq!(ActKind::LeakyRelu.eval(2.0), 2.0);
        assert_eq!(ActKind::LeakyRelu.eval(-2.0), -2.0 * a);
        assert_eq!(ActKind::LeakyRelu.deriv(1.0), 1.0);
        assert_eq!(ActKind::LeakyRelu.deriv(-1.0), a);
    }

    #[test]
    fn hard_tanh_clamps() {
        assert_eq!(ActKind::HardTanh.eval(3.0), 1.0);
        assert_eq!(ActKind::HardTanh.eval(-3.0), -1.0);
        assert_eq!(ActKind::HardTanh.eval(0.4), 0.4);
        assert_eq!(ActKind::HardTanh.deriv(0.0), 1.0);
        assert_eq!(ActKind::HardTanh.deriv(2.0), 0.0);
    }

    #[test]
    fn all_kinds_are_monotone() {
        for kind in ActKind::all() {
            let mut prev = f64::NEG_INFINITY;
            for i in -40..=40 {
                let v = kind.eval(i as f64 / 4.0);
                assert!(v >= prev - 1e-12, "{kind} not monotone");
                prev = v;
            }
        }
    }
}
