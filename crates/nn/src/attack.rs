//! Adversarial attacks: FGSM, PGD, and a universal-perturbation (UAP)
//! attack.
//!
//! The verifier computes *certified lower bounds* on worst-case accuracy;
//! these attacks compute *empirical upper bounds*. The benchmark harness
//! uses both to sandwich the true worst case (experiment F4), exactly as the
//! paper sanity-checks RaVeN's bounds against attack results.

use crate::train::input_gradient;
use crate::Network;

/// Fast gradient sign method: one signed-gradient step of size `eps`,
/// clamped to the valid input range `[0, 1]`.
///
/// # Examples
///
/// ```
/// use raven_nn::{ActKind, NetworkBuilder, attack};
///
/// let net = NetworkBuilder::new(4).dense(2, 1).build();
/// let adv = attack::fgsm(&net, &[0.5; 4], 0, 0.1);
/// assert!(adv.iter().zip(&[0.5; 4]).all(|(a, b)| (a - b).abs() <= 0.1 + 1e-12));
/// ```
pub fn fgsm(net: &Network, x: &[f64], label: usize, eps: f64) -> Vec<f64> {
    let (_, grad) = input_gradient(net, x, label);
    x.iter()
        .zip(&grad)
        .map(|(&xi, &g)| (xi + eps * g.signum()).clamp(0.0, 1.0))
        .collect()
}

/// Projected gradient descent inside the ℓ∞ ball of radius `eps` around
/// `x`, intersected with `[0, 1]`.
pub fn pgd(
    net: &Network,
    x: &[f64],
    label: usize,
    eps: f64,
    steps: usize,
    step_size: f64,
) -> Vec<f64> {
    let mut cur = x.to_vec();
    for _ in 0..steps {
        let (_, grad) = input_gradient(net, &cur, label);
        for ((c, &g), &orig) in cur.iter_mut().zip(&grad).zip(x) {
            *c = (*c + step_size * g.signum())
                .clamp(orig - eps, orig + eps)
                .clamp(0.0, 1.0);
        }
    }
    cur
}

/// Result of the UAP attack: the shared perturbation and the accuracy it
/// achieves over the attacked batch.
#[derive(Debug, Clone, PartialEq)]
pub struct UapAttackResult {
    /// The universal perturbation (same width as the inputs).
    pub delta: Vec<f64>,
    /// Fraction of the batch still classified correctly under `delta`
    /// (an *upper bound* on worst-case UAP accuracy).
    pub accuracy: f64,
}

/// Searches for a single perturbation `delta` with `‖delta‖∞ ≤ eps` that
/// misclassifies as many of the given `(input, label)` pairs as possible.
///
/// This is the empirical counterpart of the UAP verification problem: the
/// returned accuracy upper-bounds the true worst case, while RaVeN's
/// certificate lower-bounds it.
///
/// # Panics
///
/// Panics when `inputs` and `labels` have different lengths or are empty.
pub fn uap(
    net: &Network,
    inputs: &[Vec<f64>],
    labels: &[usize],
    eps: f64,
    steps: usize,
    step_size: f64,
) -> UapAttackResult {
    assert_eq!(inputs.len(), labels.len(), "uap: length mismatch");
    assert!(!inputs.is_empty(), "uap: empty batch");
    let dim = inputs[0].len();
    let mut delta = vec![0.0; dim];
    let mut best_delta = delta.clone();
    let mut best_acc = uap_accuracy(net, inputs, labels, &delta);
    for _ in 0..steps {
        // Average the signed loss gradients over the batch, ascend, project.
        let mut avg = vec![0.0; dim];
        for (x, &y) in inputs.iter().zip(labels) {
            let perturbed = add_delta(x, &delta);
            let (_, grad) = input_gradient(net, &perturbed, y);
            for (a, g) in avg.iter_mut().zip(&grad) {
                *a += g.signum();
            }
        }
        for (d, a) in delta.iter_mut().zip(&avg) {
            *d = (*d + step_size * a.signum()).clamp(-eps, eps);
        }
        let acc = uap_accuracy(net, inputs, labels, &delta);
        if acc < best_acc {
            best_acc = acc;
            best_delta.copy_from_slice(&delta);
        }
    }
    UapAttackResult {
        delta: best_delta,
        accuracy: best_acc,
    }
}

fn add_delta(x: &[f64], delta: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(delta)
        .map(|(&xi, &d)| (xi + d).clamp(0.0, 1.0))
        .collect()
}

/// Accuracy of `net` over the batch when every input is shifted by `delta`.
pub fn uap_accuracy(net: &Network, inputs: &[Vec<f64>], labels: &[usize], delta: &[f64]) -> f64 {
    let correct = inputs
        .iter()
        .zip(labels)
        .filter(|(x, &y)| net.classify(&add_delta(x, delta)) == y)
        .count();
    correct as f64 / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_digits;
    use crate::train::{train_classifier, TrainConfig};
    use crate::{ActKind, NetworkBuilder};

    fn trained_net() -> (crate::Network, crate::data::Dataset) {
        let ds = synth_digits(4, 2, 80, 0.08, 5);
        let mut net = NetworkBuilder::new(16)
            .dense(10, 1)
            .activation(ActKind::Relu)
            .dense(2, 2)
            .build();
        train_classifier(
            &mut net,
            &ds,
            &TrainConfig {
                epochs: 30,
                lr: 0.5,
                momentum: 0.0,
                batch_size: 8,
                seed: 3,
                adversarial: None,
            },
        );
        (net, ds)
    }

    #[test]
    fn fgsm_stays_in_ball_and_range() {
        let (net, ds) = trained_net();
        let adv = fgsm(&net, &ds.inputs[0], ds.labels[0], 0.07);
        for (a, b) in adv.iter().zip(&ds.inputs[0]) {
            assert!((a - b).abs() <= 0.07 + 1e-12);
            assert!((0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn pgd_is_at_least_as_strong_as_no_attack() {
        let (net, ds) = trained_net();
        let clean_acc = ds.accuracy_of(|x| net.classify(x));
        let adv_correct = ds
            .inputs
            .iter()
            .zip(&ds.labels)
            .filter(|(x, &y)| net.classify(&pgd(&net, x, y, 0.3, 10, 0.08)) == y)
            .count() as f64
            / ds.len() as f64;
        assert!(adv_correct <= clean_acc + 1e-12);
    }

    #[test]
    fn uap_delta_respects_radius_and_reduces_accuracy_monotonically() {
        let (net, ds) = trained_net();
        let inputs = &ds.inputs[..10];
        let labels = &ds.labels[..10];
        let res = uap(&net, inputs, labels, 0.2, 8, 0.05);
        assert!(res.delta.iter().all(|d| d.abs() <= 0.2 + 1e-12));
        let clean = uap_accuracy(&net, inputs, labels, &[0.0; 16]);
        assert!(res.accuracy <= clean + 1e-12);
    }

    #[test]
    fn uap_accuracy_of_zero_delta_is_clean_accuracy() {
        let (net, ds) = trained_net();
        let acc = uap_accuracy(&net, &ds.inputs, &ds.labels, &[0.0; 16]);
        assert!((acc - ds.accuracy_of(|x| net.classify(x))).abs() < 1e-12);
    }
}
