use crate::ActKind;
use raven_tensor::Matrix;

/// A fully-connected affine layer `y = W x + b`.
///
/// # Examples
///
/// ```
/// use raven_nn::Dense;
/// use raven_tensor::Matrix;
///
/// let d = Dense::new(Matrix::from_rows(&[&[2.0, 0.0]]), vec![1.0]);
/// assert_eq!(d.forward(&[3.0, 7.0]), vec![7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weight: Matrix,
    bias: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer from a weight matrix (`out x in`) and bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != weight.rows()`.
    pub fn new(weight: Matrix, bias: Vec<f64>) -> Self {
        assert_eq!(weight.rows(), bias.len(), "dense: bias length mismatch");
        Self { weight, bias }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// The weight matrix (`out x in`).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable weight matrix, used by the trainer.
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable bias vector, used by the trainer.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Computes `W x + b`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.weight.matvec(x);
        for (yi, bi) in y.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
        y
    }
}

/// A 2-D convolution layer with explicit input geometry.
///
/// Input and output tensors flow through the network as flat `Vec<f64>` in
/// `(channel, row, col)` row-major order; the layer records the spatial
/// geometry it needs. Padding is zero-padding; dilation is not supported.
///
/// # Examples
///
/// ```
/// use raven_nn::Conv2d;
///
/// // 1 input channel 3x3, one 2x2 kernel of ones, stride 1, no padding.
/// let conv = Conv2d::new(1, 3, 3, 1, 2, 2, 1, 0, vec![1.0; 4], vec![0.0]);
/// let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
/// assert_eq!(conv.forward(&x), vec![12.0, 16.0, 24.0, 28.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    in_channels: usize,
    in_h: usize,
    in_w: usize,
    out_channels: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    /// Kernel weights in `(out_c, in_c, kh, kw)` row-major order.
    weight: Vec<f64>,
    bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// `weight` must have length `out_channels * in_channels * kh * kw` and
    /// `bias` length `out_channels`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent buffer lengths, zero stride, or kernels larger
    /// than the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        padding: usize,
        weight: Vec<f64>,
        bias: Vec<f64>,
    ) -> Self {
        assert!(stride > 0, "conv2d: stride must be positive");
        assert_eq!(
            weight.len(),
            out_channels * in_channels * kh * kw,
            "conv2d: weight length mismatch"
        );
        assert_eq!(bias.len(), out_channels, "conv2d: bias length mismatch");
        assert!(
            in_h + 2 * padding >= kh && in_w + 2 * padding >= kw,
            "conv2d: kernel larger than padded input"
        );
        Self {
            in_channels,
            in_h,
            in_w,
            out_channels,
            kh,
            kw,
            stride,
            padding,
            weight,
            bias,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kh) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kw) / self.stride + 1
    }

    /// Flat input width (`in_channels * in_h * in_w`).
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Flat output width (`out_channels * out_h * out_w`).
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel weights in `(out_c, in_c, kh, kw)` order.
    pub fn weight(&self) -> &[f64] {
        &self.weight
    }

    /// Mutable kernel weights, used by the trainer.
    pub fn weight_mut(&mut self) -> &mut [f64] {
        &mut self.weight
    }

    /// Bias per output channel.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable bias, used by the trainer.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    fn w_at(&self, oc: usize, ic: usize, r: usize, c: usize) -> f64 {
        self.weight[((oc * self.in_channels + ic) * self.kh + r) * self.kw + c]
    }

    fn in_at(&self, x: &[f64], ic: usize, r: isize, c: isize) -> f64 {
        if r < 0 || c < 0 || r as usize >= self.in_h || c as usize >= self.in_w {
            0.0
        } else {
            x[(ic * self.in_h + r as usize) * self.in_w + c as usize]
        }
    }

    /// Applies the convolution to a flat `(c, h, w)`-ordered input.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "conv2d: input length mismatch");
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut y = vec![0.0; self.out_dim()];
        for oc in 0..self.out_channels {
            for orow in 0..oh {
                for ocol in 0..ow {
                    let mut acc = self.bias[oc];
                    let base_r = (orow * self.stride) as isize - self.padding as isize;
                    let base_c = (ocol * self.stride) as isize - self.padding as isize;
                    for ic in 0..self.in_channels {
                        for kr in 0..self.kh {
                            for kc in 0..self.kw {
                                let v =
                                    self.in_at(x, ic, base_r + kr as isize, base_c + kc as isize);
                                if v != 0.0 {
                                    acc += self.w_at(oc, ic, kr, kc) * v;
                                }
                            }
                        }
                    }
                    y[(oc * oh + orow) * ow + ocol] = acc;
                }
            }
        }
        y
    }

    /// Lowers the convolution to an equivalent dense affine map
    /// `(weight_matrix, bias_vector)` over the flat input/output vectors.
    ///
    /// This is how the abstract domains and LP encodings consume
    /// convolutions: as (sparse-in-practice) affine layers, exactly as in the
    /// paper's treatment of convolution as an affine transformer.
    pub fn to_affine(&self) -> (Matrix, Vec<f64>) {
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut m = Matrix::zeros(self.out_dim(), self.in_dim());
        let mut b = vec![0.0; self.out_dim()];
        for oc in 0..self.out_channels {
            for orow in 0..oh {
                for ocol in 0..ow {
                    let out_idx = (oc * oh + orow) * ow + ocol;
                    b[out_idx] = self.bias[oc];
                    let base_r = (orow * self.stride) as isize - self.padding as isize;
                    let base_c = (ocol * self.stride) as isize - self.padding as isize;
                    for ic in 0..self.in_channels {
                        for kr in 0..self.kh {
                            for kc in 0..self.kw {
                                let r = base_r + kr as isize;
                                let c = base_c + kc as isize;
                                if r < 0
                                    || c < 0
                                    || r as usize >= self.in_h
                                    || c as usize >= self.in_w
                                {
                                    continue;
                                }
                                let in_idx = (ic * self.in_h + r as usize) * self.in_w + c as usize;
                                m.set(out_idx, in_idx, self.w_at(oc, ic, kr, kc));
                            }
                        }
                    }
                }
            }
        }
        (m, b)
    }

    /// Geometry tuple used by the serializer:
    /// `(in_channels, in_h, in_w, out_channels, kh, kw, stride, padding)`.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize, usize, usize, usize) {
        (
            self.in_channels,
            self.in_h,
            self.in_w,
            self.out_channels,
            self.kh,
            self.kw,
            self.stride,
            self.padding,
        )
    }
}

/// An inference-time batch-normalization layer: per-channel affine
/// `y = gamma · (x − mean) / sqrt(var + eps) + beta`.
///
/// At inference batch norm is a fixed elementwise affine map, so analyses
/// consume it through [`BatchNorm::to_affine`] (a diagonal matrix), which
/// the plan fuses with neighbouring affine steps.
///
/// # Examples
///
/// ```
/// use raven_nn::BatchNorm;
///
/// let bn = BatchNorm::new(vec![2.0], vec![1.0], vec![0.5], vec![0.25], 0.0);
/// // y = 2 * (x - 0.5) / 0.5 + 1 = 4x - 1.
/// assert!((bn.forward(&[1.0])[0] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    gamma: Vec<f64>,
    beta: Vec<f64>,
    mean: Vec<f64>,
    var: Vec<f64>,
    eps: f64,
}

impl BatchNorm {
    /// Creates a batch-norm layer from learned statistics.
    ///
    /// # Panics
    ///
    /// Panics when the parameter vectors have different lengths, `eps < 0`,
    /// or any variance is negative.
    pub fn new(gamma: Vec<f64>, beta: Vec<f64>, mean: Vec<f64>, var: Vec<f64>, eps: f64) -> Self {
        let n = gamma.len();
        assert!(
            beta.len() == n && mean.len() == n && var.len() == n,
            "batchnorm: parameter length mismatch"
        );
        assert!(eps >= 0.0, "batchnorm: negative eps");
        assert!(
            var.iter().all(|&v| v >= 0.0) && var.iter().zip(&gamma).all(|(&v, _)| v + eps > 0.0),
            "batchnorm: variance must keep var + eps positive"
        );
        Self {
            gamma,
            beta,
            mean,
            var,
            eps,
        }
    }

    /// Calibrates mean/variance from a dataset slice with unit gamma and
    /// zero beta (useful for inserting normalization into test networks).
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty or widths disagree.
    pub fn calibrated(samples: &[Vec<f64>]) -> Self {
        assert!(!samples.is_empty(), "batchnorm: no calibration samples");
        let dim = samples[0].len();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            assert_eq!(s.len(), dim, "batchnorm: ragged samples");
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = vec![0.0; dim];
        for s in samples {
            for ((vv, &m), &x) in var.iter_mut().zip(&mean).zip(s) {
                *vv += (x - m) * (x - m);
            }
        }
        var.iter_mut().for_each(|v| *v /= n);
        Self::new(vec![1.0; dim], vec![0.0; dim], mean, var, 1e-5)
    }

    /// Width of the layer.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Per-channel scale `gamma / sqrt(var + eps)`.
    fn scale(&self, i: usize) -> f64 {
        self.gamma[i] / (self.var[i] + self.eps).sqrt()
    }

    /// Applies the normalization.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "batchnorm: width mismatch");
        x.iter()
            .enumerate()
            .map(|(i, &v)| self.scale(i) * (v - self.mean[i]) + self.beta[i])
            .collect()
    }

    /// Lowers to an equivalent affine map (diagonal weight matrix).
    pub fn to_affine(&self) -> (Matrix, Vec<f64>) {
        let n = self.dim();
        let mut w = Matrix::zeros(n, n);
        let mut b = Vec::with_capacity(n);
        for i in 0..n {
            let s = self.scale(i);
            w.set(i, i, s);
            b.push(self.beta[i] - s * self.mean[i]);
        }
        (w, b)
    }

    /// Raw parameters `(gamma, beta, mean, var, eps)` for serialization.
    pub fn params(&self) -> (&[f64], &[f64], &[f64], &[f64], f64) {
        (&self.gamma, &self.beta, &self.mean, &self.var, self.eps)
    }
}

/// One layer of a feed-forward [`crate::Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully-connected affine layer.
    Dense(Dense),
    /// 2-D convolution (consumed by analyses through its affine lowering).
    Conv(Conv2d),
    /// Elementwise activation.
    Act(ActKind),
    /// Inference-time batch normalization (an affine map for analyses).
    BatchNorm(BatchNorm),
}

impl Layer {
    /// Input width, or `None` for activations (which adapt to their input).
    pub fn in_dim(&self) -> Option<usize> {
        match self {
            Layer::Dense(d) => Some(d.in_dim()),
            Layer::Conv(c) => Some(c.in_dim()),
            Layer::Act(_) => None,
            Layer::BatchNorm(bn) => Some(bn.dim()),
        }
    }

    /// Output width given the input width.
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            Layer::Dense(d) => d.out_dim(),
            Layer::Conv(c) => c.out_dim(),
            Layer::Act(_) => in_dim,
            Layer::BatchNorm(bn) => bn.dim(),
        }
    }

    /// Executes the layer on a flat input vector.
    ///
    /// # Panics
    ///
    /// Panics when the input width does not match an affine layer's
    /// expectation.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Conv(c) => c.forward(x),
            Layer::Act(a) => x.iter().map(|&v| a.eval(v)).collect(),
            Layer::BatchNorm(bn) => bn.forward(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_is_affine() {
        let d = Dense::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]),
            vec![1.0, 2.0],
        );
        assert_eq!(d.forward(&[1.0, 1.0]), vec![4.0, 1.0]);
        assert_eq!(d.in_dim(), 2);
        assert_eq!(d.out_dim(), 2);
    }

    #[test]
    fn conv_forward_matches_affine_lowering() {
        let conv = Conv2d::new(
            2,
            4,
            4,
            3,
            3,
            3,
            1,
            1,
            (0..2 * 3 * 9).map(|i| (i as f64) * 0.1 - 1.0).collect(),
            vec![0.5, -0.5, 0.25],
        );
        let x: Vec<f64> = (0..32).map(|i| (i as f64) * 0.3 - 4.0).collect();
        let direct = conv.forward(&x);
        let (m, b) = conv.to_affine();
        let mut lowered = m.matvec(&x);
        for (l, bi) in lowered.iter_mut().zip(&b) {
            *l += bi;
        }
        assert_eq!(direct.len(), lowered.len());
        for (d, l) in direct.iter().zip(&lowered) {
            assert!((d - l).abs() < 1e-12, "{d} vs {l}");
        }
    }

    #[test]
    fn conv_geometry_with_stride_and_padding() {
        let conv = Conv2d::new(1, 5, 5, 2, 3, 3, 2, 1, vec![0.0; 18], vec![0.0; 2]);
        assert_eq!(conv.out_h(), 3);
        assert_eq!(conv.out_w(), 3);
        assert_eq!(conv.out_dim(), 18);
    }

    #[test]
    fn batchnorm_forward_matches_affine_lowering() {
        let bn = BatchNorm::new(
            vec![1.5, -0.5, 2.0],
            vec![0.1, 0.2, -0.3],
            vec![0.4, 0.5, 0.6],
            vec![0.25, 1.0, 4.0],
            1e-5,
        );
        let x = [0.7, -0.2, 1.3];
        let direct = bn.forward(&x);
        let (w, b) = bn.to_affine();
        let mut lowered = w.matvec(&x);
        for (l, bi) in lowered.iter_mut().zip(&b) {
            *l += bi;
        }
        for (d, l) in direct.iter().zip(&lowered) {
            assert!((d - l).abs() < 1e-12);
        }
    }

    #[test]
    fn batchnorm_calibration_standardizes() {
        let samples: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![3.0 + (i as f64 % 10.0), -1.0])
            .collect();
        let bn = BatchNorm::calibrated(&samples);
        // Normalized samples should have near-zero mean and near-unit std.
        let normed: Vec<Vec<f64>> = samples.iter().map(|s| bn.forward(s)).collect();
        let mean0: f64 = normed.iter().map(|s| s[0]).sum::<f64>() / 100.0;
        let var0: f64 = normed.iter().map(|s| s[0] * s[0]).sum::<f64>() / 100.0 - mean0 * mean0;
        assert!(mean0.abs() < 1e-9);
        assert!((var0 - 1.0).abs() < 1e-3);
        // The constant second channel maps to 0 (zero variance, eps guard).
        assert!(normed.iter().all(|s| s[1].abs() < 1e-9));
    }

    #[test]
    fn activation_layer_applies_elementwise() {
        let l = Layer::Act(ActKind::Relu);
        assert_eq!(l.forward(&[-1.0, 2.0]), vec![0.0, 2.0]);
        assert_eq!(l.out_dim(7), 7);
        assert_eq!(l.in_dim(), None);
    }
}
