//! Property-based tests for the tensor/matrix kernel: algebraic identities
//! that must hold up to floating-point tolerance.

use proptest::prelude::*;
use raven_tensor::{approx_eq, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized correctly"))
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, n)
}

proptest! {
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!(approx_eq(*x, *y, 1e-9), "{x} vs {y}");
        }
    }

    #[test]
    fn matvec_distributes_over_addition(a in matrix(3, 4), x in vector(4), y in vector(4)) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(u, v)| u + v).collect();
        let lhs = a.matvec(&sum);
        let rx = a.matvec(&x);
        let ry = a.matvec(&y);
        for ((l, u), v) in lhs.iter().zip(&rx).zip(&ry) {
            prop_assert!(approx_eq(*l, u + v, 1e-9));
        }
    }

    #[test]
    fn transpose_swaps_matvec(a in matrix(3, 4), x in vector(3)) {
        let via_t = a.transpose().matvec(&x);
        let via_vt = a.matvec_t(&x);
        for (u, v) in via_t.iter().zip(&via_vt) {
            prop_assert!(approx_eq(*u, *v, 1e-12));
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!(approx_eq(*x, *y, 1e-9));
        }
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert_eq!(a.matmul(&i).unwrap(), a.clone());
        prop_assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn frobenius_norm_is_subadditive(a in matrix(3, 3), b in matrix(3, 3)) {
        let mut sum = a.clone();
        sum.add_scaled(1.0, &b);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }
}
