//! Randomized property tests for the tensor/matrix kernel: algebraic
//! identities that must hold up to floating-point tolerance.
//!
//! The cases are driven by the workspace's deterministic [`Rng`] rather than
//! a property-testing framework so the suite builds offline; every run
//! exercises the same sampled matrices.

use raven_tensor::{approx_eq, Matrix, Rng};

const CASES: usize = 64;

fn matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.in_range(-5.0, 5.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("sized correctly")
}

fn vector(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.in_range(-5.0, 5.0)).collect()
}

#[test]
fn matmul_is_associative() {
    let mut rng = Rng::new(0x7e_a5);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 2);
        let c = matrix(&mut rng, 2, 5);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-9), "{x} vs {y}");
        }
    }
}

#[test]
fn matvec_distributes_over_addition() {
    let mut rng = Rng::new(0x7e_a6);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 4);
        let x = vector(&mut rng, 4);
        let y = vector(&mut rng, 4);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(u, v)| u + v).collect();
        let lhs = a.matvec(&sum);
        let rx = a.matvec(&x);
        let ry = a.matvec(&y);
        for ((l, u), v) in lhs.iter().zip(&rx).zip(&ry) {
            assert!(approx_eq(*l, u + v, 1e-9));
        }
    }
}

#[test]
fn transpose_swaps_matvec() {
    let mut rng = Rng::new(0x7e_a7);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 4);
        let x = vector(&mut rng, 3);
        let via_t = a.transpose().matvec(&x);
        let via_vt = a.matvec_t(&x);
        for (u, v) in via_t.iter().zip(&via_vt) {
            assert!(approx_eq(*u, *v, 1e-12));
        }
    }
}

#[test]
fn transpose_of_product_is_reversed_product() {
    let mut rng = Rng::new(0x7e_a8);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 2);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-9));
        }
    }
}

#[test]
fn identity_is_neutral() {
    let mut rng = Rng::new(0x7e_a9);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 4, 4);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i).unwrap(), a.clone());
        assert_eq!(i.matmul(&a).unwrap(), a);
    }
}

#[test]
fn frobenius_norm_is_subadditive() {
    let mut rng = Rng::new(0x7e_aa);
    for _ in 0..CASES {
        let a = matrix(&mut rng, 3, 3);
        let b = matrix(&mut rng, 3, 3);
        let mut sum = a.clone();
        sum.add_scaled(1.0, &b);
        assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }
}
