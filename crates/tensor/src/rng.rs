//! Deterministic pseudo-random number generation shared by the whole
//! workspace.
//!
//! The verifier itself is fully deterministic; randomness is only needed
//! for reproducible *inputs* — weight initialization, synthetic datasets,
//! training-order shuffles, and the randomized property tests. Using one
//! hand-rolled splitmix64 stream everywhere keeps the workspace free of
//! registry dependencies (builds run offline) and makes every consumer
//! bit-reproducible across platforms and library versions.

/// A small, fast, deterministic PRNG (splitmix64 core with a Box–Muller
/// Gaussian layer).
///
/// Not cryptographically secure — it exists for reproducible test data and
/// weight initialization only.
///
/// # Examples
///
/// ```
/// use raven_tensor::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.uniform();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    spare: Option<f64>,
}

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare: None,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }

    /// Uniform sample in `(0, 1]` (never zero; safe under `ln`).
    pub fn uniform_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard Gaussian sample (Box–Muller; pairs are cached).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        let u1 = self.uniform_open();
        let u2 = self.uniform_open();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = rng.uniform_open();
            assert!(v > 0.0 && v <= 1.0);
            let w = rng.in_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&w));
        }
    }

    #[test]
    fn gaussian_moments_are_reasonable() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
