//! Dense tensor and matrix kernel underlying the RaVeN reproduction.
//!
//! This crate provides the small amount of linear algebra the rest of the
//! workspace needs: an n-dimensional [`Tensor`] over `f64`, a dense
//! [`Matrix`] with the usual products, and shape bookkeeping via [`Shape`].
//! Everything is implemented from scratch; no BLAS and no external
//! dependencies.
//!
//! # Examples
//!
//! ```
//! use raven_tensor::{Matrix, Tensor};
//!
//! let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = vec![1.0, -1.0];
//! assert_eq!(w.matvec(&x), vec![-1.0, -1.0]);
//!
//! let t = Tensor::zeros(&[2, 3, 4]);
//! assert_eq!(t.len(), 24);
//! ```

mod error;
mod matrix;
mod rng;
mod shape;
mod tensor;

pub use error::ShapeError;
pub use matrix::Matrix;
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Numerically tolerant equality used across the workspace's tests.
///
/// Returns `true` when `a` and `b` differ by at most `tol` absolutely or
/// relatively (relative to the larger magnitude).
///
/// # Examples
///
/// ```
/// assert!(raven_tensor::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!raven_tensor::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(raven_tensor::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Index of the maximum element (first occurrence on ties).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(raven_tensor::argmax(&[0.1, 0.9, 0.5]), Some(1));
/// assert_eq!(raven_tensor::argmax(&[]), None);
/// ```
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy_agree_with_manual_computation() {
        let a = [1.0, -2.0, 3.0];
        let b = [4.0, 5.0, -6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 - 18.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, -3.0, 7.0]);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
    }

    #[test]
    fn approx_eq_is_relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }
}
