use std::fmt;

/// The extent of a tensor along each axis, in row-major order.
///
/// # Examples
///
/// ```
/// use raven_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from explicit axis extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Self { dims }
    }

    /// The extents along each axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a row-major linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        for ((&i, &d), s) in idx.iter().zip(&self.dims).zip(self.strides()) {
            assert!(i < d, "index {i} out of range for dim {d}");
            off += i * s;
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_is_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_rejects_out_of_range() {
        Shape::new(vec![2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn rank_zero_shape_has_one_element() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_extent_axis_means_empty() {
        assert!(Shape::new(vec![3, 0]).is_empty());
    }
}
