use std::error::Error;
use std::fmt;

/// Error raised when tensor/matrix dimensions are incompatible.
///
/// # Examples
///
/// ```
/// use raven_tensor::ShapeError;
///
/// let err = ShapeError::new("matmul", vec![2, 3], vec![4, 5]);
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: Vec<usize>,
    rhs: Vec<usize>,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with the offending shapes.
    pub fn new(op: &'static str, lhs: Vec<usize>, rhs: Vec<usize>) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that failed (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {:?} vs {:?}",
            self.op, self.lhs, self.rhs
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_shapes() {
        let e = ShapeError::new("matvec", vec![3, 4], vec![5]);
        let s = e.to_string();
        assert!(s.contains("[3, 4]") && s.contains("[5]"));
        assert_eq!(e.op(), "matvec");
    }
}
