use crate::ShapeError;
use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// This is the workhorse type of the workspace: network weights, abstract
/// domain coefficient blocks, and LP constraint rows are all `Matrix` or
/// slices thereof.
///
/// # Examples
///
/// ```
/// use raven_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
/// assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// let at = a.transpose();
/// assert_eq!(at.get(1, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "matrix_from_vec",
                vec![rows, cols],
                vec![data.len()],
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Immutable view of the full row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), x)).collect()
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            crate::axpy(xi, self.row(i), &mut y);
        }
        y
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "matmul",
                vec![self.rows, self.cols],
                vec![other.rows, other.cols],
            ));
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                crate::axpy(a, orow, out.row_mut(i));
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_scaled: shape mismatch"
        );
        crate::axpy(alpha, &other.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -1.0, 2.0];
        assert_eq!(m.matvec_t(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_scaled_and_norm() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.add_scaled(2.0, &b);
        assert_eq!(a.get(0, 0), 3.0);
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }
}
