use crate::{Shape, ShapeError};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major n-dimensional array of `f64`.
///
/// # Examples
///
/// ```
/// use raven_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 2]);
/// t[&[0, 1][..]] = 5.0;
/// assert_eq!(t[&[0, 1][..]], 5.0);
/// assert_eq!(t.sum(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(dims: &[usize], value: f64) -> Self {
        let shape = Shape::from(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor from raw row-major data.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `data.len()` does not match the shape.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Result<Self, ShapeError> {
        let shape = Shape::from(dims);
        if shape.len() != data.len() {
            return Err(ShapeError::new("from_vec", dims.to_vec(), vec![data.len()]));
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of identical length.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self, ShapeError> {
        let new_shape = Shape::from(dims);
        if new_shape.len() != self.data.len() {
            return Err(ShapeError::new(
                "reshape",
                self.shape.dims().to_vec(),
                dims.to_vec(),
            ));
        }
        self.shape = new_shape;
        Ok(self)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest absolute element, or 0 for the empty tensor.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        other: &Self,
        op: &'static str,
        f: F,
    ) -> Result<Self, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                op,
                self.shape.dims().to_vec(),
                other.shape.dims().to_vec(),
            ));
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f64;

    fn index(&self, idx: &[usize]) -> &f64 {
        &self.data[self.shape.offset(idx)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f64 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}[{} elems]", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn elementwise_ops_respect_shapes() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(f64::from).collect())
            .unwrap()
            .reshape(&[3, 2])
            .unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t[&[2, 1][..]], 5.0);
    }

    #[test]
    fn map_scale_and_reductions() {
        let mut t = Tensor::from_vec(&[3], vec![-1.0, 2.0, -3.0]).unwrap();
        assert_eq!(t.map(f64::abs).sum(), 6.0);
        assert_eq!(t.max_abs(), 3.0);
        t.scale(2.0);
        assert_eq!(t.as_slice(), &[-2.0, 4.0, -6.0]);
    }
}
