//! Property-based soundness tests for the zonotope domain.

use proptest::prelude::*;
use raven_interval::Interval;
use raven_tensor::Matrix;
use raven_zonotope::Zonotope;

fn boxes(n: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((-3.0f64..3.0, 0.0f64..2.0), n)
        .prop_map(|v| v.into_iter().map(|(lo, w)| Interval::new(lo, lo + w)).collect())
}

fn point_in(bx: &[Interval], t: &[f64]) -> Vec<f64> {
    bx.iter()
        .zip(t)
        .map(|(iv, &u)| iv.lo() + iv.width() * u)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn from_box_is_exact(bx in boxes(3), t in proptest::collection::vec(0.0f64..1.0, 3)) {
        let z = Zonotope::from_box(&bx);
        let x = point_in(&bx, &t);
        for (i, &v) in x.iter().enumerate() {
            prop_assert!(z.interval(i).lo() - 1e-12 <= v && v <= z.interval(i).hi() + 1e-12);
        }
        // And the box is recovered exactly.
        for (iv, orig) in z.to_box().iter().zip(&bx) {
            prop_assert!((iv.lo() - orig.lo()).abs() < 1e-12);
            prop_assert!((iv.hi() - orig.hi()).abs() < 1e-12);
        }
    }

    #[test]
    fn affine_images_contain_concrete_points(
        bx in boxes(3),
        t in proptest::collection::vec(0.0f64..1.0, 3),
        w in proptest::collection::vec(-2.0f64..2.0, 6),
        b in proptest::collection::vec(-1.0f64..1.0, 2),
    ) {
        let weight = Matrix::from_vec(2, 3, w).expect("sized");
        let z = Zonotope::from_box(&bx).affine(&weight, &b);
        let x = point_in(&bx, &t);
        let mut y = weight.matvec(&x);
        for (yi, bi) in y.iter_mut().zip(&b) {
            *yi += bi;
        }
        for (i, &v) in y.iter().enumerate() {
            prop_assert!(
                z.interval(i).lo() - 1e-9 <= v && v <= z.interval(i).hi() + 1e-9,
                "coord {i}: {v} outside {:?}", z.interval(i)
            );
        }
    }

    #[test]
    fn activation_images_contain_concrete_points(
        bx in boxes(2),
        t in proptest::collection::vec(0.0f64..1.0, 2),
        kind_ix in 0usize..5,
    ) {
        let kind = raven_nn::ActKind::all()[kind_ix];
        let z = Zonotope::from_box(&bx);
        let za = z.activation(kind);
        // Box corners and the sampled interior point are all concrete
        // members of the input zonotope.
        let x = point_in(&bx, &t);
        for (i, &v) in x.iter().enumerate() {
            let f = kind.eval(v);
            prop_assert!(
                za.interval(i).lo() - 1e-9 <= f && f <= za.interval(i).hi() + 1e-9,
                "{kind}: act({v}) = {f} outside {:?}", za.interval(i)
            );
        }
    }

    #[test]
    fn zonotope_difference_of_identical_vars_is_zero(bx in boxes(2)) {
        // Correlation preservation: (x, x) → x − x = 0 exactly.
        let z = Zonotope::from_box(&bx);
        let dup = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let z3 = z.affine(&dup, &[0.0; 3]);
        let diff = z3.affine(&Matrix::from_rows(&[&[1.0, 0.0, -1.0]]), &[0.0]);
        prop_assert!(diff.interval(0).width() < 1e-12);
    }
}
