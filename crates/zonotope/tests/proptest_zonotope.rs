//! Randomized soundness tests for the zonotope domain.
//!
//! Driven by the workspace's deterministic [`Rng`] so the suite builds
//! offline and replays identically on every run.

use raven_interval::Interval;
use raven_tensor::{Matrix, Rng};
use raven_zonotope::Zonotope;

const CASES: usize = 128;

fn boxes(rng: &mut Rng, n: usize) -> Vec<Interval> {
    (0..n)
        .map(|_| {
            let lo = rng.in_range(-3.0, 3.0);
            let w = rng.in_range(0.0, 2.0);
            Interval::new(lo, lo + w)
        })
        .collect()
}

fn unit_vec(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform()).collect()
}

fn point_in(bx: &[Interval], t: &[f64]) -> Vec<f64> {
    bx.iter()
        .zip(t)
        .map(|(iv, &u)| iv.lo() + iv.width() * u)
        .collect()
}

#[test]
fn from_box_is_exact() {
    let mut rng = Rng::new(0x2a_10);
    for _ in 0..CASES {
        let bx = boxes(&mut rng, 3);
        let t = unit_vec(&mut rng, 3);
        let z = Zonotope::from_box(&bx);
        let x = point_in(&bx, &t);
        for (i, &v) in x.iter().enumerate() {
            assert!(z.interval(i).lo() - 1e-12 <= v && v <= z.interval(i).hi() + 1e-12);
        }
        // And the box is recovered exactly.
        for (iv, orig) in z.to_box().iter().zip(&bx) {
            assert!((iv.lo() - orig.lo()).abs() < 1e-12);
            assert!((iv.hi() - orig.hi()).abs() < 1e-12);
        }
    }
}

#[test]
fn affine_images_contain_concrete_points() {
    let mut rng = Rng::new(0x2a_11);
    for _ in 0..CASES {
        let bx = boxes(&mut rng, 3);
        let t = unit_vec(&mut rng, 3);
        let w: Vec<f64> = (0..6).map(|_| rng.in_range(-2.0, 2.0)).collect();
        let b: Vec<f64> = (0..2).map(|_| rng.in_range(-1.0, 1.0)).collect();
        let weight = Matrix::from_vec(2, 3, w).expect("sized");
        let z = Zonotope::from_box(&bx).affine(&weight, &b);
        let x = point_in(&bx, &t);
        let mut y = weight.matvec(&x);
        for (yi, bi) in y.iter_mut().zip(&b) {
            *yi += bi;
        }
        for (i, &v) in y.iter().enumerate() {
            assert!(
                z.interval(i).lo() - 1e-9 <= v && v <= z.interval(i).hi() + 1e-9,
                "coord {i}: {v} outside {:?}",
                z.interval(i)
            );
        }
    }
}

#[test]
fn activation_images_contain_concrete_points() {
    let mut rng = Rng::new(0x2a_12);
    for _ in 0..CASES {
        let bx = boxes(&mut rng, 2);
        let t = unit_vec(&mut rng, 2);
        let kind = raven_nn::ActKind::all()[rng.below(5)];
        let z = Zonotope::from_box(&bx);
        let za = z.activation(kind);
        // Box corners and the sampled interior point are all concrete
        // members of the input zonotope.
        let x = point_in(&bx, &t);
        for (i, &v) in x.iter().enumerate() {
            let f = kind.eval(v);
            assert!(
                za.interval(i).lo() - 1e-9 <= f && f <= za.interval(i).hi() + 1e-9,
                "{kind}: act({v}) = {f} outside {:?}",
                za.interval(i)
            );
        }
    }
}

#[test]
fn zonotope_difference_of_identical_vars_is_zero() {
    // Correlation preservation: (x, x) → x − x = 0 exactly.
    let mut rng = Rng::new(0x2a_13);
    for _ in 0..CASES {
        let bx = boxes(&mut rng, 2);
        let z = Zonotope::from_box(&bx);
        let dup = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let z3 = z.affine(&dup, &[0.0; 3]);
        let diff = z3.affine(&Matrix::from_rows(&[&[1.0, 0.0, -1.0]]), &[0.0]);
        assert!(diff.interval(0).width() < 1e-12);
    }
}
