//! Zonotope propagation through an [`AnalysisPlan`].

use crate::Zonotope;
use raven_interval::Interval;
use raven_nn::{AnalysisPlan, PlanStep};

/// Result of running the zonotope (DeepZ) domain over a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ZonotopeAnalysis {
    /// Concrete interval bounds at every plan boundary.
    pub bounds: Vec<Vec<Interval>>,
    /// The output zonotope (kept for downstream margin queries).
    pub output_zonotope: Zonotope,
}

impl ZonotopeAnalysis {
    /// Runs the domain over `plan` starting from the input box.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != plan.input_dim()` or the box is
    /// empty/unbounded.
    pub fn run(plan: &AnalysisPlan, input: &[Interval]) -> Self {
        assert_eq!(
            input.len(),
            plan.input_dim(),
            "zonotope analysis: input width mismatch"
        );
        let mut z = Zonotope::from_box(input);
        let mut bounds = Vec::with_capacity(plan.steps().len() + 1);
        bounds.push(z.to_box());
        for step in plan.steps() {
            z = match step {
                PlanStep::Affine { weight, bias } => z.affine(weight, bias),
                PlanStep::Act(kind) => z.activation(*kind),
            };
            bounds.push(z.to_box());
        }
        Self {
            bounds,
            output_zonotope: z,
        }
    }

    /// Concrete bounds on the network output.
    pub fn output(&self) -> &[Interval] {
        self.bounds.last().expect("bounds non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_interval::{linf_ball, IntervalAnalysis};
    use raven_nn::{ActKind, NetworkBuilder};

    #[test]
    fn zonotope_contains_concrete_executions() {
        for kind in ActKind::all() {
            let net = NetworkBuilder::new(3)
                .dense(6, 11)
                .activation(kind)
                .dense(5, 12)
                .activation(kind)
                .dense(2, 13)
                .build();
            let plan = net.to_plan();
            let center = [0.4, 0.55, 0.5];
            let eps = 0.07;
            let ball = linf_ball(&center, eps, f64::NEG_INFINITY, f64::INFINITY);
            let za = ZonotopeAnalysis::run(&plan, &ball);
            for s in 0..40 {
                let x: Vec<f64> = center
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        let t = (((s * 11 + i * 5) % 13) as f64 / 6.0) - 1.0;
                        c + eps * t
                    })
                    .collect();
                let y = net.forward(&x);
                for (iv, &v) in za.output().iter().zip(&y) {
                    assert!(
                        iv.lo() - 1e-7 <= v && v <= iv.hi() + 1e-7,
                        "{kind}: {v} outside {iv}"
                    );
                }
            }
        }
    }

    #[test]
    fn zonotope_no_looser_than_interval() {
        let net = NetworkBuilder::new(4)
            .dense(8, 21)
            .activation(ActKind::Relu)
            .dense(6, 22)
            .activation(ActKind::Relu)
            .dense(3, 23)
            .build();
        let plan = net.to_plan();
        let ball = linf_ball(&[0.5; 4], 0.05, f64::NEG_INFINITY, f64::INFINITY);
        let za = ZonotopeAnalysis::run(&plan, &ball);
        let iv = IntervalAnalysis::run(&plan, &ball);
        let mut strictly_tighter = false;
        for (z, b) in za.output().iter().zip(iv.output()) {
            assert!(
                z.lo() >= b.lo() - 1e-7 && z.hi() <= b.hi() + 1e-7,
                "zonotope looser than interval: {z} vs {b}"
            );
            if z.width() < b.width() - 1e-9 {
                strictly_tighter = true;
            }
        }
        assert!(strictly_tighter, "zonotope should beat intervals somewhere");
    }

    #[test]
    fn point_input_is_exact() {
        let net = NetworkBuilder::new(2)
            .dense(4, 31)
            .activation(ActKind::Tanh)
            .dense(2, 32)
            .build();
        let plan = net.to_plan();
        let x = [0.3, 0.7];
        let input: Vec<Interval> = x.iter().map(|&v| Interval::point(v)).collect();
        let za = ZonotopeAnalysis::run(&plan, &input);
        let y = net.forward(&x);
        for (iv, &v) in za.output().iter().zip(&y) {
            assert!((iv.lo() - v).abs() < 1e-9 && (iv.hi() - v).abs() < 1e-9);
        }
    }
}
