//! Zonotope (DeepZ-style) abstract domain.
//!
//! A zonotope represents a set of vectors as an affine image of a box:
//! `{ c + E·η : η ∈ [-1, 1]^g }` with center `c` and one column of the
//! error matrix `E` per *noise symbol*. Affine layers transform zonotopes
//! **exactly** (and, crucially, preserve correlations between neurons —
//! unlike the interval domain); activation layers apply the DeepZ
//! relaxation, which introduces one fresh noise symbol per imprecisely
//! handled neuron.
//!
//! DeepZ sits strictly between the Box and DeepPoly baselines in the
//! published verifier comparisons this paper builds on, which is exactly
//! how it slots into this reproduction's method ladder
//! (`Method::ZonotopeIndividual`).

mod analyze;
mod zonotope;

pub use analyze::ZonotopeAnalysis;
pub use zonotope::Zonotope;
