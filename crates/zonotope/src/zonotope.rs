use raven_interval::Interval;
use raven_nn::ActKind;
use raven_tensor::Matrix;

/// A zonotope `{ center + Σ_j η_j · gen_j : η ∈ [-1, 1]^g }`.
///
/// Generators are stored generator-major: `generators[j]` is the `j`-th
/// noise symbol's coefficient vector across all tracked neurons.
///
/// # Examples
///
/// ```
/// use raven_interval::Interval;
/// use raven_zonotope::Zonotope;
///
/// let z = Zonotope::from_box(&[Interval::new(0.0, 1.0), Interval::point(2.0)]);
/// assert_eq!(z.dim(), 2);
/// assert_eq!(z.num_symbols(), 1); // the point coordinate needs no symbol
/// assert_eq!(z.interval(0), Interval::new(0.0, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zonotope {
    center: Vec<f64>,
    generators: Vec<Vec<f64>>,
}

impl Zonotope {
    /// The degenerate zonotope containing exactly `center`.
    pub fn point(center: Vec<f64>) -> Self {
        Self {
            center,
            generators: Vec::new(),
        }
    }

    /// The axis-aligned box as a zonotope, one noise symbol per coordinate
    /// with nonzero width.
    ///
    /// # Panics
    ///
    /// Panics when any interval is empty or unbounded.
    pub fn from_box(input: &[Interval]) -> Self {
        let mut center = Vec::with_capacity(input.len());
        let mut generators = Vec::new();
        for (i, iv) in input.iter().enumerate() {
            assert!(
                !iv.is_empty() && iv.lo().is_finite() && iv.hi().is_finite(),
                "zonotope: input intervals must be finite and non-empty"
            );
            center.push(iv.mid());
            let r = 0.5 * iv.width();
            if r > 0.0 {
                let mut g = vec![0.0; input.len()];
                g[i] = r;
                generators.push(g);
            }
        }
        Self { center, generators }
    }

    /// Number of tracked neurons.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Number of noise symbols.
    pub fn num_symbols(&self) -> usize {
        self.generators.len()
    }

    /// Concrete interval of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn interval(&self, i: usize) -> Interval {
        let r: f64 = self.generators.iter().map(|g| g[i].abs()).sum();
        Interval::new(self.center[i] - r, self.center[i] + r)
    }

    /// Concrete bounds for every neuron.
    pub fn to_box(&self) -> Vec<Interval> {
        (0..self.dim()).map(|i| self.interval(i)).collect()
    }

    /// Exact affine image `W·self + b`.
    ///
    /// # Panics
    ///
    /// Panics when `weight.cols() != self.dim()` or bias width mismatches.
    pub fn affine(&self, weight: &Matrix, bias: &[f64]) -> Self {
        assert_eq!(weight.cols(), self.dim(), "zonotope affine: width mismatch");
        assert_eq!(weight.rows(), bias.len(), "zonotope affine: bias mismatch");
        let mut center = weight.matvec(&self.center);
        for (c, b) in center.iter_mut().zip(bias) {
            *c += b;
        }
        let generators = self.generators.iter().map(|g| weight.matvec(g)).collect();
        Self { center, generators }
    }

    /// DeepZ activation transformer: per neuron, a sound affine relaxation
    /// `act(x) ∈ λ·x + [μ_lo, μ_hi]`, realized by scaling the neuron's
    /// generator row by `λ`, recentring, and adding one fresh noise symbol
    /// of radius `(μ_hi − μ_lo)/2` for every imprecise neuron.
    pub fn activation(&self, kind: ActKind) -> Self {
        let n = self.dim();
        let mut lambda = vec![0.0; n];
        let mut offset = vec![0.0; n];
        let mut fresh = vec![0.0; n];
        for i in 0..n {
            let iv = self.interval(i);
            let (l, u) = (iv.lo(), iv.hi());
            let (lam, mu_lo, mu_hi) = deepz_relaxation(kind, l, u);
            lambda[i] = lam;
            offset[i] = 0.5 * (mu_lo + mu_hi);
            fresh[i] = 0.5 * (mu_hi - mu_lo);
        }
        let center: Vec<f64> = self
            .center
            .iter()
            .enumerate()
            .map(|(i, &c)| lambda[i] * c + offset[i])
            .collect();
        let mut generators: Vec<Vec<f64>> = self
            .generators
            .iter()
            .map(|g| g.iter().enumerate().map(|(i, &v)| lambda[i] * v).collect())
            .collect();
        for (i, &r) in fresh.iter().enumerate() {
            if r > 0.0 {
                let mut g = vec![0.0; n];
                g[i] = r;
                generators.push(g);
            }
        }
        Self { center, generators }
    }
}

/// Computes the DeepZ per-neuron relaxation `(λ, μ_lo, μ_hi)` such that
/// `act(x) ∈ λ·x + [μ_lo, μ_hi]` for all `x ∈ [l, u]`.
fn deepz_relaxation(kind: ActKind, l: f64, u: f64) -> (f64, f64, f64) {
    debug_assert!(l <= u, "inverted bounds");
    if u - l < 1e-12 {
        return (
            0.0,
            kind.eval(l).min(kind.eval(u)),
            kind.eval(l).max(kind.eval(u)),
        );
    }
    let lam = match kind {
        // Piecewise-linear: chord slope (exact on stable segments).
        ActKind::Relu | ActKind::LeakyRelu | ActKind::HardTanh => {
            (kind.eval(u) - kind.eval(l)) / (u - l)
        }
        // Smooth S-shaped: minimum endpoint derivative (the derivative
        // exceeds it throughout, making g = f − λx monotone).
        ActKind::Sigmoid | ActKind::Tanh => kind.deriv(l).min(kind.deriv(u)),
    };
    // Offset range of g(x) = f(x) − λ·x over [l, u]: evaluated at the
    // endpoints plus any interior kinks (piecewise-linear kinds); for the
    // smooth kinds g is monotone, so the endpoints suffice.
    let mut candidates = vec![l, u];
    let kinks: &[f64] = match kind {
        ActKind::Relu | ActKind::LeakyRelu => &[0.0],
        ActKind::HardTanh => &[-1.0, 1.0],
        ActKind::Sigmoid | ActKind::Tanh => &[],
    };
    for &k in kinks {
        if l < k && k < u {
            candidates.push(k);
        }
    }
    let mut mu_lo = f64::INFINITY;
    let mut mu_hi = f64::NEG_INFINITY;
    for &x in &candidates {
        let g = kind.eval(x) - lam * x;
        mu_lo = mu_lo.min(g);
        mu_hi = mu_hi.max(g);
    }
    (lam, mu_lo, mu_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains_grid(kind: ActKind, l: f64, u: f64) {
        let (lam, mu_lo, mu_hi) = deepz_relaxation(kind, l, u);
        for i in 0..=300 {
            let x = l + (u - l) * i as f64 / 300.0;
            let f = kind.eval(x);
            assert!(
                lam * x + mu_lo <= f + 1e-9 && f <= lam * x + mu_hi + 1e-9,
                "{kind} relaxation misses f({x}) = {f} on [{l}, {u}]"
            );
        }
    }

    #[test]
    fn deepz_relaxation_sound_for_all_kinds() {
        for kind in ActKind::all() {
            contains_grid(kind, -2.0, 3.0);
            contains_grid(kind, 0.5, 2.5);
            contains_grid(kind, -3.0, -0.5);
            contains_grid(kind, -0.7, 0.4);
            contains_grid(kind, -1.5, 1.5);
        }
    }

    #[test]
    fn stable_relu_is_exact() {
        let (lam, lo, hi) = deepz_relaxation(ActKind::Relu, 1.0, 2.0);
        assert_eq!((lam, lo, hi), (1.0, 0.0, 0.0));
        let (lam, lo, hi) = deepz_relaxation(ActKind::Relu, -2.0, -1.0);
        assert_eq!((lam, lo, hi), (0.0, 0.0, 0.0));
    }

    #[test]
    fn from_box_roundtrips_to_box() {
        let input = [Interval::new(-1.0, 3.0), Interval::point(0.5)];
        let z = Zonotope::from_box(&input);
        let back = z.to_box();
        assert_eq!(back[0], input[0]);
        assert_eq!(back[1], input[1]);
    }

    #[test]
    fn affine_is_exact_on_samples() {
        let z = Zonotope::from_box(&[Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)]);
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[3.0, -3.0]]);
        let b = [0.1, -0.2, 0.0];
        let za = z.affine(&w, &b);
        // Corner images stay inside the affine zonotope.
        for &x0 in &[0.0, 0.5, 1.0] {
            for &x1 in &[-1.0, 0.0, 1.0] {
                let mut y = w.matvec(&[x0, x1]);
                for (yi, bi) in y.iter_mut().zip(&b) {
                    *yi += bi;
                }
                for (i, &v) in y.iter().enumerate() {
                    assert!(za.interval(i).contains(v), "coord {i}: {v}");
                }
            }
        }
    }

    #[test]
    fn affine_preserves_correlations_unlike_intervals() {
        // y = x − x must be exactly 0 in a zonotope.
        let z = Zonotope::from_box(&[Interval::new(-1.0, 1.0)]);
        let w = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let z2 = z.affine(&w, &[0.0, 0.0]);
        let diff = z2.affine(&Matrix::from_rows(&[&[1.0, -1.0]]), &[0.0]);
        assert_eq!(diff.interval(0), Interval::point(0.0));
    }

    #[test]
    fn activation_soundness_on_zonotope_samples() {
        let z = Zonotope::from_box(&[Interval::new(-1.0, 2.0), Interval::new(-2.0, 0.5)]);
        for kind in ActKind::all() {
            let za = z.activation(kind);
            for s in 0..50 {
                let eta = ((s * 13 + 7) % 21) as f64 / 10.0 - 1.0;
                let eta2 = ((s * 29 + 3) % 21) as f64 / 10.0 - 1.0;
                // Concrete point of the input zonotope.
                let x = [z.center[0] + 1.5 * eta, z.center[1] + 1.25 * eta2];
                let y = [kind.eval(x[0]), kind.eval(x[1])];
                for (i, &v) in y.iter().enumerate() {
                    assert!(
                        za.interval(i).lo() - 1e-9 <= v && v <= za.interval(i).hi() + 1e-9,
                        "{kind}: coord {i} value {v} outside {:?}",
                        za.interval(i)
                    );
                }
            }
        }
    }
}
