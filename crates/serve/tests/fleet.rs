//! Fleet tests: a real `raven_serve` process with a fleet listener plus
//! real `raven_worker` processes, including Byzantine ones.
//!
//! The acceptance property pinned here: **a chaos Byzantine worker never
//! changes the verdict bytes served to clients.** Every tampered result
//! is rejected by in-process certificate replay, and the job completes
//! via retry or local fallback with a `result` object byte-identical to a
//! fleet-less run. Also covered: quarantine + probation rejoin,
//! `--client-timeout-ms`, and `--strict-certificates` recompute.
//!
//! Child binaries come from `CARGO_BIN_EXE_raven_serve` and
//! `CARGO_BIN_EXE_raven_worker`; every child is SIGKILLed on drop so a
//! failing assertion cannot leak processes.
#![cfg(unix)]

use raven_json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// A spawned server process with an HTTP and (optionally) a fleet
/// listener, SIGKILLed on drop.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
    fleet_addr: Option<SocketAddr>,
}

impl ServerProc {
    fn spawn(extra_args: &[&str], envs: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_raven_serve"));
        cmd.arg("--models-dir")
            .arg(repo_path("models"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn raven_serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        let mut fleet_addr = None;
        for line in &mut lines {
            let line = line.expect("read child stderr");
            if let Some(rest) = line.strip_prefix("raven-serve fleet listening on ") {
                fleet_addr = Some(rest.trim().parse().expect("parse fleet addr"));
            }
            if let Some(rest) = line.strip_prefix("raven-serve listening on http://") {
                addr = Some(rest.trim().parse().expect("parse listen addr"));
                break;
            }
        }
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc {
            child,
            addr: addr.expect("server reached the listening state"),
            fleet_addr,
        }
    }

    fn fleet_addr(&self) -> SocketAddr {
        self.fleet_addr.expect("server has a fleet listener")
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A spawned worker process, SIGKILLed on drop.
struct WorkerProc {
    child: Child,
}

impl WorkerProc {
    fn spawn(fleet_addr: SocketAddr, name: &str, envs: &[(&str, &str)]) -> WorkerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_raven_worker"));
        cmd.arg("--connect")
            .arg(fleet_addr.to_string())
            .arg("--models-dir")
            .arg(repo_path("models"))
            .arg("--name")
            .arg(name)
            .arg("--reconnect-ms")
            .arg("100")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn raven_worker");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        for line in &mut lines {
            let line = line.expect("read worker stderr");
            if line.starts_with(&format!("raven-worker {name} connected to")) {
                break;
            }
        }
        std::thread::spawn(move || for _ in lines {});
        WorkerProc { child }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request_with(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let raw_body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, raw_body)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, raw) = request_with(addr, method, path, body);
    let parsed = Json::parse(&raw).unwrap_or_else(|e| panic!("unparseable body {raw:?}: {e}"));
    (status, parsed)
}

fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, text) = request_with(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

fn healthz(addr: SocketAddr) -> Json {
    let (status, health) = request(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200, "{health}");
    health
}

/// The healthz ledger entry for one worker name.
fn worker_stats(addr: SocketAddr, name: &str) -> Option<Json> {
    healthz(addr)
        .get("fleet")?
        .get("workers")?
        .as_array()?
        .iter()
        .find(|w| w.get("name").and_then(Json::as_str) == Some(name))
        .cloned()
}

/// Polls until the named worker appears connected in `/v1/healthz`.
fn wait_worker_connected(addr: SocketAddr, name: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let connected = worker_stats(addr, name)
            .and_then(|w| w.get("connected").and_then(Json::as_bool))
            .unwrap_or(false);
        if connected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "worker {name} never registered with the fleet"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn demo_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let text = std::fs::read_to_string(repo_path("models/demo_batch.txt")).expect("batch file");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse().unwrap());
        inputs.push(parts.map(|t| t.parse().unwrap()).collect());
    }
    (inputs, labels)
}

/// A fleet-eligible UAP query. Method `raven` is the certificate-emitting
/// path: it records analysis certificates even when every input is
/// individually verified at the analysis tier (the fast case these tests
/// ride), whereas `io-lp` only emits a certificate once the LP solves.
fn uap_body(eps: f64, extra: &[(&str, Json)]) -> String {
    let (inputs, labels) = demo_batch();
    let mut fields = vec![
        ("model".to_string(), Json::from("demo")),
        ("eps".to_string(), Json::from(eps)),
        ("method".to_string(), Json::from("raven")),
        (
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|x| Json::num_array(x)).collect()),
        ),
        (
            "labels".to_string(),
            Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

/// The `result` object from one synchronous UAP query — the bytes whose
/// invariance under Byzantine workers this suite pins.
fn uap_result(addr: SocketAddr, body: &str) -> (Json, String) {
    let (status, reply) = request(addr, "POST", "/v1/verify/uap", body);
    assert_eq!(status, 200, "{reply}");
    let result = reply.get("result").expect("envelope has result").clone();
    (reply, result.to_string())
}

/// A fleet-less run of `body`: the reference verdict bytes.
fn baseline_result(body: &str) -> String {
    let server = ServerProc::spawn(&["--workers", "1"], &[]);
    let (_, result) = uap_result(server.addr, body);
    result
}

#[test]
fn healthy_worker_solves_remotely_with_identical_verdict_bytes() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    let server = ServerProc::spawn(&["--workers", "1", "--fleet-addr", "127.0.0.1:0"], &[]);
    let _worker = WorkerProc::spawn(server.fleet_addr(), "honest-1", &[]);
    wait_worker_connected(server.addr, "honest-1");

    let (reply, result) = uap_result(server.addr, &body);
    assert_eq!(result, baseline, "remote verdict differs from local");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(false));
    assert!(metric(server.addr, "raven_serve_fleet_remote_solves_total") >= 1.0);
    assert_eq!(
        metric(server.addr, "raven_serve_fleet_local_fallbacks_total"),
        0.0
    );
    let stats = worker_stats(server.addr, "honest-1").unwrap();
    assert!(stats.get("accepted").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(stats.get("rejected").and_then(Json::as_f64), Some(0.0));

    // A certificate request round-trips through the fleet too, and the
    // served certificate is exactly the one the gate replayed.
    let cert_body = uap_body(0.03, &[("certificate", Json::from(true))]);
    let (status, reply) = request(server.addr, "POST", "/v1/verify/uap", &cert_body);
    assert_eq!(status, 200, "{reply}");
    assert!(
        !matches!(reply.get("certificate"), None | Some(Json::Null)),
        "certificate request must serve a certificate"
    );
    assert_eq!(
        reply.get("result").unwrap().to_string(),
        baseline,
        "certificate request changed the verdict bytes"
    );
}

/// The tentpole acceptance test: Byzantine workers that tamper with duals
/// or flip verdicts are rejected by certificate replay, the job completes
/// anyway (local fallback), the served bytes are unchanged, and the
/// worker lands in quarantine.
#[test]
fn byzantine_worker_never_changes_served_verdict_bytes() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    for (mode, name) in [
        ("corrupt-duals", "liar-duals"),
        ("flip-verdict", "liar-flip"),
    ] {
        let server = ServerProc::spawn(&["--workers", "1", "--fleet-addr", "127.0.0.1:0"], &[]);
        let _worker = WorkerProc::spawn(server.fleet_addr(), name, &[("RAVEN_WORKER_CHAOS", mode)]);
        wait_worker_connected(server.addr, name);

        let (_, result) = uap_result(server.addr, &body);
        assert_eq!(
            result, baseline,
            "{mode}: Byzantine worker changed served verdict bytes"
        );
        // Every tampered result was rejected; none was accepted.
        assert!(
            metric(server.addr, "raven_serve_fleet_rejected_total") >= 1.0,
            "{mode}: gate never rejected"
        );
        assert_eq!(
            metric(server.addr, "raven_serve_fleet_accepted_total"),
            0.0,
            "{mode}: gate accepted a tampered result"
        );
        assert_eq!(
            metric(server.addr, "raven_serve_fleet_remote_solves_total"),
            0.0
        );
        assert!(metric(server.addr, "raven_serve_fleet_local_fallbacks_total") >= 1.0);
        // Two strikes (default) quarantine the worker.
        assert!(
            metric(server.addr, "raven_serve_fleet_quarantined_workers_total") >= 1.0,
            "{mode}: worker was not quarantined"
        );
        let stats = worker_stats(server.addr, name).unwrap();
        assert_eq!(stats.get("quarantined").and_then(Json::as_bool), Some(true));
        assert!(stats.get("rejected").and_then(Json::as_f64).unwrap() >= 2.0);
    }
}

#[test]
fn stalls_and_mid_frame_disconnects_fall_back_to_local() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    // Stall: the worker accepts the job and never answers. A short fleet
    // timeout keeps the test fast; the job still completes locally.
    let server = ServerProc::spawn(
        &[
            "--workers",
            "1",
            "--fleet-addr",
            "127.0.0.1:0",
            "--fleet-timeout-ms",
            "500",
        ],
        &[],
    );
    let _stall = WorkerProc::spawn(
        server.fleet_addr(),
        "staller",
        &[("RAVEN_WORKER_CHAOS", "stall")],
    );
    wait_worker_connected(server.addr, "staller");
    let (_, result) = uap_result(server.addr, &body);
    assert_eq!(result, baseline, "stall changed served verdict bytes");
    assert!(metric(server.addr, "raven_serve_fleet_timeouts_total") >= 1.0);
    assert!(metric(server.addr, "raven_serve_fleet_local_fallbacks_total") >= 1.0);
    drop(server);

    // Mid-frame disconnect: half a result frame, then the stream dies.
    let server = ServerProc::spawn(&["--workers", "1", "--fleet-addr", "127.0.0.1:0"], &[]);
    let _cutter = WorkerProc::spawn(
        server.fleet_addr(),
        "cutter",
        &[("RAVEN_WORKER_CHAOS", "disconnect")],
    );
    wait_worker_connected(server.addr, "cutter");
    let (_, result) = uap_result(server.addr, &body);
    assert_eq!(result, baseline, "disconnect changed served verdict bytes");
    assert!(metric(server.addr, "raven_serve_fleet_disconnects_total") >= 1.0);
    assert!(metric(server.addr, "raven_serve_fleet_local_fallbacks_total") >= 1.0);
    // Timeouts and disconnects are mishaps, not dishonesty: no quarantine.
    assert_eq!(
        metric(server.addr, "raven_serve_fleet_quarantined_workers_total"),
        0.0
    );
}

/// Satellite: a quarantined worker rejoins after `--worker-probation-ms`
/// expires and serves again after one accepted certificate.
#[test]
fn quarantined_worker_rejoins_after_probation() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    let server = ServerProc::spawn(
        &[
            "--workers",
            "1",
            "--fleet-addr",
            "127.0.0.1:0",
            "--worker-probation-ms",
            "1500",
        ],
        &[],
    );
    // Lies exactly twice, then runs out of chaos budget and turns honest.
    let _worker = WorkerProc::spawn(
        server.fleet_addr(),
        "redeemed",
        &[("RAVEN_WORKER_CHAOS", "flip-verdict:2")],
    );
    wait_worker_connected(server.addr, "redeemed");

    // Query 1: two rejected attempts → quarantine → local fallback.
    let (_, result) = uap_result(server.addr, &body);
    assert_eq!(result, baseline);
    let stats = worker_stats(server.addr, "redeemed").unwrap();
    assert_eq!(stats.get("quarantined").and_then(Json::as_bool), Some(true));
    assert!(metric(server.addr, "raven_serve_fleet_local_fallbacks_total") >= 1.0);

    // While quarantined, jobs don't touch the worker at all.
    let dispatches_during = metric(server.addr, "raven_serve_fleet_dispatches_total");
    let (_, result) = uap_result(server.addr, &uap_body(0.031, &[]));
    assert!(!result.is_empty());
    assert_eq!(
        metric(server.addr, "raven_serve_fleet_dispatches_total"),
        dispatches_during
    );

    // After probation the worker is claimable again; now honest, its
    // certificate is accepted, its strikes clear, and it serves remotely.
    std::thread::sleep(Duration::from_millis(1600));
    let (_, result) = uap_result(server.addr, &uap_body(0.032, &[]));
    assert!(!result.is_empty());
    let stats = worker_stats(server.addr, "redeemed").unwrap();
    assert_eq!(
        stats.get("quarantined").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(stats.get("strikes").and_then(Json::as_f64), Some(0.0));
    assert!(stats.get("accepted").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(metric(server.addr, "raven_serve_fleet_remote_solves_total") >= 1.0);
}

/// Satellite: `--client-timeout-ms` bounds how long a stalled client can
/// pin a connection thread (the old hard-coded value was 10 s).
#[test]
fn slow_client_is_answered_408_within_the_configured_timeout() {
    let server = ServerProc::spawn(&["--client-timeout-ms", "300"], &[]);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // Send a partial head and stall: never finish the request.
    stream
        .write_all(b"POST /v1/verify/uap HTTP/1.1\r\n")
        .expect("partial head");
    let t0 = Instant::now();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let elapsed = t0.elapsed();
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "stalled client should get 408, got {text:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout took {elapsed:?}, configured 300ms"
    );
}

/// Tentpole: `--fleet-shards N` splits the input region across workers;
/// the merged verdict bytes are identical to a fleet-less run and to a
/// whole-job remote run, and the shard counters account for the split.
#[test]
fn sharded_dispatch_preserves_verdict_bytes() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    let server = ServerProc::spawn(
        &[
            "--workers",
            "1",
            "--fleet-addr",
            "127.0.0.1:0",
            "--fleet-shards",
            "3",
        ],
        &[],
    );
    let _w1 = WorkerProc::spawn(server.fleet_addr(), "shard-w1", &[]);
    let _w2 = WorkerProc::spawn(server.fleet_addr(), "shard-w2", &[]);
    wait_worker_connected(server.addr, "shard-w1");
    wait_worker_connected(server.addr, "shard-w2");

    let (reply, result) = uap_result(server.addr, &body);
    assert_eq!(result, baseline, "sharded verdict differs from local");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(false));
    assert!(metric(server.addr, "raven_serve_fleet_shard_dispatches_total") >= 2.0);
    assert!(metric(server.addr, "raven_serve_fleet_shard_remote_total") >= 1.0);
    assert!(metric(server.addr, "raven_serve_fleet_shard_merges_total") >= 1.0);
    // Shard accounting also reaches healthz.
    let health = healthz(server.addr);
    let merges = health
        .get("fleet")
        .and_then(|f| f.get("shard_merges"))
        .and_then(Json::as_f64)
        .expect("fleet.shard_merges in healthz");
    assert!(merges >= 1.0);
}

/// Tentpole acceptance: each Byzantine chaos mode afflicting exactly one
/// shard's worker is contained to that shard — the job completes with
/// verdict bytes identical to a fleet-less run, the other shard's
/// accepted result is kept, and the failure is visible in the metrics.
#[test]
fn byzantine_shard_worker_never_changes_merged_verdict_bytes() {
    let body = uap_body(0.03, &[]);
    let baseline = baseline_result(&body);

    for (mode, name, failure_metric) in [
        (
            "corrupt-duals",
            "shard-liar-duals",
            "raven_serve_fleet_rejected_total",
        ),
        (
            "flip-verdict",
            "shard-liar-flip",
            "raven_serve_fleet_rejected_total",
        ),
        ("stall", "shard-staller", "raven_serve_fleet_timeouts_total"),
        (
            "disconnect",
            "shard-cutter",
            "raven_serve_fleet_disconnects_total",
        ),
    ] {
        let server = ServerProc::spawn(
            &[
                "--workers",
                "1",
                "--fleet-addr",
                "127.0.0.1:0",
                "--fleet-shards",
                "2",
                "--fleet-timeout-ms",
                "500",
            ],
            &[],
        );
        // Two free workers, two shards: each shard claims a distinct
        // worker, so exactly one shard meets the Byzantine one.
        let _honest = WorkerProc::spawn(server.fleet_addr(), "shard-honest", &[]);
        let _liar = WorkerProc::spawn(server.fleet_addr(), name, &[("RAVEN_WORKER_CHAOS", mode)]);
        wait_worker_connected(server.addr, "shard-honest");
        wait_worker_connected(server.addr, name);

        let (_, result) = uap_result(server.addr, &body);
        assert_eq!(
            result, baseline,
            "{mode}: Byzantine shard worker changed merged verdict bytes"
        );
        assert!(
            metric(server.addr, failure_metric) >= 1.0,
            "{mode}: shard failure left no trace in {failure_metric}"
        );
        assert!(
            metric(server.addr, "raven_serve_fleet_shard_merges_total") >= 1.0,
            "{mode}: job did not complete through the merge path"
        );
    }
}

/// Tentpole: a sharded certificate request serves a merged certificate
/// that replays through `raven_check`, and a tampered merge claiming a
/// tighter bound than the shard minima imply is rejected.
#[test]
fn merged_certificate_replays_and_tampered_merge_is_rejected() {
    let body = uap_body(0.03, &[("certificate", Json::from(true))]);
    let server = ServerProc::spawn(
        &[
            "--workers",
            "1",
            "--fleet-addr",
            "127.0.0.1:0",
            "--fleet-shards",
            "2",
        ],
        &[],
    );
    let _worker = WorkerProc::spawn(server.fleet_addr(), "shard-prover", &[]);
    wait_worker_connected(server.addr, "shard-prover");

    let (status, reply) = request(server.addr, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200, "{reply}");
    let cert = reply.get("certificate").expect("merged certificate served");
    assert!(
        raven_check::MergedCertificate::is_merged(cert),
        "sharded run must serve the merged certificate kind"
    );
    raven_check::check_certificate_json(cert).expect("merged certificate replays");

    // Tamper: weaken shard 0's claim (consistently with its own proof)
    // while leaving the merged numbers untouched — the merge now claims a
    // tighter bound than the shard minima imply.
    let mut merged = raven_check::MergedCertificate::from_json(cert).unwrap();
    let k = merged.k;
    assert!(
        merged.merged_individually_verified == k,
        "test batch should fully verify"
    );
    merged.claims[0].individually_verified = k - 1;
    merged.claims[0].worst_case_hamming += 1.0;
    let err = raven_check::check_certificate_json(&merged.to_json()).unwrap_err();
    assert!(
        matches!(err, raven_check::CheckError::Reject(_)),
        "tampered merge must be rejected, got {err}"
    );
}

/// Tentpole: saturation-aware admission. An idle pool keeps jobs local
/// even with healthy workers connected; a saturated pool dispatches.
#[test]
fn idle_pool_keeps_jobs_local_and_saturated_pool_dispatches() {
    let body = uap_body(0.03, &[]);

    // Pool of 4, one job at a time: never saturated, so the fleet is
    // never consulted despite a connected worker.
    let server = ServerProc::spawn(&["--workers", "4", "--fleet-addr", "127.0.0.1:0"], &[]);
    let _worker = WorkerProc::spawn(server.fleet_addr(), "idle-w", &[]);
    wait_worker_connected(server.addr, "idle-w");
    let (_, result) = uap_result(server.addr, &body);
    assert!(!result.is_empty());
    assert_eq!(
        metric(server.addr, "raven_serve_fleet_dispatches_total"),
        0.0,
        "idle pool must not dispatch remotely"
    );
    assert!(metric(server.addr, "raven_serve_fleet_kept_local_total") >= 1.0);
    drop(server);

    // Pool of 1: the job itself occupies the only local worker, so the
    // pool is saturated from inside any job and dispatch goes remote.
    let server = ServerProc::spawn(&["--workers", "1", "--fleet-addr", "127.0.0.1:0"], &[]);
    let _worker = WorkerProc::spawn(server.fleet_addr(), "busy-w", &[]);
    wait_worker_connected(server.addr, "busy-w");
    let (_, result) = uap_result(server.addr, &body);
    assert!(!result.is_empty());
    assert!(metric(server.addr, "raven_serve_fleet_dispatches_total") >= 1.0);
    assert_eq!(
        metric(server.addr, "raven_serve_fleet_kept_local_total"),
        0.0
    );

    // `--fleet-when-saturated 0` restores unconditional dispatch.
    let server = ServerProc::spawn(
        &[
            "--workers",
            "4",
            "--fleet-addr",
            "127.0.0.1:0",
            "--fleet-when-saturated",
            "0",
        ],
        &[],
    );
    let _worker = WorkerProc::spawn(server.fleet_addr(), "eager-w", &[]);
    wait_worker_connected(server.addr, "eager-w");
    let (_, result) = uap_result(server.addr, &body);
    assert!(!result.is_empty());
    assert!(metric(server.addr, "raven_serve_fleet_dispatches_total") >= 1.0);
}

/// Satellite: under `--strict-certificates` a spot-check failure triggers
/// a local recompute instead of serving the unverifiable response.
#[test]
fn strict_certificates_recomputes_on_spot_check_failure() {
    let body = uap_body(0.03, &[("certificate", Json::from(true))]);
    let server = ServerProc::spawn(
        &["--workers", "1", "--strict-certificates"],
        // Chaos tampers the first emitted certificate *before* the spot
        // check sees it — simulating an emitter bug.
        &[("RAVEN_SERVE_CHAOS_TAMPER_CERTS", "1")],
    );
    let (status, reply) = request(server.addr, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200, "{reply}");
    // The recompute's (untampered) certificate is served.
    assert!(!matches!(reply.get("certificate"), None | Some(Json::Null)));
    assert!(metric(server.addr, "raven_serve_spot_check_failures_total") >= 1.0);
    assert!(metric(server.addr, "raven_serve_strict_recomputes_total") >= 1.0);
    let health = healthz(server.addr);
    let failures = health
        .get("stats")
        .and_then(|s| s.get("spot_check_failures"))
        .and_then(Json::as_f64)
        .expect("spot_check_failures stat");
    assert!(failures >= 1.0);
}
