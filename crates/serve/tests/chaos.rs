//! Chaos tests: the server under injected faults.
//!
//! Fault injection state (solver pivot stalls in `raven-lp`, job panics in
//! `raven-serve`) is process-global, so every test here serializes behind
//! `CHAOS_LOCK` and clears whatever it armed — including on the error
//! path, via `ChaosGuard`.
//!
//! Covered failure modes:
//! * a stalled solver — deadline-bounded requests still answer in time
//!   with a sound degraded verdict (never a 500);
//! * mid-job panics on worker threads — the pool absorbs them (500 for
//!   the poisoned job, workers stay alive for the next one);
//! * slow / half-open clients — connection threads don't wedge the
//!   accept loop or the worker pool;
//! * degraded verdicts are never cached.

use raven_json::Json;
use raven_serve::registry::ModelRegistry;
use raven_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Clears all injected faults on drop, so a failing assertion cannot leak
/// chaos state into the next test.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        raven_lp::chaos::clear();
        raven_serve::chaos::clear();
    }
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn start_server(config: ServerConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load_dir(&repo_path("models")).expect("load models dir");
    let server = Server::bind(&config, registry).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, shutdown, runner)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let json_body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let parsed =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body {json_body:?}: {e}"));
    (status, parsed)
}

fn demo_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let text = std::fs::read_to_string(repo_path("models/demo_batch.txt")).expect("batch file");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse().unwrap());
        inputs.push(parts.map(|t| t.parse().unwrap()).collect());
    }
    (inputs, labels)
}

fn uap_body(eps: f64, method: &str, extra: &[(&str, Json)]) -> String {
    let (inputs, labels) = demo_batch();
    let mut fields = vec![
        ("model".to_string(), Json::from("demo")),
        ("eps".to_string(), Json::from(eps)),
        ("method".to_string(), Json::from(method)),
        (
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|x| Json::num_array(x)).collect()),
        ),
        (
            "labels".to_string(),
            Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

/// ε at which the demo model's spec MILP runs for minutes when unbounded —
/// exactly the query a deadline exists for.
const HEAVY_EPS: f64 = 0.12;

#[test]
fn stalled_solver_answers_in_time_with_sound_degraded_verdict() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig {
        cache_capacity: 0,
        ..ServerConfig::default()
    });

    // Every simplex pivot sleeps 2ms: the stall the degradation ladder
    // exists for. With a 300ms deadline the solve must be cut short.
    raven_lp::chaos::set_pivot_stall_micros(2_000);
    let body = uap_body(HEAVY_EPS, "raven", &[("deadline_ms", Json::from(300usize))]);
    let start = Instant::now();
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
    let elapsed = start.elapsed();
    raven_lp::chaos::clear();

    // In time (deadline + analysis phases + grace), 200, never a 500.
    assert_eq!(status, 200, "{response}");
    assert!(
        elapsed < Duration::from_secs(30),
        "stalled solve answered after {elapsed:?} despite a 300ms deadline"
    );
    let result = response.get("result").expect("result field");
    assert_eq!(result.get("degraded").and_then(Json::as_bool), Some(true));
    let tier = result.get("tier").and_then(Json::as_str).unwrap();
    assert!(
        ["milp", "lp", "analysis"].contains(&tier),
        "unknown tier {tier:?}"
    );
    // Sound: the bound can be weak but must stay a valid accuracy bound.
    let acc = result
        .get("worst_case_accuracy")
        .and_then(Json::as_f64)
        .unwrap();
    assert!((0.0..=1.0).contains(&acc));
    // The envelope names where the time went.
    assert!(response.get("tier_millis").is_some());

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn injected_job_panics_do_not_lose_workers() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig {
        workers: 1, // a lost worker would deadlock the whole server
        cache_capacity: 0,
        ..ServerConfig::default()
    });
    let body = uap_body(0.01, "box", &[]);

    raven_serve::chaos::set_panic_next_jobs(2);
    for _ in 0..2 {
        let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
        assert_eq!(status, 500, "poisoned job must fail loudly: {response}");
        let error = response.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains("panic"), "error names the panic: {error}");
    }
    raven_serve::chaos::clear();

    // The single worker survived both panics and still serves jobs.
    for _ in 0..3 {
        let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
        assert_eq!(status, 200, "worker lost after panics: {response}");
        assert!(response.get("result").is_some());
    }
    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let queue = health.get("queue").expect("queue block");
    assert_eq!(queue.get("failed").and_then(Json::as_f64), Some(2.0));
    assert!(queue.get("completed").and_then(Json::as_f64).unwrap() >= 3.0);
    assert_eq!(queue.get("running").and_then(Json::as_usize), Some(0));

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn slow_and_half_open_clients_keep_the_server_responsive() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig::default());

    // A client that sends half a request line and then stalls...
    let mut slow = TcpStream::connect(addr).expect("connect slow client");
    slow.write_all(b"POST /v1/verify/uap HT")
        .expect("partial write");
    // ...one that connects and never sends anything...
    let idle = TcpStream::connect(addr).expect("connect idle client");
    // ...and one that sends headers promising a body that never comes,
    // then shuts down its write half (half-open).
    let mut half_open = TcpStream::connect(addr).expect("connect half-open client");
    half_open
        .write_all(b"POST /v1/verify/uap HTTP/1.1\r\nHost: raven\r\nContent-Length: 999\r\n\r\n")
        .expect("header write");
    half_open
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");

    // While all three sockets are held open, the server keeps answering.
    for _ in 0..3 {
        let start = Instant::now();
        let (status, _) = request(addr, "GET", "/v1/healthz", "");
        assert_eq!(status, 200);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "healthz slowed down by stuck clients"
        );
    }
    let body = uap_body(0.01, "box", &[]);
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200, "{response}");

    drop(slow);
    drop(idle);
    drop(half_open);
    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn degraded_verdicts_are_never_cached() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig::default());

    // Deadline-bounded heavy query: degrades, and must not enter the cache.
    let degraded_body = uap_body(HEAVY_EPS, "raven", &[("deadline_ms", Json::from(200usize))]);
    for round in 0..2 {
        let (status, response) = request(addr, "POST", "/v1/verify/uap", &degraded_body);
        assert_eq!(status, 200, "{response}");
        assert_eq!(
            response.get("cached").and_then(Json::as_bool),
            Some(false),
            "round {round}: degraded verdict served from cache: {response}"
        );
        let result = response.get("result").expect("result field");
        assert_eq!(result.get("degraded").and_then(Json::as_bool), Some(true));
    }
    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let entries = health
        .get("cache")
        .and_then(|c| c.get("entries"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(entries, 0, "degraded verdicts leaked into the cache");

    // An exact verdict for a cheap query still caches as before.
    let exact_body = uap_body(0.01, "deeppoly", &[]);
    let (_, first) = request(addr, "POST", "/v1/verify/uap", &exact_body);
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let (_, second) = request(addr, "POST", "/v1/verify/uap", &exact_body);
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn watchdog_cancels_wedged_jobs_and_names_itself() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig {
        cache_capacity: 0,
        default_deadline: Some(Duration::from_millis(200)),
        watchdog_grace: Duration::from_millis(300),
        ..ServerConfig::default()
    });

    // A wedged solver: the deadline blackout makes `Budget::exhausted`
    // ignore the deadline entirely (a stuck dependency that never observes
    // its budget), while still honoring the cancel flag — exactly the
    // failure the watchdog exists for. Without it this heavy query would
    // hold the worker for minutes.
    raven_lp::chaos::set_deadline_blackout(true);
    let body = uap_body(HEAVY_EPS, "raven", &[]);
    let start = Instant::now();
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
    let elapsed = start.elapsed();
    raven_lp::chaos::clear();

    // Killed shortly after deadline + grace, and the failure says by whom.
    assert_eq!(status, 500, "wedged job must fail loudly: {response}");
    let error = response.get("error").and_then(Json::as_str).unwrap();
    assert!(
        error.contains("watchdog"),
        "error names the watchdog: {error}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "watchdog too slow: wedged job held the worker for {elapsed:?}"
    );

    // The kill is visible on the health surface, and the worker survives.
    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let queue = health.get("queue").expect("queue block");
    assert!(queue.get("watchdog_kills").and_then(Json::as_f64).unwrap() >= 1.0);
    let ok_body = uap_body(0.01, "box", &[]);
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &ok_body);
    assert_eq!(status, 200, "worker lost after watchdog kill: {response}");

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn panicked_jobs_retry_transparently_when_enabled() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig {
        cache_capacity: 0,
        job_retries: 2,
        ..ServerConfig::default()
    });
    let body = uap_body(0.01, "box", &[]);

    // One injected panic, two retries budgeted: the client never sees it.
    raven_serve::chaos::set_panic_next_jobs(1);
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
    raven_serve::chaos::clear();
    assert_eq!(status, 200, "retry hid the panic: {response}");
    assert!(response.get("result").is_some());

    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let queue = health.get("queue").expect("queue block");
    assert!(queue.get("retried").and_then(Json::as_f64).unwrap() >= 1.0);
    // The job failed zero times from the client's point of view.
    assert_eq!(queue.get("failed").and_then(Json::as_f64), Some(0.0));

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn server_default_deadline_applies_without_request_field() {
    let _lock = CHAOS_LOCK.lock().unwrap();
    let _guard = ChaosGuard;
    let (addr, shutdown, runner) = start_server(ServerConfig {
        default_deadline: Some(Duration::from_millis(250)),
        cache_capacity: 0,
        ..ServerConfig::default()
    });

    let body = uap_body(HEAVY_EPS, "raven", &[]);
    let start = Instant::now();
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &body);
    let elapsed = start.elapsed();
    assert_eq!(status, 200, "{response}");
    assert!(
        elapsed < Duration::from_secs(30),
        "default deadline ignored: {elapsed:?}"
    );
    let result = response.get("result").expect("result field");
    assert_eq!(result.get("degraded").and_then(Json::as_bool), Some(true));

    shutdown.shutdown();
    runner.join().expect("server thread");
}
