//! Durability tests: a real `raven_serve` *process* with a write-ahead
//! journal, killed and restarted.
//!
//! These are the crash-safety acceptance tests:
//! * `kill -9` mid-flight loses no submitted job — queued and running
//!   jobs are re-enqueued on restart and complete; already-terminal
//!   verdicts are replayed byte-identically and served from the restored
//!   cache;
//! * a job that crashes the server twice is quarantined, not retried a
//!   third time;
//! * SIGTERM writes a clean-shutdown marker, and the next boot reports it
//!   (`raven_serve_journal_clean_shutdown 1`);
//! * the same `Idempotency-Key` never enqueues duplicate solver work —
//!   pinned via the LP-solve counter — within a process lifetime and
//!   across a restart.
//!
//! Each test owns a private journal directory and child process, so the
//! tests are parallel-safe. The child binary comes from
//! `CARGO_BIN_EXE_raven_serve` (built by `cargo test -p raven-serve`).
#![cfg(unix)]

use raven_json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// A fresh, test-private journal directory under the target dir (kept on
/// failure for post-mortem, recreated empty on the next run).
fn journal_dir(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("journal-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create journal dir");
    dir
}

/// A spawned server process, SIGKILLed on drop so a failing assertion
/// cannot leak a child holding the journal.
struct ServerProc {
    child: Child,
    addr: Option<SocketAddr>,
    fleet_addr: Option<SocketAddr>,
}

impl ServerProc {
    /// Spawns `raven_serve` on an ephemeral port with the given journal
    /// dir, extra flags, and environment; waits for the listening line on
    /// stderr. `addr` is `None` when the process exits before it starts
    /// listening (expected for crash-on-recovery chaos runs).
    fn spawn(journal: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_raven_serve"));
        cmd.arg("--models-dir")
            .arg(repo_path("models"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--journal-dir")
            .arg(journal)
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn raven_serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        let mut fleet_addr = None;
        for line in &mut lines {
            let line = line.expect("read child stderr");
            if let Some(rest) = line.strip_prefix("raven-serve fleet listening on ") {
                fleet_addr = Some(rest.trim().parse().expect("parse fleet addr"));
            }
            if let Some(rest) = line.strip_prefix("raven-serve listening on http://") {
                addr = Some(rest.trim().parse().expect("parse listen addr"));
                break;
            }
        }
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProc {
            child,
            addr,
            fleet_addr,
        }
    }

    fn addr(&self) -> SocketAddr {
        self.addr.expect("server reached the listening state")
    }

    fn fleet_addr(&self) -> SocketAddr {
        self.fleet_addr.expect("server has a fleet listener")
    }

    /// SIGKILL — the crash the journal exists for.
    fn kill_nine(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }

    /// SIGTERM — the graceful drain path.
    fn terminate(&mut self) {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGTERM: i32 = 15;
        assert_eq!(unsafe { kill(self.child.id() as i32, SIGTERM) }, 0);
    }

    /// Waits (bounded) for the child to exit on its own.
    fn wait_exit(&mut self, deadline: Duration) -> std::process::ExitStatus {
        let until = Instant::now() + deadline;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(Instant::now() < until, "child did not exit in {deadline:?}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One HTTP request with optional extra headers; returns `(status, body)`.
fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: raven\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let raw_body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, raw_body)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, raw) = request_with(addr, method, path, &[], body);
    let parsed = Json::parse(&raw).unwrap_or_else(|e| panic!("unparseable body {raw:?}: {e}"));
    (status, parsed)
}

/// Reads one counter/gauge sample from `/v1/metrics`.
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, text) = request_with(addr, "GET", "/v1/metrics", &[], "");
    assert_eq!(status, 200);
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

fn lp_solves(addr: SocketAddr) -> f64 {
    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    health
        .get("stats")
        .and_then(|s| s.get("lp_solves"))
        .and_then(Json::as_f64)
        .expect("lp_solves stat")
}

fn demo_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let text = std::fs::read_to_string(repo_path("models/demo_batch.txt")).expect("batch file");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse().unwrap());
        inputs.push(parts.map(|t| t.parse().unwrap()).collect());
    }
    (inputs, labels)
}

fn uap_body(eps: f64, method: &str, extra: &[(&str, Json)]) -> String {
    let (inputs, labels) = demo_batch();
    let mut fields = vec![
        ("model".to_string(), Json::from("demo")),
        ("eps".to_string(), Json::from(eps)),
        ("method".to_string(), Json::from(method)),
        (
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|x| Json::num_array(x)).collect()),
        ),
        (
            "labels".to_string(),
            Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

/// A monotonicity query — always solves at least one LP, which is what
/// makes it the right probe for "no duplicate solver work".
fn mono_body() -> String {
    let (inputs, _) = demo_batch();
    Json::obj([
        ("model", Json::from("demo")),
        ("eps", Json::from(0.05)),
        ("method", Json::from("raven")),
        ("center", Json::num_array(&inputs[0])),
        ("feature", Json::from(0usize)),
        ("tau", Json::from(0.0)),
    ])
    .to_string()
}

/// Adds the `property` discriminator `/v1/jobs` needs.
fn with_property(body: &str, property: &str) -> String {
    let mut json = match Json::parse(body).unwrap() {
        Json::Obj(fields) => fields,
        _ => unreachable!("bodies are objects"),
    };
    json.push(("property".to_string(), Json::from(property)));
    Json::Obj(json).to_string()
}

fn submit_job(addr: SocketAddr, body: &str) -> u64 {
    let (status, reply) = request(addr, "POST", "/v1/jobs", body);
    assert_eq!(status, 202, "{reply}");
    reply.get("job_id").and_then(Json::as_f64).unwrap() as u64
}

fn job_status(addr: SocketAddr, id: u64) -> (String, Json) {
    let (status, job) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{job}");
    let state = job
        .get("status")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    (state, job)
}

fn wait_for_status(addr: SocketAddr, id: u64, want: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (got, job) = job_status(addr, id);
        if got == want {
            return job;
        }
        assert_ne!(got, "failed", "job {id} failed: {job}");
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {got:?} waiting for {want:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn kill_nine_loses_no_jobs_and_replays_verdicts_byte_identically() {
    let dir = journal_dir("kill-nine");
    let mut server = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let addr = server.addr();

    // One job runs to completion before the crash...
    let fast = with_property(&uap_body(0.01, "deeppoly", &[]), "uap");
    let done_id = submit_job(addr, &fast);
    let done_before = wait_for_status(addr, done_id, "done");

    // ...one is running and one is queued when the crash hits.
    let slow = with_property(
        &uap_body(0.01, "box", &[("delay_millis", Json::from(1500usize))]),
        "uap",
    );
    let running_id = submit_job(addr, &slow);
    wait_for_status(addr, running_id, "running");
    let queued_id = submit_job(addr, &slow);

    server.kill_nine();
    let mut revived = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let addr = revived.addr();

    // The boot is flagged as crash recovery, and both live jobs came back.
    assert_eq!(metric(addr, "raven_serve_journal_clean_shutdown"), 0.0);
    assert!(metric(addr, "raven_serve_recovered_jobs_total") >= 2.0);

    // The terminal verdict replays byte-identically — envelope, timings
    // and all — without re-running the solver.
    let done_after = wait_for_status(addr, done_id, "done");
    assert_eq!(done_after.to_string(), done_before.to_string());

    // The replayed cacheable verdict also restocks the LRU: the same
    // synchronous query is a cache hit in the new process.
    let (status, reply) = request(
        addr,
        "POST",
        "/v1/verify/uap",
        &uap_body(0.01, "deeppoly", &[]),
    );
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));

    // The interrupted jobs were re-enqueued and complete normally.
    wait_for_status(addr, running_id, "done");
    wait_for_status(addr, queued_id, "done");

    revived.terminate();
    assert!(revived.wait_exit(Duration::from_secs(30)).success());
}

#[test]
fn a_job_that_crashes_the_server_twice_is_quarantined() {
    let dir = journal_dir("quarantine");
    let slow = with_property(
        &uap_body(0.01, "box", &[("delay_millis", Json::from(60_000usize))]),
        "uap",
    );

    // Crash #1: SIGKILL while the job is running (Started, no terminal).
    let mut server = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let id = submit_job(server.addr(), &slow);
    wait_for_status(server.addr(), id, "running");
    server.kill_nine();

    // Crash #2: recovery re-enqueues the job; the armed chaos abort kills
    // the process again the moment a worker picks it up.
    let mut crasher = ServerProc::spawn(
        &dir,
        &["--workers", "1"],
        &[("RAVEN_SERVE_CHAOS_ABORT_JOBS", "1")],
    );
    let status = crasher.wait_exit(Duration::from_secs(30));
    assert!(!status.success(), "chaos abort must crash the process");

    // Third boot: two crash signatures — the job is quarantined, pinned
    // in the journal, and never re-enqueued.
    let mut revived = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let addr = revived.addr();
    assert!(metric(addr, "raven_serve_quarantined_jobs_total") >= 1.0);
    let (state, job) = job_status(addr, id);
    assert_eq!(state, "quarantined", "{job}");
    let error = job.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("quarantined"), "{error}");

    // Quarantine itself is durable: a fourth boot replays it as-is.
    revived.terminate();
    assert!(revived.wait_exit(Duration::from_secs(30)).success());
    let fourth = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let (state, _) = job_status(fourth.addr(), id);
    assert_eq!(state, "quarantined");
}

/// Satellite: a `RemoteAttempt` with no matching terminal record excuses
/// the crash signature — the work was in remote hands when the process
/// died, so the job is not evidence of a poisoned input. The job must
/// re-enqueue on recovery, and a *second*, genuinely local crash still
/// leaves the weight below the quarantine threshold (2): the job
/// completes on the third boot instead of being quarantined.
#[test]
fn remote_attempt_without_terminal_record_reenqueues_instead_of_quarantining() {
    let dir = journal_dir("remote-excuse");
    let fleet_args = [
        "--workers",
        "1",
        "--fleet-addr",
        "127.0.0.1:0",
        // Long dispatch patience: the stalled worker holds the job in
        // remote hands until the kill lands.
        "--fleet-timeout-ms",
        "60000",
    ];

    // Crash #1: SIGKILL while a stall-chaos fleet worker holds the job —
    // the journal ends Submitted/Started/RemoteAttempt, no terminal.
    let mut server = ServerProc::spawn(&dir, &fleet_args, &[]);
    let addr = server.addr();
    let mut worker = Command::new(env!("CARGO_BIN_EXE_raven_worker"))
        .arg("--connect")
        .arg(server.fleet_addr().to_string())
        .arg("--models-dir")
        .arg(repo_path("models"))
        .arg("--name")
        .arg("excuse-staller")
        .env("RAVEN_WORKER_CHAOS", "stall")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn raven_worker");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, health) = request(addr, "GET", "/v1/healthz", "");
        let connected = health
            .get("fleet")
            .and_then(|f| f.get("workers"))
            .and_then(Json::as_array)
            .map(|ws| {
                ws.iter()
                    .any(|w| w.get("connected").and_then(Json::as_bool) == Some(true))
            })
            .unwrap_or(false);
        if connected {
            break;
        }
        assert!(Instant::now() < deadline, "worker never joined the fleet");
        std::thread::sleep(Duration::from_millis(25));
    }
    let id = submit_job(addr, &with_property(&uap_body(0.01, "raven", &[]), "uap"));
    wait_for_status(addr, id, "running");
    let deadline = Instant::now() + Duration::from_secs(30);
    while metric(addr, "raven_serve_fleet_dispatches_total") < 1.0 {
        assert!(Instant::now() < deadline, "job never reached the fleet");
        std::thread::sleep(Duration::from_millis(25));
    }
    server.kill_nine();
    let _ = worker.kill();
    let _ = worker.wait();

    // Crash #2: recovery re-enqueues the job (the remote attempt excused
    // crash #1); the armed chaos abort kills the process locally the
    // moment a worker picks the job up — a real, unexcused crash.
    let mut crasher = ServerProc::spawn(
        &dir,
        &["--workers", "1"],
        &[("RAVEN_SERVE_CHAOS_ABORT_JOBS", "1")],
    );
    let status = crasher.wait_exit(Duration::from_secs(30));
    assert!(!status.success(), "chaos abort must crash the process");

    // Third boot: weight is 1 (crash #1 excused, crash #2 counted) — the
    // job is re-enqueued, not quarantined, and completes.
    let revived = ServerProc::spawn(&dir, &["--workers", "1"], &[]);
    let addr = revived.addr();
    assert_eq!(metric(addr, "raven_serve_quarantined_jobs_total"), 0.0);
    assert!(metric(addr, "raven_serve_recovered_jobs_total") >= 1.0);
    wait_for_status(addr, id, "done");
}

#[test]
fn sigterm_writes_a_clean_shutdown_marker_the_next_boot_reports() {
    let dir = journal_dir("clean-shutdown");
    let mut server = ServerProc::spawn(&dir, &[], &[]);
    let addr = server.addr();

    // A fresh journal is not a clean shutdown — there is no marker yet.
    assert_eq!(metric(addr, "raven_serve_journal_clean_shutdown"), 0.0);
    let (status, reply) = request(
        addr,
        "POST",
        "/v1/verify/uap",
        &uap_body(0.01, "deeppoly", &[]),
    );
    assert_eq!(status, 200, "{reply}");

    server.terminate();
    assert!(server.wait_exit(Duration::from_secs(30)).success());

    // The next boot sees the marker, skips rescue work, and still replays
    // the completed verdict into the cache.
    let revived = ServerProc::spawn(&dir, &[], &[]);
    let addr = revived.addr();
    assert_eq!(metric(addr, "raven_serve_journal_clean_shutdown"), 1.0);
    assert_eq!(metric(addr, "raven_serve_recovered_jobs_total"), 0.0);
    let (status, reply) = request(
        addr,
        "POST",
        "/v1/verify/uap",
        &uap_body(0.01, "deeppoly", &[]),
    );
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
}

#[test]
fn idempotency_key_never_duplicates_solver_work_even_across_restart() {
    let dir = journal_dir("idempotency");
    // Cache disabled: any dedup observed here is the idempotency layer,
    // not the verdict cache.
    let args = ["--workers", "1", "--cache-capacity", "0"];
    let mut server = ServerProc::spawn(&dir, &args, &[]);
    let addr = server.addr();
    let body = mono_body();
    let key = [("Idempotency-Key", "retry-storm-42")];

    let (status, first) = request_with(addr, "POST", "/v1/verify/mono", &key, &body);
    assert_eq!(status, 200, "{first}");
    let solves_after_first = lp_solves(addr);
    assert!(
        solves_after_first >= 1.0,
        "monotonicity always solves an LP"
    );

    // The retried submission returns the original envelope byte-for-byte
    // and runs zero additional LP solves.
    let (status, second) = request_with(addr, "POST", "/v1/verify/mono", &key, &body);
    assert_eq!(status, 200, "{second}");
    assert_eq!(second, first);
    assert_eq!(lp_solves(addr), solves_after_first);
    assert!(metric(addr, "raven_serve_idempotent_hits_total") >= 1.0);

    // The async surface dedupes against the same key: no new job id.
    let (status, reply) = request_with(
        addr,
        "POST",
        "/v1/jobs",
        &key,
        &with_property(&body, "monotonicity"),
    );
    assert_eq!(status, 200, "{reply}");
    let reply = Json::parse(&reply).unwrap();
    assert_eq!(reply.get("idempotent").and_then(Json::as_bool), Some(true));
    let id = reply.get("job_id").and_then(Json::as_f64).unwrap() as u64;
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("done"));

    // The key survives a restart via the journal: the new process answers
    // the retry from the replayed verdict with zero solver work.
    server.terminate();
    assert!(server.wait_exit(Duration::from_secs(30)).success());
    let revived = ServerProc::spawn(&dir, &args, &[]);
    let addr = revived.addr();
    let (status, reply) = request_with(
        addr,
        "POST",
        "/v1/jobs",
        &key,
        &with_property(&body, "monotonicity"),
    );
    assert_eq!(status, 200, "{reply}");
    let reply = Json::parse(&reply).unwrap();
    assert_eq!(reply.get("idempotent").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("job_id").and_then(Json::as_f64).unwrap() as u64,
        id
    );
    assert_eq!(lp_solves(addr), 0.0, "restart retry re-ran the solver");
}
