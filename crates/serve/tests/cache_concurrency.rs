//! Concurrency stress for the verdict cache.
//!
//! The LRU is a `Mutex<HashMap>` hammered by every connection thread and
//! worker simultaneously — plus, since the journal landed, by restart
//! recovery restocking verdicts while early requests are already being
//! served. This test drives `get`/`put`/eviction from many threads
//! released by a barrier and checks the two invariants the server relies
//! on:
//!
//! * **no lost inserts** — a key written under capacity pressure either
//!   hits with exactly the value its writer stored, or has been evicted;
//!   a hit never observes another key's verdict (no aliasing, no tearing);
//! * **bounded** — `len() <= capacity()` at every observation point, not
//!   just at quiescence.

use raven::{Method, PairStrategy, TierMillis};
use raven_serve::cache::{CacheKey, CachedResult, PayloadHasher, ResultCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// A distinct key per `(thread, round)`; the payload hasher makes the
/// batch hash — and therefore the key — collision-free in practice.
fn key(thread: usize, round: usize) -> CacheKey {
    let mut hasher = PayloadHasher::new();
    hasher.usize(thread).usize(round);
    CacheKey {
        model_hash: 0x5eed,
        property: "uap",
        method: Method::Raven,
        pairs: PairStrategy::Consecutive,
        eps_bits: (0.01f64).to_bits(),
        batch_hash: hasher.finish(),
    }
}

/// The verdict only `key(thread, round)`'s writer would store.
fn verdict_for(thread: usize, round: usize) -> CachedResult {
    CachedResult {
        verdict: format!("{{\"thread\":{thread},\"round\":{round}}}"),
        solve_millis: thread as f64,
        tier_millis: TierMillis::default(),
        certificate: None,
    }
}

#[test]
fn cache_survives_concurrent_get_put_evict_without_losing_inserts() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    const CAPACITY: usize = 64; // far below THREADS * ROUNDS: constant eviction

    let cache = Arc::new(ResultCache::new(CAPACITY));
    let barrier = Arc::new(Barrier::new(THREADS));
    let lost = Arc::new(AtomicUsize::new(0));
    let corrupt = Arc::new(AtomicUsize::new(0));
    let over_capacity = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let lost = Arc::clone(&lost);
            let corrupt = Arc::clone(&corrupt);
            let over_capacity = Arc::clone(&over_capacity);
            std::thread::spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    let k = key(t, r);
                    let v = verdict_for(t, r);
                    cache.put(k.clone(), v.clone());
                    // Read-your-write or evicted — never a different value.
                    match cache.get(&k) {
                        Some(hit) if hit == v => {}
                        Some(_) => {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // Eviction by another thread is legal under
                            // pressure; count it so the test proves the
                            // non-evicted majority really was retained.
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Re-touch an old key (LRU traffic) and probe a key no
                    // one ever wrote (pure miss path).
                    if r > 0 {
                        if let Some(hit) = cache.get(&key(t, r - 1)) {
                            if hit != verdict_for(t, r - 1) {
                                corrupt.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    assert!(cache.get(&key(t + THREADS, r)).is_none());
                    // The capacity bound holds mid-flight, not just at rest.
                    if cache.len() > CAPACITY {
                        over_capacity.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("cache worker");
    }

    assert_eq!(
        corrupt.load(Ordering::Relaxed),
        0,
        "hit returned wrong value"
    );
    assert_eq!(
        over_capacity.load(Ordering::Relaxed),
        0,
        "len exceeded capacity"
    );
    assert!(cache.len() <= CAPACITY);

    // Each thread's freshest insert evicts the oldest entries, so most
    // read-your-writes must succeed: with 8 writers and capacity 64 an
    // insert sits 8 slots deep at worst before its own read-back. Allow
    // slack for scheduler stalls but reject wholesale loss.
    let lost = lost.load(Ordering::Relaxed);
    assert!(
        lost <= THREADS * ROUNDS / 10,
        "{lost} of {} read-your-writes lost — inserts are being dropped",
        THREADS * ROUNDS
    );

    // Quiescent state: the survivors are exactly retrievable.
    let (hits, misses) = cache.counters();
    assert!(hits >= 1 && misses >= 1);
    assert!(!cache.is_empty());
}

#[test]
fn zero_capacity_cache_stays_empty_under_concurrent_writes() {
    let cache = Arc::new(ResultCache::new(0));
    let barrier = Arc::new(Barrier::new(4));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for r in 0..200 {
                    cache.put(key(t, r), verdict_for(t, r));
                    assert!(cache.get(&key(t, r)).is_none());
                    assert_eq!(cache.len(), 0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("cache worker");
    }
    assert!(cache.is_empty());
}
