//! Distributed-tracing tests: trace context over HTTP, tail sampling,
//! the `/v1/traces` surface, and cross-process span stitching.
//!
//! The acceptance properties pinned here:
//! 1. tracing is observe-only — the `result` object is byte-identical
//!    whether the request carried a `traceparent`, was sampled out, or
//!    ran on a differently-threaded server;
//! 2. the tail sampler keeps slow and degraded requests at sample rate 0
//!    while dropping fast boring ones;
//! 3. a fleet-dispatched request comes back as ONE stitched trace: the
//!    worker's spans appear under the server's `fleet_dispatch` span,
//!    `remote:true`, with `worker/`-prefixed thread labels;
//! 4. a span leaked by one job never becomes the parent of the next
//!    job's spans on the reused worker thread.

use raven_json::Json;
use raven_serve::registry::ModelRegistry;
use raven_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Starts a server over `models/` on an ephemeral port.
fn start_server(config: ServerConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load_dir(&repo_path("models")).expect("load models dir");
    let server = Server::bind(&config, registry).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, shutdown, runner)
}

/// Minimal HTTP client with optional extra headers: one request, returns
/// `(status, head, raw body)`.
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut extra = String::new();
    for (k, v) in headers {
        extra.push_str(&format!("{k}: {v}\r\n"));
    }
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n{extra}\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let (head, raw_body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, raw_body)
}

/// [`request_raw`], with the body parsed as JSON and the head discarded.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, _, json_body) = request_raw(addr, method, path, &[], body);
    let parsed =
        Json::parse(&json_body).unwrap_or_else(|e| panic!("unparseable body {json_body:?}: {e}"));
    (status, parsed)
}

/// Parses `models/demo_batch.txt` (label then coordinates per line).
fn demo_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let text = std::fs::read_to_string(repo_path("models/demo_batch.txt")).expect("batch file");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse().unwrap());
        inputs.push(parts.map(|t| t.parse().unwrap()).collect());
    }
    (inputs, labels)
}

/// Builds a verify-uap request body for the demo batch.
fn uap_body(eps: f64, method: &str, extra: &[(&str, Json)]) -> String {
    let (inputs, labels) = demo_batch();
    let mut fields = vec![
        ("model".to_string(), Json::from("demo")),
        ("eps".to_string(), Json::from(eps)),
        ("method".to_string(), Json::from(method)),
        (
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|x| Json::num_array(x)).collect()),
        ),
        (
            "labels".to_string(),
            Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

/// The envelope's `trace` metadata block (a sibling of `result`).
fn trace_meta(envelope: &Json) -> &Json {
    envelope
        .get("trace")
        .unwrap_or_else(|| panic!("envelope has no trace field: {envelope}"))
}

/// Fetches `/v1/traces/{id}` as parsed JSONL lines (meta line first).
fn fetch_trace_jsonl(addr: SocketAddr, trace_id: &str) -> Vec<Json> {
    let (status, _, body) = request_raw(addr, "GET", &format!("/v1/traces/{trace_id}"), &[], "");
    assert_eq!(status, 200, "trace {trace_id} not retained: {body}");
    body.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect()
}

/// Verdict bytes are byte-identical whether the request is traced with a
/// client-supplied `traceparent`, server-minted, sampled out entirely, or
/// executed on a server with a different thread configuration — and the
/// trace metadata never leaks into the `result` object.
#[test]
fn verdict_bytes_identical_traced_untraced_and_across_threads() {
    let traceparent = "00-000102030405060708090a0b0c0d0e0f-0102030405060708-01";
    let trace_id = "000102030405060708090a0b0c0d0e0f";
    let body = uap_body(0.01, "deeppoly", &[]);

    // Server A: keep every trace, client supplies the trace context.
    let (addr_a, shutdown_a, runner_a) = start_server(ServerConfig::default());
    let (status, head, raw) = request_raw(
        addr_a,
        "POST",
        "/v1/verify/uap",
        &[("traceparent", traceparent)],
        &body,
    );
    assert_eq!(status, 200, "{raw}");
    assert!(
        head.to_ascii_lowercase().contains(trace_id),
        "response must echo the traceparent trace id: {head}"
    );
    let traced = Json::parse(&raw).expect("traced envelope");
    let meta = trace_meta(&traced);
    assert_eq!(meta.get("trace_id").and_then(Json::as_str), Some(trace_id));
    assert_eq!(meta.get("sampled").and_then(Json::as_bool), Some(true));
    let attribution = meta.get("attribution").expect("attribution block");
    assert!(
        attribution.get("lp_solves").is_some() && attribution.get("simplex_pivots").is_some(),
        "attribution lists the solver counters: {attribution}"
    );
    let result_traced = traced.get("result").expect("result").to_string();
    assert!(
        !result_traced.contains("trace"),
        "trace metadata must stay out of the verdict bytes: {result_traced}"
    );
    shutdown_a.shutdown();
    runner_a.join().expect("server A");

    // Server B: sample rate 0 (trace buffered then dropped), no header.
    let (addr_b, shutdown_b, runner_b) = start_server(ServerConfig {
        trace_sample_rate: 0.0,
        ..ServerConfig::default()
    });
    let (status, unsampled) = request(addr_b, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200);
    assert_eq!(
        trace_meta(&unsampled)
            .get("sampled")
            .and_then(Json::as_bool),
        Some(false)
    );
    let result_unsampled = unsampled.get("result").expect("result").to_string();
    shutdown_b.shutdown();
    runner_b.join().expect("server B");

    // Server C: different queue and solver threading.
    let (addr_c, shutdown_c, runner_c) = start_server(ServerConfig {
        workers: 4,
        job_threads: 2,
        ..ServerConfig::default()
    });
    let (status, threaded) = request(addr_c, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200);
    let result_threaded = threaded.get("result").expect("result").to_string();
    shutdown_c.shutdown();
    runner_c.join().expect("server C");

    assert_eq!(
        result_traced, result_unsampled,
        "tracing changed the verdict bytes"
    );
    assert_eq!(
        result_traced, result_threaded,
        "threading changed the verdict bytes"
    );
}

/// At sample rate 0 the tail sampler still keeps slow and degraded
/// requests (with the right `keep_reason`) while fast boring ones leave
/// no retained trace, and both export formats render the kept ones.
#[test]
fn tail_sampler_keeps_slow_and_degraded_drops_fast() {
    let (addr, shutdown, runner) = start_server(ServerConfig {
        trace_sample_rate: 0.0,
        trace_slow_ms: 200,
        cache_capacity: 0,
        ..ServerConfig::default()
    });

    // Fast request: buffered, then dropped at the tail.
    let (status, fast) = request(
        addr,
        "POST",
        "/v1/verify/uap",
        &uap_body(0.01, "deeppoly", &[]),
    );
    assert_eq!(status, 200);
    let fast_meta = trace_meta(&fast);
    assert_eq!(
        fast_meta.get("sampled").and_then(Json::as_bool),
        Some(false)
    );
    assert!(fast_meta.get("keep_reason").is_none());
    let fast_id = fast_meta.get("trace_id").and_then(Json::as_str).unwrap();
    let (status, _, _) = request_raw(addr, "GET", &format!("/v1/traces/{fast_id}"), &[], "");
    assert_eq!(status, 404, "dropped trace must not be retained");

    // Slow request (artificial delay past --trace-slow-ms): always kept.
    let slow_body = uap_body(0.02, "deeppoly", &[("delay_millis", Json::from(300usize))]);
    let (status, slow) = request(addr, "POST", "/v1/verify/uap", &slow_body);
    assert_eq!(status, 200);
    let slow_meta = trace_meta(&slow);
    assert_eq!(slow_meta.get("sampled").and_then(Json::as_bool), Some(true));
    assert_eq!(
        slow_meta.get("keep_reason").and_then(Json::as_str),
        Some("slow")
    );
    let slow_id = slow_meta.get("trace_id").and_then(Json::as_str).unwrap();

    // Degraded request: an eps heavy enough that analysis alone cannot
    // settle it, with a pre-solve delay that eats the whole deadline —
    // the precision ladder must degrade; kept regardless of duration.
    let degraded_body = uap_body(
        0.12,
        "raven",
        &[
            ("delay_millis", Json::from(60usize)),
            ("deadline_ms", Json::from(10usize)),
        ],
    );
    let (status, degraded) = request(addr, "POST", "/v1/verify/uap", &degraded_body);
    assert_eq!(status, 200);
    assert_eq!(
        degraded
            .get("result")
            .and_then(|r| r.get("degraded"))
            .and_then(Json::as_bool),
        Some(true),
        "deadline-starved solve must degrade: {degraded}"
    );
    let degraded_meta = trace_meta(&degraded);
    assert_eq!(
        degraded_meta.get("keep_reason").and_then(Json::as_str),
        Some("degraded")
    );
    let degraded_id = degraded_meta
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap();

    // The listing holds exactly the two kept traces, newest first.
    let (status, listing) = request(addr, "GET", "/v1/traces", "");
    assert_eq!(status, 200);
    assert_eq!(listing.get("count").and_then(Json::as_usize), Some(2));
    let traces = listing.get("traces").and_then(Json::as_array).unwrap();
    assert_eq!(
        traces[0].get("trace_id").and_then(Json::as_str),
        Some(degraded_id)
    );
    assert_eq!(
        traces[1].get("trace_id").and_then(Json::as_str),
        Some(slow_id)
    );

    // JSONL export: meta line then records, each record tagged with the
    // trace id; the synthesized request root is present.
    let lines = fetch_trace_jsonl(addr, slow_id);
    assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("trace"));
    assert_eq!(
        lines[0].get("keep_reason").and_then(Json::as_str),
        Some("slow")
    );
    assert!(
        lines[1..]
            .iter()
            .all(|l| l.get("trace").and_then(Json::as_str) == Some(slow_id)),
        "every record line carries the trace id"
    );
    assert!(
        lines[1..].iter().any(|l| {
            l.get("name").and_then(Json::as_str) == Some("request")
                && l.get("parent").and_then(Json::as_f64) == Some(0.0)
        }),
        "request root span present: {lines:?}"
    );

    // Chrome trace-event export of the same trace.
    let (status, _, chrome_body) = request_raw(
        addr,
        "GET",
        &format!("/v1/traces/{slow_id}?format=chrome"),
        &[],
        "",
    );
    assert_eq!(status, 200);
    let chrome = Json::parse(&chrome_body).expect("chrome export");
    let events = chrome.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")),
        "chrome export has complete events: {chrome_body}"
    );

    // The sampler decisions are visible on /v1/metrics. The counters are
    // process-wide (other tests in this binary may add to them), so only
    // a floor can be asserted.
    let (status, _, metrics) = request_raw(addr, "GET", "/v1/metrics", &[], "");
    assert_eq!(status, 200);
    let counter = |label: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("raven_serve_traces_total{{decision=\"{label}\"}}")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {label} counter in:\n{metrics}"))
    };
    assert!(counter("sampled") >= 2.0);
    assert!(counter("dropped") >= 1.0);

    shutdown.shutdown();
    runner.join().expect("server");
}

/// A fleet-dispatched request yields ONE stitched trace: the worker's
/// spans come home in the result frame and appear under the server's
/// `fleet_dispatch` span as `remote:true` records with `worker/`-prefixed
/// thread labels — and the remote verdict bytes match a local solve.
#[test]
fn fleet_remote_spans_stitch_into_one_trace() {
    use raven_serve::fleet::{run_worker, WorkerOptions};
    use std::sync::atomic::{AtomicBool, Ordering};

    static WORKER_STOP: AtomicBool = AtomicBool::new(false);

    let registry = ModelRegistry::load_dir(&repo_path("models")).expect("load models dir");
    let worker_registry = ModelRegistry::load_dir(&repo_path("models")).expect("load models dir");
    let config = ServerConfig {
        fleet_addr: Some("127.0.0.1:0".to_string()),
        // The pool is idle here; disable saturation-aware admission so
        // the request actually crosses the fleet wire.
        fleet: raven_serve::fleet::FleetConfig {
            when_saturated: false,
            ..raven_serve::fleet::FleetConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::bind(&config, registry).expect("bind fleet server");
    let addr = server.local_addr().expect("server addr");
    let fleet_addr = server.fleet_addr().expect("fleet addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());
    let worker_thread = std::thread::spawn(move || {
        let opts = WorkerOptions {
            connect: fleet_addr.to_string(),
            name: "stitch-worker".to_string(),
            registry: worker_registry,
            job_threads: 1,
            reconnect: Duration::from_millis(100),
            cache_capacity: 64,
            once: true,
        };
        let _ = run_worker(&opts, &WORKER_STOP);
    });

    // Wait until the worker has announced itself to the dispatcher.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = request(addr, "GET", "/v1/healthz", "");
        let connected = health
            .get("fleet")
            .and_then(|f| f.get("workers"))
            .and_then(Json::as_array)
            .is_some_and(|ws| {
                ws.iter()
                    .any(|w| w.get("connected").and_then(Json::as_bool) == Some(true))
            });
        if connected {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never connected: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Fleet-eligible traced query (method `raven`, no delay).
    let traceparent = "00-00000000000000000000000000fee17d-00000000000000ab-01";
    let trace_id = "00000000000000000000000000fee17d";
    let body = uap_body(0.03, "raven", &[]);
    let (status, _, raw) = request_raw(
        addr,
        "POST",
        "/v1/verify/uap",
        &[("traceparent", traceparent)],
        &body,
    );
    assert_eq!(status, 200, "{raw}");
    let envelope = Json::parse(&raw).expect("fleet envelope");
    let result_remote = envelope.get("result").expect("result").to_string();
    let (_, _, metrics) = request_raw(addr, "GET", "/v1/metrics", &[], "");
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("raven_serve_fleet_remote_solves_total") && !l.ends_with(" 0")),
        "query was not solved remotely:\n{metrics}"
    );

    // One stitched trace: local dispatch span + remote worker records.
    let lines = fetch_trace_jsonl(addr, trace_id);
    let dispatch = lines[1..]
        .iter()
        .find(|l| l.get("name").and_then(Json::as_str) == Some("fleet_dispatch"))
        .unwrap_or_else(|| panic!("no fleet_dispatch span: {lines:?}"));
    let dispatch_id = dispatch
        .get("id")
        .and_then(Json::as_f64)
        .expect("dispatch id");
    let remote: Vec<&Json> = lines[1..]
        .iter()
        .filter(|l| l.get("remote").and_then(Json::as_bool) == Some(true))
        .collect();
    assert!(
        !remote.is_empty(),
        "no remote records shipped home: {lines:?}"
    );
    assert!(
        remote.iter().all(|l| {
            l.get("thread")
                .and_then(Json::as_str)
                .is_some_and(|t| t.starts_with("stitch-worker/"))
        }),
        "remote threads are worker-prefixed: {remote:?}"
    );
    assert!(
        remote
            .iter()
            .any(|l| l.get("parent").and_then(Json::as_f64) == Some(dispatch_id)),
        "remote roots hang off the dispatch span: {remote:?}"
    );

    // Observe-only across the wire too: local recompute matches.
    shutdown.shutdown();
    WORKER_STOP.store(true, Ordering::SeqCst);
    server_thread.join().expect("server thread");
    worker_thread.join().expect("worker thread");

    let (addr_local, shutdown_local, runner_local) = start_server(ServerConfig::default());
    let (status, local) = request(addr_local, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200);
    assert_eq!(
        local.get("result").expect("result").to_string(),
        result_remote,
        "remote and local verdict bytes differ"
    );
    shutdown_local.shutdown();
    runner_local.join().expect("local server");
}

/// A span leaked inside one job (guard forgotten, never dropped) must not
/// become the parent of the next job's spans on the reused worker thread:
/// the queue clears the thread's span stack at every job start.
#[test]
fn leaked_span_does_not_reparent_the_next_job() {
    use raven_serve::queue::{JobMeta, JobQueue, QueueHooks, Supervision};
    use std::sync::{Arc, Mutex};

    raven_obs::set_enabled(true);
    let queue = JobQueue::with_options(8, Supervision::default(), QueueHooks::default());
    let _workers = queue.spawn_workers(1);

    // Job 1 leaks an open span on the worker thread.
    let leak = queue
        .submit(
            1,
            JobMeta::default(),
            Box::new(|| {
                std::mem::forget(raven_obs::span("leaked"));
                Ok(Json::Null)
            }),
        )
        .expect("submit leak job");
    leak.wait_terminal(Duration::from_secs(10))
        .expect("leak job done");

    // Job 2 runs traced on the same (sole) worker thread; its root span
    // must parent to the request context, not to the leaked span.
    let ctx = raven_obs::begin_trace(raven_obs::mint_trace_id(), raven_obs::next_span_id());
    let captured: Arc<Mutex<Vec<(String, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = captured.clone();
    let traced = queue
        .submit(
            2,
            JobMeta {
                trace: Some(ctx),
                ..JobMeta::default()
            },
            Box::new(move || {
                {
                    let _inner = raven_obs::span("inner");
                }
                let data = raven_obs::end_trace(ctx);
                let mut out = sink.lock().expect("capture lock");
                out.extend(data.records.into_iter().map(|r| (r.name, r.parent)));
                Ok(Json::Null)
            }),
        )
        .expect("submit traced job");
    traced
        .wait_terminal(Duration::from_secs(10))
        .expect("traced job done");

    let records = captured.lock().expect("capture lock");
    let (_, parent) = records
        .iter()
        .find(|(name, _)| name == "inner")
        .unwrap_or_else(|| panic!("inner span not recorded: {records:?}"));
    assert_eq!(
        *parent, ctx.parent_span,
        "leaked span from the previous job became the parent"
    );
}
