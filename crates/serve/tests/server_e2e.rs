//! End-to-end tests: a real server on an ephemeral port, driven over TCP.
//!
//! Covers the service-layer acceptance properties:
//! 1. repeated identical queries are served from the cache (`cached:
//!    true`, hit counter advances);
//! 2. load beyond the queue bound is rejected with 429;
//! 3. the server's `result` object is byte-identical to `raven_cli
//!    verify-uap --json` for the same query;
//! 4. graceful shutdown drains in-flight jobs and still answers them.

use raven_json::Json;
use raven_serve::registry::ModelRegistry;
use raven_serve::{Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Starts a server over `models/` on an ephemeral port.
fn start_server(config: ServerConfig) -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
    let registry = ModelRegistry::load_dir(&repo_path("models")).expect("load models dir");
    assert!(registry.get("demo").is_some(), "models/demo.net is present");
    let server = Server::bind(&config, registry).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, shutdown, runner)
}

/// Minimal HTTP client: one request, returns `(status, head, raw body)`.
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: raven\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {text:?}"));
    let (head, raw_body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, raw_body)
}

/// [`request_raw`], with the body parsed as JSON and the head discarded.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, _, json_body) = request_raw(addr, method, path, body);
    let parsed =
        Json::parse(&json_body).unwrap_or_else(|e| panic!("unparseable body {json_body:?}: {e}"));
    (status, parsed)
}

/// Parses `models/demo_batch.txt` (label then coordinates per line).
fn demo_batch() -> (Vec<Vec<f64>>, Vec<usize>) {
    let text = std::fs::read_to_string(repo_path("models/demo_batch.txt")).expect("batch file");
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        labels.push(parts.next().unwrap().parse().unwrap());
        inputs.push(parts.map(|t| t.parse().unwrap()).collect());
    }
    (inputs, labels)
}

/// Builds a verify-uap request body for the demo batch.
fn uap_body(eps: f64, method: &str, extra: &[(&str, Json)]) -> String {
    let (inputs, labels) = demo_batch();
    let mut fields = vec![
        ("model".to_string(), Json::from("demo")),
        ("eps".to_string(), Json::from(eps)),
        ("method".to_string(), Json::from(method)),
        (
            "inputs".to_string(),
            Json::Arr(inputs.iter().map(|x| Json::num_array(x)).collect()),
        ),
        (
            "labels".to_string(),
            Json::Arr(labels.iter().map(|&l| Json::from(l)).collect()),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v.clone()));
    }
    Json::Obj(fields).to_string()
}

#[test]
fn repeated_queries_hit_the_cache() {
    let (addr, shutdown, runner) = start_server(ServerConfig::default());
    let body = uap_body(0.01, "deeppoly", &[]);

    let (status, first) = request(addr, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200, "first response: {first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("model").and_then(Json::as_str), Some("demo"));

    let (status, second) = request(addr, "POST", "/v1/verify/uap", &body);
    assert_eq!(status, 200);
    assert_eq!(
        second.get("cached").and_then(Json::as_bool),
        Some(true),
        "identical query is served from cache: {second}"
    );
    // The verdict object — and even the reported solve time of the
    // original run — are identical.
    assert_eq!(
        first.get("result").unwrap().to_string(),
        second.get("result").unwrap().to_string()
    );
    assert_eq!(
        first.get("solve_millis").and_then(Json::as_f64),
        second.get("solve_millis").and_then(Json::as_f64)
    );

    let (status, health) = request(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    let cache = health.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("entries").and_then(Json::as_usize), Some(1));

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn overload_beyond_queue_bound_answers_429() {
    // One worker, queue bound 1: one running job + one queued job saturate
    // the server deterministically.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0, // every request must hit the queue
        ..ServerConfig::default()
    };
    let (addr, shutdown, runner) = start_server(config);
    let slow = uap_body(0.01, "box", &[("delay_millis", Json::from(1500usize))]);

    // Occupy the worker, then wait until the job is *running* (i.e. out of
    // the queue) so the next submission occupies the single queue slot.
    let (status, job1) = request(addr, "POST", "/v1/jobs", &with_property(&slow));
    assert_eq!(status, 202, "{job1}");
    let id1 = job1.get("job_id").and_then(Json::as_usize).unwrap();
    wait_for_status(addr, id1, "running");

    let (status, job2) = request(addr, "POST", "/v1/jobs", &with_property(&slow));
    assert_eq!(status, 202, "{job2}");

    // Worker busy + queue full: both sync and async submissions shed load,
    // and every 429 tells well-behaved clients when to come back.
    let (status, head, rejected) = request_raw(addr, "POST", "/v1/verify/uap", &slow);
    assert_eq!(status, 429, "{rejected}");
    assert!(
        head.contains("Retry-After: 1"),
        "429 sets Retry-After: {head}"
    );
    assert!(Json::parse(&rejected).unwrap().get("error").is_some());
    let (status, head, rejected) = request_raw(addr, "POST", "/v1/jobs", &with_property(&slow));
    assert_eq!(status, 429, "{rejected}");
    assert!(
        head.contains("Retry-After: 1"),
        "429 sets Retry-After: {head}"
    );

    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let queue = health.get("queue").expect("queue block");
    assert!(queue.get("rejected").and_then(Json::as_f64).unwrap() >= 2.0);

    // The rejections are also visible on the metrics surface.
    let (status, _, metrics) = request_raw(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let rejected_line = metrics
        .lines()
        .find(|l| l.starts_with("raven_serve_queue_rejected_total "))
        .expect("rejected counter exposed");
    let count: f64 = rejected_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(count >= 2.0, "rejected counter counts both 429s: {count}");

    // The accepted jobs still finish.
    let id2 = job2.get("job_id").and_then(Json::as_usize).unwrap();
    wait_for_status(addr, id1, "done");
    wait_for_status(addr, id2, "done");

    shutdown.shutdown();
    runner.join().expect("server thread");
}

/// Adds the `property` discriminator `/v1/jobs` needs.
fn with_property(body: &str) -> String {
    let mut json = match Json::parse(body).unwrap() {
        Json::Obj(fields) => fields,
        _ => unreachable!("bodies are objects"),
    };
    json.push(("property".to_string(), Json::from("uap")));
    Json::Obj(json).to_string()
}

/// Polls `GET /v1/jobs/{id}` until it reports `want`.
fn wait_for_status(addr: SocketAddr, id: usize, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, job) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{job}");
        let got = job
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if got == want {
            return;
        }
        assert_ne!(got, "failed", "job {id} failed: {job}");
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {got:?} waiting for {want:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn server_verdict_matches_cli_json_output_exactly() {
    // The CLI binary lives next to the test runner's deps directory.
    let cli = std::env::current_exe()
        .expect("test exe path")
        .parent()
        .and_then(Path::parent)
        .expect("target profile dir")
        .join(format!("raven_cli{}", std::env::consts::EXE_SUFFIX));
    if !cli.exists() {
        // Built lazily: `cargo test -p raven-serve` alone does not build
        // sibling binaries, the full workspace test (tier 1) does.
        let status = std::process::Command::new(env!("CARGO"))
            .args(["build", "-p", "raven", "--bin", "raven_cli"])
            .current_dir(repo_path(""))
            .status()
            .expect("invoke cargo");
        assert!(status.success(), "building raven_cli failed");
    }
    assert!(cli.exists(), "raven_cli binary at {}", cli.display());

    let eps = 0.02;
    let output = std::process::Command::new(&cli)
        .args([
            "verify-uap",
            "--model",
            repo_path("models/demo.net").to_str().unwrap(),
            "--inputs",
            repo_path("models/demo_batch.txt").to_str().unwrap(),
            "--eps",
            &eps.to_string(),
            "--method",
            "raven",
            "--json",
        ])
        .output()
        .expect("run raven_cli");
    // Exit 0 (verified) and 3 (sound but falsified) are both valid runs.
    let code = output.status.code().expect("exit code");
    assert!(
        code == 0 || code == 3,
        "raven_cli exited {code}: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let cli_envelope = Json::parse(stdout.trim()).expect("cli emits json");
    let cli_result = cli_envelope.get("result").expect("result field");

    let (addr, shutdown, runner) = start_server(ServerConfig::default());
    let (status, response) = request(addr, "POST", "/v1/verify/uap", &uap_body(eps, "raven", &[]));
    assert_eq!(status, 200, "{response}");
    let server_result = response.get("result").expect("result field");

    // Same verdict builder, same query — byte-identical serialization.
    assert_eq!(server_result.to_string(), cli_result.to_string());
    // And the CLI exit code agrees with the server's verdict.
    assert_eq!(
        cli_result.get("verified").and_then(Json::as_bool),
        Some(code == 0)
    );

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn metrics_endpoint_exposes_the_whole_stack() {
    let (addr, shutdown, runner) = start_server(ServerConfig::default());

    // A UAP verification advances the core/serve instruments…
    let (status, response) = request(
        addr,
        "POST",
        "/v1/verify/uap",
        &uap_body(0.01, "raven", &[]),
    );
    assert_eq!(status, 200, "{response}");
    // …and a monotonicity verification always solves an LP, so the
    // solver instruments (pivot counter, solve histogram) advance too.
    let (inputs, _) = demo_batch();
    let mono = Json::obj([
        ("model", Json::from("demo")),
        ("eps", Json::from(0.05)),
        ("method", Json::from("raven")),
        ("center", Json::num_array(&inputs[0])),
        ("feature", Json::from(0usize)),
        ("tau", Json::from(0.0)),
    ])
    .to_string();
    let (status, response) = request(addr, "POST", "/v1/verify/mono", &mono);
    assert_eq!(status, 200, "{response}");

    let (status, head, text) = request_raw(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain"),
        "exposition content type: {head}"
    );

    // Structural validity: every non-comment line is `name[{labels}] value`,
    // every metric has HELP and TYPE comments.
    let mut names = std::collections::BTreeSet::new();
    let mut helped = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.starts_with("# TYPE ") || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            name.starts_with("raven_"),
            "metric outside the raven namespace: {name}"
        );
        // Histogram series share their family's HELP.
        let family = name
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            helped.contains(name) || helped.contains(family),
            "sample {name} has no HELP"
        );
        names.insert(family.to_string());
    }

    // Coverage: at least 12 distinct metrics spanning solver, verifier
    // core, and service layer.
    assert!(names.len() >= 12, "only {} metrics: {names:?}", names.len());
    for prefix in ["raven_lp_", "raven_core_", "raven_serve_"] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix} metric in {names:?}"
        );
    }

    // The verification above must be visible in the counters.
    let sample = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    assert!(sample("raven_lp_simplex_pivots_total") >= 1.0);
    assert!(sample("raven_serve_queue_submitted_total") >= 1.0);
    assert!(sample(r#"raven_core_runs_total{property="uap"}"#) >= 1.0);

    // The healthz stats block mirrors the same counters.
    let (_, health) = request(addr, "GET", "/v1/healthz", "");
    let stats = health.get("stats").expect("stats block");
    assert!(stats.get("simplex_pivots").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(stats.get("uap_runs").and_then(Json::as_f64).unwrap() >= 1.0);

    shutdown.shutdown();
    runner.join().expect("server thread");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (addr, shutdown, runner) = start_server(config);

    // A slow in-flight synchronous request...
    let body = uap_body(0.01, "box", &[("delay_millis", Json::from(800usize))]);
    let client = std::thread::spawn(move || request(addr, "POST", "/v1/verify/uap", &body));

    // ...wait until it is actually running, then shut the server down.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = request(addr, "GET", "/v1/healthz", "");
        let running = health
            .get("queue")
            .and_then(|q| q.get("running"))
            .and_then(Json::as_usize)
            .unwrap();
        if running > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    shutdown.shutdown();
    runner.join().expect("server run() returns after drain");

    // The in-flight request was drained, not dropped: full 200 response.
    let (status, response) = client.join().expect("client thread");
    assert_eq!(status, 200, "{response}");
    assert_eq!(response.get("cached").and_then(Json::as_bool), Some(false));
    assert!(response.get("result").is_some());

    // New connections are refused once the listener is gone.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
