//! `raven-serve` — a std-only HTTP verification service for RaVeN.
//!
//! The one-shot `raven_cli` pays model load, plan lowering, and a full
//! solve for every query. This crate wraps the same verifier in a
//! long-running process that amortizes those costs:
//!
//! * a [`registry::ModelRegistry`] loads networks once and fingerprints
//!   them by content hash;
//! * a bounded [`queue::JobQueue`] + worker pool executes verifications
//!   with backpressure (HTTP 429 when full) and graceful drain;
//! * a [`cache::ResultCache`] memoizes deterministic verdicts under
//!   `(model hash, method, ε bits, payload hash, pair strategy)`.
//!
//! Everything is `std`-only: the HTTP layer is a minimal hand-rolled
//! HTTP/1.1 subset over [`std::net::TcpListener`], and JSON goes through
//! the workspace's `raven-json` crate. Endpoints:
//!
//! | Route                  | Meaning                                    |
//! |------------------------|--------------------------------------------|
//! | `POST /v1/verify/uap`  | synchronous UAP verification               |
//! | `POST /v1/verify/mono` | synchronous monotonicity verification      |
//! | `POST /v1/jobs`        | async submission (poll for the result)     |
//! | `GET /v1/jobs/{id}`    | job status / result                        |
//! | `GET /v1/models`       | loaded models with content hashes          |
//! | `GET /v1/healthz`      | uptime, queue depth, cache + solver stats  |
//! | `GET /v1/metrics`      | Prometheus text exposition (whole stack)   |
//! | `GET /v1/traces`       | tail-sampled trace summaries               |
//! | `GET /v1/traces/{id}`  | one trace (JSONL, or `?format=chrome`)     |

pub mod api;
pub mod cache;
pub mod chaos;
pub mod fleet;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod trace;

use cache::ResultCache;
use journal::{Journal, JournalConfig, Record, ReplayState, ReplayTerminal};
use queue::{JobQueue, JobSlot, JobState, QueueHooks, Supervision};
use raven_json::Json;
use registry::ModelRegistry;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing verifications (0 = all cores).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before 429.
    pub queue_capacity: usize,
    /// Maximum cached verdicts (0 disables the cache).
    pub cache_capacity: usize,
    /// How long a synchronous endpoint waits before answering 504.
    pub request_timeout: Duration,
    /// `RavenConfig::threads` for each job (intra-job parallelism).
    pub job_threads: usize,
    /// Maximum accepted request body size in bytes.
    pub max_body_bytes: usize,
    /// Default per-job solve deadline. Jobs that exhaust it degrade down
    /// the precision ladder (MILP → LP → analysis) and answer with a
    /// sound but weaker verdict instead of timing out with 504/500.
    /// `None` means unlimited; a request's `deadline_ms` field overrides.
    pub default_deadline: Option<Duration>,
    /// Write-ahead journal directory. `None` disables durability: jobs
    /// are lost on crash exactly as before the journal existed.
    pub journal_dir: Option<PathBuf>,
    /// Journal segment rotation and directory size cap.
    pub journal: JournalConfig,
    /// How long past a job's deadline the watchdog waits before cancelling
    /// it (the solver budget should have degraded the job at its deadline;
    /// this much later, the solver is assumed wedged).
    pub watchdog_grace: Duration,
    /// Maximum re-executions of a panicked job before it fails for good.
    /// 0 (the default) preserves the pre-supervision behavior: one
    /// attempt, panic answers 500.
    pub job_retries: u32,
    /// Per-connection client socket read/write timeout
    /// (`--client-timeout-ms`). A stalled peer must not pin a connection
    /// thread forever.
    pub client_timeout: Duration,
    /// Fleet listener bind address (`--fleet-addr`). `None` disables the
    /// fleet entirely: no listener, all jobs solve locally.
    pub fleet_addr: Option<String>,
    /// Fleet dispatch tunables (timeouts, probation, strikes, retries).
    pub fleet: fleet::FleetConfig,
    /// `--strict-certificates`: when an emitted certificate fails its own
    /// spot check, recompute the job instead of serving the unverifiable
    /// response.
    pub strict_certificates: bool,
    /// `--trace-slow-ms`: tail sampling always keeps requests at least
    /// this slow (besides degraded / errored / retried /
    /// certificate-rejected ones, which are always kept).
    pub trace_slow_ms: u64,
    /// `--trace-sample-rate`: probability of keeping an otherwise
    /// uninteresting (fast, clean) request's trace, in `[0, 1]`.
    pub trace_sample_rate: f64,
    /// Maximum retained traces behind `/v1/traces` (ring; oldest evicted).
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 256,
            request_timeout: Duration::from_secs(60),
            job_threads: 1,
            max_body_bytes: 64 * 1024 * 1024,
            default_deadline: None,
            journal_dir: None,
            journal: JournalConfig::default(),
            watchdog_grace: Duration::from_secs(2),
            job_retries: 0,
            client_timeout: Duration::from_secs(10),
            fleet_addr: None,
            fleet: fleet::FleetConfig::default(),
            strict_certificates: false,
            trace_slow_ms: 500,
            trace_sample_rate: 1.0,
            trace_capacity: 256,
        }
    }
}

/// Shared state behind every connection and worker.
pub struct ServerState {
    /// Loaded models.
    pub registry: ModelRegistry,
    /// The job queue (shared with the worker pool).
    pub queue: Arc<JobQueue>,
    /// The verdict cache.
    pub cache: ResultCache,
    /// Async jobs by id.
    pub jobs: Mutex<HashMap<u64, Arc<queue::JobSlot>>>,
    /// Next job id.
    pub next_job_id: AtomicU64,
    /// Server start time (for `/v1/healthz` uptime).
    pub started: Instant,
    /// Synchronous-request wait bound.
    pub request_timeout: Duration,
    /// Per-job `RavenConfig::threads`.
    pub job_threads: usize,
    /// Default per-job solve deadline (see [`ServerConfig::default_deadline`]).
    pub default_deadline: Option<Duration>,
    /// Force-cancel flag checked by in-flight verifications at phase
    /// boundaries (second ctrl-c / SIGTERM escalation).
    pub cancel: AtomicBool,
    /// Write-ahead job journal (`None` when durability is disabled).
    pub journal: Option<Arc<Journal>>,
    /// Idempotency-key → job id map (rebuilt from the journal on restart).
    pub idempotency: Mutex<HashMap<String, u64>>,
    /// The worker fleet (`None` when no `--fleet-addr` was given).
    pub fleet: Option<Arc<fleet::Fleet>>,
    /// Resolved local worker-pool size, for the saturation-aware dispatch
    /// gate (`--fleet-when-saturated`): remote dispatch is only preferred
    /// when every local worker is busy or jobs are queued behind them.
    pub pool_workers: usize,
    /// Recompute on spot-check failure instead of serving the response.
    pub strict_certificates: bool,
    /// Tail-sampled per-request traces behind `/v1/traces`.
    pub traces: Arc<trace::TraceStore>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    max_body_bytes: usize,
    client_timeout: Duration,
}

/// Handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    cancel_state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests a graceful shutdown: stop accepting, drain accepted jobs,
    /// then exit `run`.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Escalates: additionally asks in-flight verifications to stop at
    /// their next phase boundary (their requests answer 500/cancelled).
    pub fn force_cancel(&self) {
        self.cancel_state.cancel.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener and starts the worker pool (but not the accept
    /// loop — call [`Server::run`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(config: &ServerConfig, registry: ModelRegistry) -> std::io::Result<Server> {
        // A long-running service always wants its latency histograms
        // populated; telemetry is observe-only so verdicts are unaffected.
        raven_obs::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // Replay the journal before anything else: recovery needs the
        // replayed state to seed job ids, and the hooks need the opened
        // journal. Opening starts a fresh segment, so replay sees only
        // the dead process's records.
        let (journal_handle, replay) = match &config.journal_dir {
            Some(dir) => {
                let records = journal::replay_dir(dir)?;
                let replay = ReplayState::digest(&records);
                metrics::JOURNAL_REPLAYED.add(replay.records);
                metrics::JOURNAL_CLEAN_SHUTDOWN.set(i64::from(replay.clean_shutdown));
                let journal = Arc::new(Journal::open(dir, config.journal)?);
                (Some(journal), Some(replay))
            }
            None => (None, None),
        };
        // Durability hooks: a fsync'd Started record per pickup (the
        // crash-signature replay counts on it surviving power loss) and a
        // terminal record per outcome (plain write — losing one only
        // costs a re-run).
        let hooks = match &journal_handle {
            Some(journal) => {
                let on_start = journal.clone();
                let on_end = journal.clone();
                QueueHooks {
                    on_started: Some(Box::new(move |id| {
                        let _ = on_start.append(&Record::Started { id }, true);
                    })),
                    on_terminal: Some(Box::new(move |id, terminal| {
                        let record = match terminal {
                            JobState::Done(envelope) => {
                                // Degraded verdicts are budget-dependent
                                // and never cacheable — on replay either.
                                let cacheable = envelope
                                    .get("result")
                                    .and_then(|r| r.get("degraded"))
                                    .and_then(Json::as_bool)
                                    == Some(false);
                                Record::Completed {
                                    id,
                                    envelope: envelope.clone(),
                                    cacheable,
                                }
                            }
                            JobState::Failed(error) => Record::Failed {
                                id,
                                error: error.clone(),
                            },
                            _ => return,
                        };
                        let _ = on_end.append(&record, false);
                    })),
                }
            }
            None => QueueHooks::default(),
        };
        let queue = JobQueue::with_options(
            config.queue_capacity,
            Supervision {
                grace: config.watchdog_grace,
                max_retries: config.job_retries,
            },
            hooks,
        );
        let next_job_id = replay.as_ref().map_or(0, ReplayState::max_id) + 1;
        let fleet_handle = match &config.fleet_addr {
            Some(addr) => Some(Arc::new(fleet::Fleet::bind(addr, config.fleet.clone())?)),
            None => None,
        };
        let state = Arc::new(ServerState {
            registry,
            queue: queue.clone(),
            cache: ResultCache::new(config.cache_capacity),
            jobs: Mutex::new(HashMap::new()),
            next_job_id: AtomicU64::new(next_job_id),
            started: Instant::now(),
            request_timeout: config.request_timeout,
            job_threads: config.job_threads,
            default_deadline: config.default_deadline,
            cancel: AtomicBool::new(false),
            journal: journal_handle.clone(),
            idempotency: Mutex::new(HashMap::new()),
            fleet: fleet_handle,
            pool_workers: raven::par::resolve_threads(config.workers),
            strict_certificates: config.strict_certificates,
            traces: Arc::new(trace::TraceStore::new(
                trace::sampler_from(config.trace_slow_ms, config.trace_sample_rate),
                config.trace_capacity,
            )),
        });
        if let (Some(journal), Some(replay)) = (&journal_handle, replay) {
            recover(&state, journal, &replay);
            // Tidy the inherited segments now that every replayed job has
            // a pinned outcome (best-effort; rotation compacts later too).
            let _ = journal.compact();
        }
        let worker_handles = queue.spawn_workers(config.workers);
        Ok(Server {
            listener,
            state,
            worker_handles,
            stop: Arc::new(AtomicBool::new(false)),
            max_body_bytes: config.max_body_bytes,
            client_timeout: config.client_timeout,
        })
    }

    /// The bound fleet listener address, when a fleet is attached (read
    /// the ephemeral port from here to point `raven_worker --connect` at).
    pub fn fleet_addr(&self) -> Option<std::net::SocketAddr> {
        self.state.fleet.as_ref().and_then(|f| f.local_addr().ok())
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the OS error from `local_addr` (practically infallible).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state — exposed for in-process tests and the binary.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// A handle that stops the accept loop from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: self.stop.clone(),
            cancel_state: self.state.clone(),
        }
    }

    /// Accepts connections until shutdown, then drains: accepted jobs
    /// finish, their responses are written, workers exit, and `run`
    /// returns.
    pub fn run(self) {
        let active = Arc::new(AtomicUsize::new(0));
        let fleet_acceptor = self
            .state
            .fleet
            .as_ref()
            .map(|fleet| fleet.spawn_acceptor(self.stop.clone()));
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = self.state.clone();
                    let conn_active = active.clone();
                    let max_body = self.max_body_bytes;
                    let client_timeout = self.client_timeout;
                    active.fetch_add(1, Ordering::SeqCst);
                    // One thread per connection: connections are
                    // short-lived (Connection: close) and the expensive
                    // part is bounded by the worker pool, not by
                    // connection count.
                    let spawned = std::thread::Builder::new()
                        .name("raven-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(&state, stream, max_body, client_timeout);
                            conn_active.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Poll the shutdown flag between accepts.
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Graceful drain: stop admission, finish every accepted job, let
        // the waiting connections write their responses, join workers.
        self.state.queue.shutdown_and_drain();
        let deadline = Instant::now() + Duration::from_secs(10);
        while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for handle in self.worker_handles {
            let _ = handle.join();
        }
        if let Some(handle) = fleet_acceptor {
            let _ = handle.join();
        }
        // Workers are joined, so every terminal record is already
        // appended: the clean-shutdown marker is genuinely last. The next
        // boot's replay sees it and skips the crash-rescue scan entirely.
        if let Some(journal) = &self.state.journal {
            let _ = journal.append(&Record::CleanShutdown, true);
            let _ = journal.sync();
        }
    }
}

/// Materializes the replayed journal into live server state: terminal
/// outcomes become preset job slots (completed cacheable verdicts also
/// re-warm the LRU), jobs that were running at two separate crashes are
/// quarantined as poison, and interrupted jobs are re-enqueued.
fn recover(state: &Arc<ServerState>, journal: &Journal, replay: &ReplayState) {
    let mut ids: Vec<u64> = replay.jobs.keys().copied().collect();
    ids.sort_unstable(); // deterministic re-enqueue order
    for id in ids {
        let job = &replay.jobs[&id];
        let slot: Arc<JobSlot> = match &job.terminal {
            Some(ReplayTerminal::Completed {
                envelope,
                cacheable,
            }) => {
                if *cacheable {
                    if let (Some(property), Some(body)) = (&job.property, &job.body) {
                        api::restore_cached_verdict(state, property, body, envelope);
                    }
                }
                JobSlot::preset(JobState::Done(envelope.clone()))
            }
            Some(ReplayTerminal::Failed(error)) => JobSlot::preset(JobState::Failed(error.clone())),
            Some(ReplayTerminal::Quarantined) => JobSlot::preset(JobState::Quarantined),
            None if replay.clean_shutdown => {
                // A clean shutdown drained every accepted job; a submit
                // with no terminal can only be journal loss (size-cap
                // deletion) — nothing recoverable.
                continue;
            }
            None if job.crash_weight >= 2 => {
                // Poison: running at two separate process deaths while
                // *locally* executing. Crashes that happened while the job
                // was dispatched to a fleet worker are excused by their
                // `RemoteAttempt` records — a remote solve cannot have
                // crashed this process. Pin the verdict so later restarts
                // don't re-count.
                metrics::QUARANTINED_JOBS.inc();
                let _ = journal.append(&Record::Quarantined { id }, true);
                JobSlot::preset(JobState::Quarantined)
            }
            None => {
                let (Some(property), Some(body)) = (&job.property, &job.body) else {
                    continue; // Started whose Submitted record was lost
                };
                match api::resubmit_recovered(state, id, property, body) {
                    Ok(slot) => {
                        metrics::RECOVERED_JOBS.inc();
                        slot
                    }
                    Err(error) => {
                        // Pin the failure so the next restart doesn't
                        // retry a job that can no longer run.
                        let _ = journal.append(
                            &Record::Failed {
                                id,
                                error: error.clone(),
                            },
                            false,
                        );
                        JobSlot::preset(JobState::Failed(error))
                    }
                }
            }
        };
        if let Some(key) = &job.key {
            state
                .idempotency
                .lock()
                .expect("idempotency lock")
                .insert(key.clone(), id);
        }
        state.jobs.lock().expect("jobs lock").insert(id, slot);
    }
}

/// Serves one connection: read request, route, write response.
fn handle_connection(
    state: &Arc<ServerState>,
    mut stream: TcpStream,
    max_body: usize,
    client_timeout: Duration,
) {
    // A stuck peer must not pin the connection thread forever — neither a
    // client that stops sending (read) nor one that stops draining its
    // receive window while we write a large response body (write).
    let _ = stream.set_read_timeout(Some(client_timeout));
    let _ = stream.set_write_timeout(Some(client_timeout));
    match http::read_request(&mut stream, max_body) {
        Ok(request) => {
            let reply = api::handle(state, &request);
            http::write_response(
                &mut stream,
                reply.status,
                reply.content_type,
                &reply.headers,
                &reply.body,
            );
        }
        Err(e) => {
            let body =
                raven_json::Json::obj([("error", raven_json::Json::from(e.message.as_str()))])
                    .to_string();
            http::write_json_response(&mut stream, e.status, &body);
        }
    }
}
