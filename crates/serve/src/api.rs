//! Request routing and the verification endpoints.
//!
//! Every endpoint parses its JSON body into a [`VerifySpec`], derives the
//! [`CacheKey`], and runs the query through the shared job queue. Verdict
//! objects come from `raven::report` — the same functions `raven_cli
//! --json` uses — so a server response's `result` field is byte-identical
//! to the CLI's for the same query.

use crate::cache::{CacheKey, CachedResult, PayloadHasher};
use crate::fleet::{DispatchCtx, Expected, ExpectedKind};
use crate::http::Request;
use crate::journal::Record;
use crate::queue::{JobFn, JobMeta, JobSlot, JobState};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::ServerState;
use raven::hooks::RunHooks;
use raven::{
    merge_uap_results, report, verify_monotonicity_certified_with_hooks,
    verify_monotonicity_with_hooks, verify_uap_certified_with_hooks,
    verify_uap_shard_certified_with_hooks, verify_uap_with_hooks, Method, MonotonicityProblem,
    PairStrategy, RavenConfig, Tier, TierMillis, UapProblem, UapResult,
};
use raven_json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An HTTP reply: status, content type, extra headers, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `Retry-After` on 429).
    pub headers: Vec<(&'static str, String)>,
    /// Serialized response body.
    pub body: String,
}

impl Reply {
    /// A JSON reply with no extra headers.
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// Adds one extra response header.
    fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn error_reply(status: u16, message: &str) -> Reply {
    let body = Json::obj([("error", Json::from(message))]).to_string();
    Reply::json(status, body)
}

/// A 429 with `Retry-After` so well-behaved clients back off instead of
/// hammering a saturated queue. One second matches the granularity of a
/// queue drained by jobs that take hundreds of milliseconds to seconds.
fn queue_full_reply() -> Reply {
    error_reply(429, "verification queue is full, retry later").with_header("Retry-After", "1")
}

/// Routes one parsed request to its handler.
pub fn handle(state: &Arc<ServerState>, req: &Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => healthz(state),
        ("GET", "/v1/metrics") => metrics(state),
        ("GET", "/v1/models") => models(state),
        ("POST", "/v1/verify/uap") => verify_sync(state, req, Property::Uap),
        ("POST", "/v1/verify/mono") => verify_sync(state, req, Property::Mono),
        ("POST", "/v1/jobs") => submit_job(state, req),
        ("GET", p) if p.starts_with("/v1/jobs/") => job_status(state, p),
        ("GET", "/v1/traces") => list_traces(state),
        ("GET", p) if p.starts_with("/v1/traces/") => trace_detail(state, req, p),
        ("GET" | "POST", _) => error_reply(404, "no such endpoint"),
        _ => error_reply(405, "method not allowed"),
    }
}

/// `GET /v1/metrics` — the whole stack's instruments (solver, analysis
/// domains, verifier core, service layer) in Prometheus text format.
fn metrics(state: &Arc<ServerState>) -> Reply {
    let mut tables = raven::metrics::all_descs();
    tables.push(&crate::metrics::DESCS);
    let mut body = raven_obs::render_prometheus(&tables);
    if let Some(fleet) = &state.fleet {
        // Per-worker labeled series are dynamic (one per connected worker
        // name) and therefore rendered by the fleet, not the static tables.
        body.push_str(&fleet.render_prometheus());
    }
    Reply {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        headers: Vec::new(),
        body,
    }
}

/// `GET /v1/traces` — summaries of the tail-sampled traces, newest first.
fn list_traces(state: &Arc<ServerState>) -> Reply {
    Reply::json(200, state.traces.list().to_string())
}

/// `GET /v1/traces/{id}` — one retained trace, as native JSONL (the
/// default; `scripts/trace2folded.rs` folds it) or the Chrome trace-event
/// format with `?format=chrome` (load in `chrome://tracing` / Perfetto).
fn trace_detail(state: &Arc<ServerState>, req: &Request, path: &str) -> Reply {
    let hex = &path["/v1/traces/".len()..];
    let Ok(trace_id) = u128::from_str_radix(hex, 16) else {
        return error_reply(
            400,
            "trace id must be hex (as echoed in the traceparent header)",
        );
    };
    let Some(trace) = state.traces.get(trace_id) else {
        return error_reply(404, "no such trace (not sampled, or evicted)");
    };
    let chrome = req
        .query
        .as_deref()
        .is_some_and(|q| q.split('&').any(|kv| kv == "format=chrome"));
    if chrome {
        Reply::json(200, crate::trace::render_chrome(&trace).to_string())
    } else {
        Reply {
            status: 200,
            content_type: "application/x-ndjson",
            headers: Vec::new(),
            body: crate::trace::render_jsonl(&trace),
        }
    }
}

fn healthz(state: &Arc<ServerState>) -> Reply {
    let stats = state.queue.stats();
    let (hits, misses) = state.cache.counters();
    let mut body = Json::obj([
        ("status", Json::from("ok")),
        (
            "uptime_secs",
            Json::from(state.started.elapsed().as_secs_f64()),
        ),
        ("models", Json::from(state.registry.len())),
        (
            "queue",
            Json::obj([
                ("depth", Json::from(stats.queued)),
                ("running", Json::from(stats.running)),
                ("capacity", Json::from(stats.capacity)),
                ("submitted", Json::from(stats.submitted as f64)),
                ("completed", Json::from(stats.completed as f64)),
                ("failed", Json::from(stats.failed as f64)),
                ("rejected", Json::from(stats.rejected as f64)),
                ("retried", Json::from(stats.retried as f64)),
                ("watchdog_kills", Json::from(stats.watchdog_kills as f64)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::from(hits as f64)),
                ("misses", Json::from(misses as f64)),
                ("entries", Json::from(state.cache.len())),
                ("capacity", Json::from(state.cache.capacity())),
            ]),
        ),
        (
            "stats",
            Json::obj([
                (
                    "simplex_pivots",
                    Json::from(raven_lp::metrics::SIMPLEX_PIVOTS.get() as f64),
                ),
                (
                    "lp_solves",
                    Json::from(raven_lp::metrics::LP_SOLVES.get() as f64),
                ),
                (
                    "milp_nodes",
                    Json::from(raven_lp::metrics::MILP_NODES.get() as f64),
                ),
                (
                    "uap_runs",
                    Json::from(raven::metrics::UAP_RUNS.get() as f64),
                ),
                (
                    "mono_runs",
                    Json::from(raven::metrics::MONO_RUNS.get() as f64),
                ),
                (
                    "degraded",
                    Json::from(raven::metrics::DEGRADED.get() as f64),
                ),
                (
                    "spot_check_failures",
                    Json::from(crate::metrics::SPOT_CHECK_FAILURES.get() as f64),
                ),
            ]),
        ),
    ]);
    if let Some(fleet) = &state.fleet {
        if let Json::Obj(fields) = &mut body {
            fields.push(("fleet".to_string(), fleet.healthz_json()));
        }
    }
    Reply::json(200, body.to_string())
}

fn models(state: &Arc<ServerState>) -> Reply {
    let entries: Vec<Json> = state
        .registry
        .entries()
        .iter()
        .map(|e| {
            Json::obj([
                ("name", Json::from(e.name.as_str())),
                ("hash", Json::from(e.hash_hex())),
                ("input_dim", Json::from(e.plan.input_dim())),
                ("output_dim", Json::from(e.plan.output_dim())),
            ])
        })
        .collect();
    Reply::json(200, Json::obj([("models", Json::Arr(entries))]).to_string())
}

/// Which property family a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Property {
    Uap,
    Mono,
}

impl Property {
    /// Stable name used in job bodies and journal records.
    fn name(self) -> &'static str {
        match self {
            Property::Uap => "uap",
            Property::Mono => "monotonicity",
        }
    }

    fn from_name(name: &str) -> Option<Property> {
        match name {
            "uap" => Some(Property::Uap),
            "monotonicity" => Some(Property::Mono),
            _ => None,
        }
    }
}

/// A fully parsed, validated verification request.
struct VerifySpec {
    entry: Arc<ModelEntry>,
    method: Method,
    config: RavenConfig,
    eps: f64,
    payload: Payload,
    /// Artificial pre-solve delay (milliseconds) — a load-testing knob
    /// used by the backpressure tests; excluded from the cache key.
    delay_millis: u64,
    /// Per-request solve deadline override (milliseconds). Like
    /// `delay_millis` it is excluded from the cache key: a deadline never
    /// changes what a verdict *means*, only how precise it is, and
    /// degraded verdicts are never cached anyway.
    deadline_ms: Option<u64>,
    /// Idempotency key from the JSON body (`idempotency_key`); the
    /// `Idempotency-Key` header takes precedence when both are present.
    /// Excluded from the cache key — it identifies a *submission*, not a
    /// query.
    idempotency_key: Option<String>,
    /// `certificate=1` (or `true`): emit a replayable proof certificate
    /// next to the verdict. Excluded from the cache key — the verdict is
    /// identical either way — but a certificate request bypasses cache
    /// *reads*, since cached entries carry no certificate.
    certificate: bool,
    /// The raw request body text, kept for fleet dispatch (the job frame
    /// forwards it verbatim so the worker parses exactly what we parsed).
    raw_body: String,
}

enum Payload {
    Uap {
        inputs: Vec<Vec<f64>>,
        labels: Vec<usize>,
    },
    Mono {
        center: Vec<f64>,
        feature: usize,
        tau: f64,
        increasing: bool,
        output_weights: Vec<f64>,
    },
}

impl VerifySpec {
    fn property_name(&self) -> &'static str {
        match self.payload {
            Payload::Uap { .. } => Property::Uap.name(),
            Payload::Mono { .. } => Property::Mono.name(),
        }
    }

    fn cache_key(&self) -> CacheKey {
        let mut h = PayloadHasher::new();
        match &self.payload {
            Payload::Uap { inputs, labels } => {
                h.usize(inputs.len());
                for x in inputs {
                    h.f64s(x);
                }
                h.usize(labels.len());
                for &l in labels {
                    h.usize(l);
                }
            }
            Payload::Mono {
                center,
                feature,
                tau,
                increasing,
                output_weights,
            } => {
                h.f64s(center)
                    .usize(*feature)
                    .f64(*tau)
                    .bool(*increasing)
                    .f64s(output_weights);
            }
        }
        h.bool(self.config.spec_milp);
        CacheKey {
            model_hash: self.entry.hash,
            property: self.property_name(),
            method: self.method,
            pairs: self.config.pairs,
            eps_bits: self.eps.to_bits(),
            batch_hash: h.finish(),
        }
    }
}

/// Parse failure carrying the status to answer with (400 or 404).
struct ParseFail(u16, String);

fn bad(msg: impl Into<String>) -> ParseFail {
    ParseFail(400, msg.into())
}

fn parse_spec(
    registry: &ModelRegistry,
    job_threads: usize,
    body: &[u8],
    property: Property,
) -> Result<VerifySpec, ParseFail> {
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not utf-8"))?;
    let json = Json::parse(text).map_err(|e| bad(format!("invalid json: {e}")))?;
    let model = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field \"model\""))?;
    let entry = registry
        .get(model)
        .ok_or_else(|| ParseFail(404, format!("unknown model {model:?}")))?;
    let eps = json
        .get("eps")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("missing number field \"eps\""))?;
    if !eps.is_finite() || eps < 0.0 {
        return Err(bad("\"eps\" must be finite and non-negative"));
    }
    let method = match json.get("method") {
        None => Method::Raven,
        Some(m) => {
            let name = m
                .as_str()
                .ok_or_else(|| bad("\"method\" must be a string"))?;
            Method::from_name(name).ok_or_else(|| {
                bad(format!(
                    "unknown method {name:?} (try box, zonotope, deeppoly, io-lp, raven)"
                ))
            })?
        }
    };
    let mut config = RavenConfig {
        threads: job_threads,
        ..RavenConfig::default()
    };
    if let Some(p) = json.get("pairs") {
        let name = p
            .as_str()
            .ok_or_else(|| bad("\"pairs\" must be a string"))?;
        config.pairs = PairStrategy::from_name(name).ok_or_else(|| {
            bad(format!(
                "unknown pair strategy {name:?} (try none, consecutive, all)"
            ))
        })?;
    }
    if let Some(m) = json.get("spec_milp") {
        config.spec_milp = m
            .as_bool()
            .ok_or_else(|| bad("\"spec_milp\" must be a boolean"))?;
    }
    let delay_millis = match json.get("delay_millis") {
        None => 0,
        Some(d) => d
            .as_usize()
            .ok_or_else(|| bad("\"delay_millis\" must be a non-negative integer"))?
            as u64,
    };
    let deadline_ms = match json.get("deadline_ms") {
        None => None,
        Some(d) => Some(
            d.as_usize()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| bad("\"deadline_ms\" must be a positive integer"))?
                as u64,
        ),
    };
    let idempotency_key = match json.get("idempotency_key") {
        None => None,
        Some(k) => Some(
            k.as_str()
                .filter(|k| !k.is_empty())
                .ok_or_else(|| bad("\"idempotency_key\" must be a non-empty string"))?
                .to_string(),
        ),
    };
    let certificate = match json.get("certificate") {
        None => false,
        // Accept both `true` and `1` — curl one-liners tend to write `1`.
        Some(c) => c
            .as_bool()
            .or_else(|| c.as_usize().map(|n| n != 0))
            .ok_or_else(|| bad("\"certificate\" must be a boolean or 0/1"))?,
    };
    let input_dim = entry.plan.input_dim();
    let output_dim = entry.plan.output_dim();
    let payload = match property {
        Property::Uap => {
            let inputs = json
                .get("inputs")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("missing array field \"inputs\""))?;
            let inputs: Vec<Vec<f64>> = inputs
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    row.as_f64_vec()
                        .filter(|v| v.len() == input_dim)
                        .ok_or_else(|| {
                            bad(format!(
                                "inputs[{i}] must be an array of {input_dim} numbers"
                            ))
                        })
                })
                .collect::<Result<_, _>>()?;
            if inputs.is_empty() {
                return Err(bad("\"inputs\" must be non-empty"));
            }
            let labels = json
                .get("labels")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("missing array field \"labels\""))?;
            let labels: Vec<usize> = labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    l.as_usize().filter(|&l| l < output_dim).ok_or_else(|| {
                        bad(format!("labels[{i}] must be an integer < {output_dim}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            if labels.len() != inputs.len() {
                return Err(bad("\"labels\" and \"inputs\" must have the same length"));
            }
            Payload::Uap { inputs, labels }
        }
        Property::Mono => {
            let center = json
                .get("center")
                .and_then(Json::as_f64_vec)
                .filter(|c| c.len() == input_dim)
                .ok_or_else(|| {
                    bad(format!(
                        "\"center\" must be an array of {input_dim} numbers"
                    ))
                })?;
            let feature = json
                .get("feature")
                .and_then(Json::as_usize)
                .filter(|&f| f < input_dim)
                .ok_or_else(|| bad(format!("\"feature\" must be an integer < {input_dim}")))?;
            let tau = json
                .get("tau")
                .and_then(Json::as_f64)
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| bad("\"tau\" must be a finite non-negative number"))?;
            let increasing = match json.get("increasing") {
                None => true,
                Some(b) => b
                    .as_bool()
                    .ok_or_else(|| bad("\"increasing\" must be a boolean"))?,
            };
            let output_weights = match json.get("output_weights") {
                Some(w) => w
                    .as_f64_vec()
                    .filter(|w| w.len() == output_dim)
                    .ok_or_else(|| {
                        bad(format!(
                            "\"output_weights\" must be an array of {output_dim} numbers"
                        ))
                    })?,
                None => {
                    // Same default score as the CLI: last logit minus first.
                    let mut w = vec![0.0; output_dim];
                    w[0] = -1.0;
                    w[output_dim - 1] = 1.0;
                    w
                }
            };
            Payload::Mono {
                center,
                feature,
                tau,
                increasing,
                output_weights,
            }
        }
    };
    Ok(VerifySpec {
        entry,
        method,
        config,
        eps,
        payload,
        delay_millis,
        deadline_ms,
        idempotency_key,
        certificate,
        raw_body: text.to_string(),
    })
}

/// The outcome of one verification run, ready for envelope assembly.
struct Computed {
    verdict: String,
    solve_millis: f64,
    tier_millis: TierMillis,
    /// True when the solve hit its deadline and fell down the precision
    /// ladder — the verdict is sound but weaker than an unlimited run.
    degraded: bool,
    /// Serialized proof certificate, when the request asked for one and
    /// the run produced certifiable evidence. Never part of `verdict`.
    certificate: Option<Json>,
    /// Whether the in-process spot check accepted the emitted certificate
    /// (vacuously true when none was emitted). `--strict-certificates`
    /// recomputes the job when this is false.
    spot_ok: bool,
}

/// Spot-checks an emitted certificate by replaying it in the in-process
/// exact checker, recording size and replay-time metrics. By default a
/// rejection is counted and logged but never blocks the response: the
/// verdict itself is not derived from the certificate, and the client can
/// (and should) replay it independently with `raven_check`. Under
/// `--strict-certificates` the caller recomputes instead of serving the
/// unverifiable response.
fn spot_check_certificate(json: &Json) -> bool {
    crate::metrics::CERTIFICATE_BYTES.observe(json.to_string().len() as f64);
    let t0 = Instant::now();
    let outcome = raven_check::check_certificate_json(json);
    crate::metrics::REPLAY_MILLIS.observe(t0.elapsed().as_secs_f64() * 1e3);
    match outcome {
        Ok(_) => true,
        Err(e) => {
            crate::metrics::SPOT_CHECK_FAILURES.inc();
            eprintln!("raven-serve: certificate spot check failed: {e}");
            false
        }
    }
}

/// Serializes an emitted certificate and runs the spot-check hook on it.
/// Returns the JSON (chaos may tamper it first — that is the point: the
/// spot check must catch the tamper) and the spot-check outcome.
fn certificate_json(cert: Option<raven::Certificate>) -> (Option<Json>, bool) {
    let Some(cert) = cert else {
        return (None, true);
    };
    let mut json = cert.to_json();
    if crate::chaos::take_cert_tamper() {
        crate::chaos::tamper_certificate(&mut json);
    }
    let ok = spot_check_certificate(&json);
    (Some(json), ok)
}

/// Computes the verdict for `spec` (expensive; runs on a worker thread
/// or inside a remote `raven_worker` process).
///
/// The solve deadline starts ticking here, when a worker picks the job
/// up. On exhaustion the verifier degrades to the strongest sound verdict
/// it has (MILP incumbent bound → LP relaxation → analysis bounds)
/// instead of erroring.
///
/// Returns an error only when the run was cancelled — through either of
/// the two cancel flags (server shutdown and the job's own watchdog flag
/// locally; the worker stop flag remotely).
fn compute_verdict(
    spec: &VerifySpec,
    deadline: Option<Duration>,
    cancels: (&AtomicBool, &AtomicBool),
) -> Result<Computed, String> {
    crate::chaos::job_panic_point();
    crate::chaos::job_abort_point();
    let mut hooks = RunHooks::default()
        .with_cancel(cancels.0)
        .with_cancel(cancels.1);
    // Attach the request's trace context (installed on this thread by the
    // queue locally, or by the fleet worker loop remotely) so the phase
    // spans and solver events land in the owning trace even when the
    // verifier fans out to helper threads.
    if let Some(ctx) = raven_obs::current_trace() {
        hooks = hooks.with_trace(ctx);
    }
    if let Some(d) = deadline {
        // The artificial `delay_millis` sleep below counts against the
        // deadline, exactly like a slow solve would.
        hooks = hooks.with_deadline_in(d);
    }
    let start = Instant::now();
    if spec.delay_millis > 0 {
        std::thread::sleep(std::time::Duration::from_millis(spec.delay_millis));
    }
    let cancelled = || "verification cancelled".to_string();
    let (verdict, tier_millis, degraded, certificate) = match &spec.payload {
        Payload::Uap { inputs, labels } => {
            let problem = UapProblem {
                plan: spec.entry.plan.clone(),
                inputs: inputs.clone(),
                labels: labels.clone(),
                eps: spec.eps,
            };
            let (res, cert) = if spec.certificate {
                verify_uap_certified_with_hooks(&problem, spec.method, &spec.config, &hooks)
                    .ok_or_else(cancelled)?
            } else {
                let res = verify_uap_with_hooks(&problem, spec.method, &spec.config, &hooks)
                    .ok_or_else(cancelled)?;
                (res, None)
            };
            (
                report::uap_verdict_json(problem.k(), problem.eps, &res),
                res.tier_millis,
                res.degraded,
                certificate_json(cert),
            )
        }
        Payload::Mono {
            center,
            feature,
            tau,
            increasing,
            output_weights,
        } => {
            let problem = MonotonicityProblem {
                plan: spec.entry.plan.clone(),
                center: center.clone(),
                eps: spec.eps,
                feature: *feature,
                tau: *tau,
                output_weights: output_weights.clone(),
                increasing: *increasing,
            };
            let (res, cert) = if spec.certificate {
                verify_monotonicity_certified_with_hooks(
                    &problem,
                    spec.method,
                    &spec.config,
                    &hooks,
                )
                .ok_or_else(cancelled)?
            } else {
                let res =
                    verify_monotonicity_with_hooks(&problem, spec.method, &spec.config, &hooks)
                        .ok_or_else(cancelled)?;
                (res, None)
            };
            (
                report::mono_verdict_json(&problem, &res),
                res.tier_millis,
                res.degraded,
                certificate_json(cert),
            )
        }
    };
    let (certificate, spot_ok) = certificate;
    Ok(Computed {
        verdict: verdict.to_string(),
        solve_millis: start.elapsed().as_secs_f64() * 1e3,
        tier_millis,
        degraded,
        certificate,
        spot_ok,
    })
}

/// Builds the response envelope around a verdict. The certificate (when
/// requested) travels as a *sibling* of `result`, never inside it: the
/// verdict bytes must stay identical with and without certification.
fn envelope(
    spec: &VerifySpec,
    verdict: &str,
    solve_millis: f64,
    tier_millis: &TierMillis,
    cached: bool,
    certificate: Option<Json>,
) -> Json {
    let result = Json::parse(verdict).expect("verdicts are valid json");
    let mut fields = vec![
        ("kind", Json::from(spec.property_name())),
        ("model", Json::from(spec.entry.name.as_str())),
        ("model_hash", Json::from(spec.entry.hash_hex())),
        ("result", result),
        ("solve_millis", Json::from(solve_millis)),
        ("tier_millis", report::tier_millis_json(tier_millis)),
        ("cached", Json::from(cached)),
    ];
    if spec.certificate {
        // Always present when requested; JSON null when the run produced
        // no certifiable evidence.
        fields.push(("certificate", certificate.unwrap_or(Json::Null)));
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Whether a job is worth shipping to the fleet: the solver-backed
/// methods are the expensive ones; pure-analysis methods finish in
/// microseconds locally, and the artificial `delay_millis` knob exists to
/// occupy *this* server's workers in backpressure tests.
fn fleet_eligible(spec: &VerifySpec) -> bool {
    matches!(spec.method, Method::IoLp | Method::Raven) && spec.delay_millis == 0
}

/// The expectation the certificate gate checks a remote result against,
/// derived from the server's own parse of the request.
fn expected_for(spec: &VerifySpec) -> Expected {
    let kind = match &spec.payload {
        Payload::Uap { inputs, .. } => ExpectedKind::Uap {
            k: inputs.len(),
            eps: spec.eps,
        },
        Payload::Mono {
            feature,
            tau,
            increasing,
            ..
        } => ExpectedKind::Mono {
            eps: spec.eps,
            feature: *feature,
            tau: *tau,
            increasing: *increasing,
        },
    };
    Expected {
        property: spec.property_name().to_string(),
        model_hash: spec.entry.hash_hex(),
        want_certificate: spec.certificate,
        kind,
    }
}

/// Caches an accepted remote envelope under the job's cache key, exactly
/// as a local solve would have been (only when not degraded).
fn cache_remote(state: &Arc<ServerState>, key: CacheKey, env: &Json) {
    let Some(result) = env.get("result") else {
        return;
    };
    if result.get("degraded").and_then(Json::as_bool) != Some(false) {
        return;
    }
    let tier = |field: &str| {
        env.get("tier_millis")
            .and_then(|t| t.get(field))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    state.cache.put(
        key,
        CachedResult {
            verdict: result.to_string(),
            solve_millis: env
                .get("solve_millis")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            tier_millis: TierMillis {
                analysis: tier("analysis"),
                lp: tier("lp"),
                milp: tier("milp"),
            },
            certificate: None,
        },
    );
}

/// The job closure body: cache-aware verdict computation, with fleet
/// dispatch when workers are attached and local compute as the fallback.
fn run_verify(
    state: &Arc<ServerState>,
    id: u64,
    spec: &VerifySpec,
    check_cache: bool,
    job_cancel: &AtomicBool,
) -> Result<Json, String> {
    let key = spec.cache_key();
    // Cached entries carry no certificate, so a certificate request must
    // recompute (the verdict it returns is still byte-identical).
    if check_cache && !spec.certificate {
        if let Some(hit) = state.cache.get(&key) {
            return Ok(envelope(
                spec,
                &hit.verdict,
                hit.solve_millis,
                &hit.tier_millis,
                true,
                None,
            ));
        }
    }
    let deadline = spec
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.default_deadline);
    if let Some(fleet) = &state.fleet {
        if fleet_eligible(spec) {
            // Saturation-aware admission: an idle local pool answers
            // faster than a dispatch round trip, so remote dispatch is
            // preferred only once every local worker is occupied or jobs
            // are queued behind them. `--fleet-when-saturated 0` restores
            // the old always-dispatch behavior.
            if fleet.config().when_saturated && !pool_saturated(state) {
                crate::metrics::FLEET_KEPT_LOCAL.inc();
            } else {
                let model_hash = spec.entry.hash_hex();
                let ctx = DispatchCtx {
                    job_id: id,
                    property: spec.property_name(),
                    body: &spec.raw_body,
                    model: &spec.entry.name,
                    model_hash: &model_hash,
                    deadline_ms: deadline.map(|d| d.as_millis() as u64),
                    journal: state.journal.as_deref(),
                    trace: raven_obs::current_trace(),
                };
                let shards = fleet.config().shards;
                if shards > 1 && matches!(spec.payload, Payload::Uap { .. }) {
                    // Shard-granular dispatch: a failed or Byzantine
                    // worker costs one shard's re-solve, never the job.
                    return run_verify_sharded(
                        state, fleet, &ctx, spec, key, shards, deadline, job_cancel,
                    );
                }
                if let Some(env) = fleet.dispatch(&ctx, &expected_for(spec), job_cancel) {
                    // The gate already pinned the envelope to this job's
                    // spec; an accepted remote verdict caches like a
                    // local one.
                    cache_remote(state, key, &env);
                    return Ok(env);
                }
            }
        }
    }
    let mut computed = compute_verdict(spec, deadline, (&state.cancel, job_cancel))?;
    if state.strict_certificates && !computed.spot_ok {
        // Strict mode: never serve a response whose certificate failed its
        // own spot check — recompute once and serve that run instead (its
        // certificate gets its own spot check; a second failure is served
        // regardless, since retrying a deterministic bug forever is worse).
        crate::metrics::STRICT_RECOMPUTES.inc();
        computed = compute_verdict(spec, deadline, (&state.cancel, job_cancel))?;
    }
    // Degraded verdicts are budget-dependent, not query-determined: the
    // same query with a longer deadline yields a strictly better answer,
    // so caching one would serve needlessly weak verdicts forever.
    if !computed.degraded {
        state.cache.put(
            key,
            CachedResult {
                verdict: computed.verdict.clone(),
                solve_millis: computed.solve_millis,
                tier_millis: computed.tier_millis,
                certificate: None,
            },
        );
    }
    Ok(envelope(
        spec,
        &computed.verdict,
        computed.solve_millis,
        &computed.tier_millis,
        false,
        computed.certificate,
    ))
}

/// Whether the local worker pool is saturated: jobs queued, or every
/// worker occupied (the calling job itself holds one right now, so a
/// single-worker pool is always saturated from inside a job).
fn pool_saturated(state: &Arc<ServerState>) -> bool {
    let stats = state.queue.stats();
    stats.queued > 0 || stats.running >= state.pool_workers
}

/// The sharded dispatch-and-merge path for a fleet-eligible UAP job:
/// split the perturbation region into `shards` sub-boxes along the first
/// input coordinate, solve every shard independently (remote with
/// retries, locally once remote attempts are exhausted), and merge the
/// per-shard verdicts soundly. The merged verdict bytes are identical to
/// an unsharded run in the fully-verified regime, and never *looser* than
/// one elsewhere (each shard optimizes over a subset of the region).
#[allow(clippy::too_many_arguments)]
fn run_verify_sharded(
    state: &Arc<ServerState>,
    fleet: &Arc<crate::fleet::Fleet>,
    ctx: &DispatchCtx<'_>,
    spec: &VerifySpec,
    key: CacheKey,
    shards: u32,
    deadline: Option<Duration>,
    job_cancel: &AtomicBool,
) -> Result<Json, String> {
    let Payload::Uap { inputs, .. } = &spec.payload else {
        unreachable!("only uap jobs are sharded");
    };
    let k = inputs.len();
    let expected = expected_for(spec);
    let start = Instant::now();
    let trace = raven_obs::current_trace();
    // One thread per shard: concurrent dispatches claim distinct workers,
    // and a shard that falls back to local compute does not serialize
    // behind the others' round trips.
    let outcomes: Vec<Result<(UapResult, Option<Json>), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let expected = &expected;
                scope.spawn(move || {
                    // The scope threads inherit no thread-locals: install
                    // the request's trace so the per-shard span (and any
                    // stitched worker spans) land under `fleet_dispatch`.
                    raven_obs::set_current_trace(trace);
                    let outcome = {
                        let _span = raven_obs::span("fleet_shard");
                        solve_one_shard(
                            state, fleet, ctx, expected, spec, shard, shards, deadline, job_cancel,
                        )
                    };
                    raven_obs::set_current_trace(None);
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("shard solve panicked".to_string()))
            })
            .collect()
    });
    let mut parts = Vec::with_capacity(shards as usize);
    let mut certs = Vec::with_capacity(shards as usize);
    for outcome in outcomes {
        let (res, cert) = outcome?;
        parts.push(res);
        certs.push(cert);
    }
    let merged = merge_uap_results(k, &parts);
    crate::metrics::FLEET_SHARD_MERGES.inc();
    let verdict = report::uap_verdict_json(k, spec.eps, &merged).to_string();
    let merged_cert = spec
        .certificate
        .then(|| merged_certificate_json(k, spec.eps, &parts, &certs, &merged))
        .flatten();
    // The merged verdict caches exactly like a local solve would have
    // (degraded merges are budget-dependent and never cached).
    if !merged.degraded {
        state.cache.put(
            key,
            CachedResult {
                verdict: verdict.clone(),
                solve_millis: start.elapsed().as_secs_f64() * 1e3,
                tier_millis: merged.tier_millis,
                certificate: None,
            },
        );
    }
    Ok(envelope(
        spec,
        &verdict,
        start.elapsed().as_secs_f64() * 1e3,
        &merged.tier_millis,
        false,
        merged_cert,
    ))
}

/// Solves one shard: remote dispatch with retries first, local compute on
/// exhaustion. Returns the shard's result plus its certificate (always
/// present for accepted remote shards — the gate demanded the proof;
/// present for local shards only when the client asked for one).
#[allow(clippy::too_many_arguments)]
fn solve_one_shard(
    state: &Arc<ServerState>,
    fleet: &crate::fleet::Fleet,
    ctx: &DispatchCtx<'_>,
    expected: &Expected,
    spec: &VerifySpec,
    shard: u32,
    shards: u32,
    deadline: Option<Duration>,
    job_cancel: &AtomicBool,
) -> Result<(UapResult, Option<Json>), String> {
    if let Some((env, cert)) = fleet.dispatch_shard(ctx, expected, job_cancel, shard, shards) {
        let res = parse_remote_uap_result(spec, &env)?;
        let cert = match cert {
            Json::Null => None,
            c => Some(c),
        };
        return Ok((res, cert));
    }
    // Remote attempts exhausted (or no eligible worker): this shard is
    // solved locally; the other shards' accepted results are kept.
    let Payload::Uap { inputs, labels } = &spec.payload else {
        unreachable!("only uap jobs are sharded");
    };
    let problem = UapProblem {
        plan: spec.entry.plan.clone(),
        inputs: inputs.clone(),
        labels: labels.clone(),
        eps: spec.eps,
    };
    let mut hooks = RunHooks::default()
        .with_cancel(&state.cancel)
        .with_cancel(job_cancel);
    if let Some(tctx) = raven_obs::current_trace() {
        hooks = hooks.with_trace(tctx);
    }
    if let Some(d) = deadline {
        hooks = hooks.with_deadline_in(d);
    }
    let (res, cert) = verify_uap_shard_certified_with_hooks(
        &problem,
        shard as usize,
        shards as usize,
        spec.method,
        &spec.config,
        &hooks,
        spec.certificate,
    )
    .ok_or_else(|| "verification cancelled".to_string())?;
    let (cert_json, _spot_ok) = certificate_json(cert);
    Ok((res, cert_json))
}

/// Reconstructs a [`UapResult`] from an accepted remote shard envelope.
/// The certificate gate already pinned every field to the dispatched spec
/// and the replayed proof, so this is a format conversion, not a trust
/// decision.
fn parse_remote_uap_result(spec: &VerifySpec, env: &Json) -> Result<UapResult, String> {
    let result = env
        .get("result")
        .ok_or_else(|| "remote shard envelope has no result".to_string())?;
    let f = |field: &str| {
        result
            .get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("remote shard result missing {field:?}"))
    };
    let tier = match result.get("tier").and_then(Json::as_str) {
        Some("milp") => Tier::Milp,
        Some("lp") => Tier::Lp,
        Some("analysis") => Tier::Analysis,
        other => return Err(format!("remote shard result has unknown tier {other:?}")),
    };
    let tier_ms = |field: &str| {
        env.get("tier_millis")
            .and_then(|t| t.get(field))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    Ok(UapResult {
        method: spec.method,
        worst_case_accuracy: f("worst_case_accuracy")?,
        worst_case_hamming: f("worst_case_hamming")?,
        individually_verified: f("individually_verified")? as usize,
        solve_millis: env
            .get("solve_millis")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        lp_rows: f("lp_rows")? as usize,
        lp_vars: f("lp_vars")? as usize,
        exact: result.get("exact").and_then(Json::as_bool).unwrap_or(false),
        counterexample_delta: result
            .get("counterexample_delta")
            .and_then(Json::as_f64_vec),
        tier,
        degraded: result
            .get("degraded")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        tier_millis: TierMillis {
            analysis: tier_ms("analysis"),
            lp: tier_ms("lp"),
            milp: tier_ms("milp"),
        },
    })
}

/// Assembles the merged certificate of a sharded run: every shard's proof
/// plus the recorded merge step, replayable end-to-end by `raven_check`
/// (which re-derives the merge and rejects any claim tighter than the
/// shard minima imply). Returns `None` when any shard lacks a proof.
fn merged_certificate_json(
    k: usize,
    eps: f64,
    parts: &[UapResult],
    certs: &[Option<Json>],
    merged: &UapResult,
) -> Option<Json> {
    let mut claims = Vec::with_capacity(parts.len());
    let mut shard_certs = Vec::with_capacity(parts.len());
    for (res, cert) in parts.iter().zip(certs) {
        let cert = cert.as_ref()?;
        let parsed = match raven_check::Certificate::from_json(cert) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("raven-serve: shard certificate no longer parses: {e}");
                return None;
            }
        };
        claims.push(raven_check::ShardClaim {
            worst_case_hamming: res.worst_case_hamming,
            individually_verified: res.individually_verified,
            tier: res.tier.name().to_string(),
            degraded: res.degraded,
        });
        shard_certs.push(parsed);
    }
    let merged_cert = raven_check::MergedCertificate {
        k,
        eps,
        claims,
        merged_hamming: merged.worst_case_hamming,
        merged_individually_verified: merged.individually_verified,
        merged_accuracy: merged.worst_case_accuracy,
        shards: shard_certs,
    };
    let json = merged_cert.to_json();
    // Spot-checked like a locally emitted certificate: counted and logged
    // on failure, never blocking (the verdict is not derived from it).
    let _ = spot_check_certificate(&json);
    Some(json)
}

/// Computes one dispatched job inside a `raven_worker` process: parse the
/// forwarded body exactly as the server did, force certificate emission
/// (the server's gate requires a proof regardless of what the client
/// asked for), and return the envelope — with the *client's* certificate
/// preference — plus the certificate for the result frame.
#[allow(clippy::too_many_arguments)]
pub(crate) fn remote_compute(
    registry: &ModelRegistry,
    job_threads: usize,
    property: &str,
    body: &[u8],
    deadline_ms: Option<u64>,
    shard: Option<(u32, u32)>,
    cache: &crate::cache::ResultCache,
    stop: &AtomicBool,
) -> Result<(Json, Option<Json>), String> {
    let property =
        Property::from_name(property).ok_or_else(|| format!("unknown property {property:?}"))?;
    let mut spec = parse_spec(registry, job_threads, body, property)
        .map_err(|ParseFail(_, msg)| format!("job body does not parse: {msg}"))?;
    let want_certificate = spec.certificate;
    spec.certificate = true;
    // Worker-side cache key: the server's own key with the shard
    // assignment folded into the payload hash, so shard i/n and j/n of
    // the same job never alias.
    let key = {
        let mut key = spec.cache_key();
        if let Some((i, n)) = shard {
            let mut h = PayloadHasher::new();
            h.usize(key.batch_hash as usize)
                .usize(i as usize)
                .usize(n as usize);
            key.batch_hash = h.finish();
        }
        key
    };
    if let Some(hit) = cache.get(&key) {
        // A retried shard on a warm worker skips the re-solve: the
        // envelope is re-assembled fresh (so `cached` stays false — the
        // gate demands fresh-computation semantics) around the identical
        // verdict and certificate bytes.
        let certificate = hit.certificate.as_deref().and_then(|c| Json::parse(c).ok());
        spec.certificate = want_certificate;
        let env = envelope(
            &spec,
            &hit.verdict,
            hit.solve_millis,
            &hit.tier_millis,
            false,
            want_certificate.then(|| certificate.clone()).flatten(),
        );
        return Ok((env, certificate));
    }
    // The server ships the *effective* deadline (request override or
    // server default already applied); the body's own field is ignored.
    let deadline = deadline_ms.map(Duration::from_millis);
    let computed = match shard {
        Some((i, n)) => compute_shard_verdict(&spec, i, n, deadline, (stop, stop))?,
        None => compute_verdict(&spec, deadline, (stop, stop))?,
    };
    spec.certificate = want_certificate;
    // Degraded runs are budget-dependent and never cached; runs without a
    // proof are not worth caching either — the gate would reject a replay
    // served without one.
    if !computed.degraded && computed.certificate.is_some() {
        cache.put(
            key,
            CachedResult {
                verdict: computed.verdict.clone(),
                solve_millis: computed.solve_millis,
                tier_millis: computed.tier_millis,
                certificate: computed.certificate.as_ref().map(Json::to_string),
            },
        );
    }
    let env = envelope(
        &spec,
        &computed.verdict,
        computed.solve_millis,
        &computed.tier_millis,
        false,
        want_certificate
            .then(|| computed.certificate.clone())
            .flatten(),
    );
    Ok((env, computed.certificate))
}

/// [`compute_verdict`] for one input-region shard of a UAP job (the
/// remote worker path). The shard verdict has the same shape as a
/// whole-job verdict — `eps` reports the full radius; only the solved
/// sub-box differs — so the certificate gate and the merge layer treat
/// it uniformly.
fn compute_shard_verdict(
    spec: &VerifySpec,
    shard: u32,
    shards: u32,
    deadline: Option<Duration>,
    cancels: (&AtomicBool, &AtomicBool),
) -> Result<Computed, String> {
    let Payload::Uap { inputs, labels } = &spec.payload else {
        return Err("only uap jobs are sharded".to_string());
    };
    crate::chaos::job_panic_point();
    crate::chaos::job_abort_point();
    let mut hooks = RunHooks::default()
        .with_cancel(cancels.0)
        .with_cancel(cancels.1);
    if let Some(ctx) = raven_obs::current_trace() {
        hooks = hooks.with_trace(ctx);
    }
    if let Some(d) = deadline {
        hooks = hooks.with_deadline_in(d);
    }
    let start = Instant::now();
    let problem = UapProblem {
        plan: spec.entry.plan.clone(),
        inputs: inputs.clone(),
        labels: labels.clone(),
        eps: spec.eps,
    };
    let (res, cert) = verify_uap_shard_certified_with_hooks(
        &problem,
        shard as usize,
        shards as usize,
        spec.method,
        &spec.config,
        &hooks,
        spec.certificate,
    )
    .ok_or_else(|| "verification cancelled".to_string())?;
    let verdict = report::uap_verdict_json(problem.k(), problem.eps, &res);
    let (certificate, spot_ok) = certificate_json(cert);
    Ok(Computed {
        verdict: verdict.to_string(),
        solve_millis: start.elapsed().as_secs_f64() * 1e3,
        tier_millis: res.tier_millis,
        degraded: res.degraded,
        certificate,
        spot_ok,
    })
}

/// Builds the per-job scheduling metadata and queue closure for `spec`.
fn job_for(
    state: &Arc<ServerState>,
    id: u64,
    spec: VerifySpec,
    check_cache: bool,
    trace: Option<raven_obs::TraceCtx>,
) -> (JobMeta, JobFn) {
    let cancel = Arc::new(AtomicBool::new(false));
    let meta = JobMeta {
        deadline: spec
            .deadline_ms
            .map(Duration::from_millis)
            .or(state.default_deadline),
        cancel: Some(cancel.clone()),
        trace,
    };
    let job_state = Arc::clone(state);
    let job: JobFn = Box::new(move || {
        // `begin` reads the context the queue installed on this thread; on
        // an untraced job (recovery resubmits) it is a no-op `None`.
        let job_trace = crate::trace::JobTrace::begin();
        let mut result = {
            let _span = raven_obs::span("job");
            run_verify(&job_state, id, &spec, check_cache, &cancel)
        };
        if let Some(t) = job_trace {
            t.finish(
                &job_state.traces,
                id,
                spec.property_name(),
                &spec.entry.name,
                &mut result,
            );
        }
        result
    });
    (meta, job)
}

/// Outcome of admitting a submission through the idempotency layer.
enum Admitted {
    /// A fresh job was accepted.
    New(u64, Arc<JobSlot>),
    /// The idempotency key matched an earlier submission: its job, with
    /// whatever state it has reached. No new solver work was enqueued.
    Existing(u64, Arc<JobSlot>),
}

/// Admits one verification submission: idempotency-key dedup, queue
/// submission, jobs-map registration, and the journal `Submitted` record
/// (fsync'd before the ack).
/// Mints the request's trace context: an incoming `traceparent` header
/// continues the caller's trace id; otherwise a fresh id is minted. The
/// context's parent span doubles as the synthesized `request` root span.
fn begin_request_trace(req: &Request) -> raven_obs::TraceCtx {
    let trace_id = req
        .traceparent
        .as_deref()
        .and_then(raven_obs::parse_traceparent)
        .map_or_else(raven_obs::mint_trace_id, |(id, _span)| id);
    raven_obs::begin_trace(trace_id, raven_obs::next_span_id())
}

fn admit(
    state: &Arc<ServerState>,
    req: &Request,
    spec: VerifySpec,
    check_cache: bool,
    trace: Option<raven_obs::TraceCtx>,
) -> Result<Admitted, Reply> {
    let key = req
        .idempotency_key
        .clone()
        .or_else(|| spec.idempotency_key.clone());
    let property = spec.property_name();
    // The key map lock is held across submission so two racing retries
    // with the same key cannot both enqueue solver work.
    let mut key_guard = key
        .as_ref()
        .map(|_| state.idempotency.lock().expect("idempotency lock"));
    if let (Some(k), Some(map)) = (&key, key_guard.as_deref()) {
        if let Some(&existing) = map.get(k) {
            if let Some(slot) = state
                .jobs
                .lock()
                .expect("jobs lock")
                .get(&existing)
                .cloned()
            {
                crate::metrics::IDEMPOTENT_HITS.inc();
                // No new job runs, so this request's trace buffer would
                // leak — release it.
                if let Some(ctx) = trace {
                    raven_obs::discard_trace(ctx);
                }
                return Ok(Admitted::Existing(existing, slot));
            }
        }
    }
    let id = state.next_job_id.fetch_add(1, Ordering::Relaxed);
    let (meta, job) = job_for(state, id, spec, check_cache, trace);
    let slot = match state.queue.submit(id, meta, job) {
        Ok(slot) => slot,
        Err(_) => {
            // Rejected before any worker saw it: the queue's terminal
            // backstop never fires, so release the buffer here.
            if let Some(ctx) = trace {
                raven_obs::discard_trace(ctx);
            }
            return Err(queue_full_reply());
        }
    };
    state
        .jobs
        .lock()
        .expect("jobs lock")
        .insert(id, slot.clone());
    if let (Some(k), Some(map)) = (&key, key_guard.as_deref_mut()) {
        map.insert(k.clone(), id);
    }
    drop(key_guard);
    if let Some(journal) = &state.journal {
        let record = Record::Submitted {
            id,
            property: property.to_string(),
            body: String::from_utf8_lossy(&req.body).into_owned(),
            key,
        };
        if let Err(e) = journal.append(&record, true) {
            // The job runs regardless (it cannot be un-queued), but a
            // submission the journal failed to capture must not be acked
            // as durable.
            return Err(error_reply(500, &format!("journal append failed: {e}")));
        }
    }
    Ok(Admitted::New(id, slot))
}

/// The 409 served for a quarantined job.
fn quarantined_reply() -> Reply {
    error_reply(
        409,
        "job is quarantined: it crashed the server repeatedly and will not \
         be retried (resubmit with a new idempotency key to try again)",
    )
}

fn verify_sync(state: &Arc<ServerState>, req: &Request, property: Property) -> Reply {
    let spec = match parse_spec(&state.registry, state.job_threads, &req.body, property) {
        Ok(spec) => spec,
        Err(ParseFail(status, msg)) => return error_reply(status, &msg),
    };
    // Fast path: cache hits are answered without consuming a queue slot
    // (and without a journal record — there is nothing to recover).
    // Certificate requests skip it: cached entries carry no certificate.
    if !spec.certificate {
        if let Some(hit) = state.cache.get(&spec.cache_key()) {
            return Reply::json(
                200,
                envelope(
                    &spec,
                    &hit.verdict,
                    hit.solve_millis,
                    &hit.tier_millis,
                    true,
                    None,
                )
                .to_string(),
            );
        }
    }
    let trace = begin_request_trace(req);
    let traceparent = trace.traceparent();
    let slot = match admit(state, req, spec, false, Some(trace)) {
        Ok(Admitted::New(_, slot) | Admitted::Existing(_, slot)) => slot,
        Err(reply) => return reply,
    };
    let reply = match slot.wait_terminal(state.request_timeout) {
        Some(JobState::Done(response)) => Reply::json(200, response.to_string()),
        Some(JobState::Failed(message)) => error_reply(500, &message),
        Some(JobState::Quarantined) => quarantined_reply(),
        Some(_) => unreachable!("wait_terminal only returns terminal states"),
        // On timeout the job (and its trace) is still running; the queue's
        // terminal backstop releases the buffer when it finishes.
        None => error_reply(
            504,
            "verification exceeded the request timeout (submit via /v1/jobs to poll instead)",
        ),
    };
    reply.with_header("traceparent", traceparent)
}

fn submit_job(state: &Arc<ServerState>, req: &Request) -> Reply {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_reply(400, "body is not utf-8"),
    };
    let json = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => return error_reply(400, &format!("invalid json: {e}")),
    };
    let property = match json.get("property").and_then(Json::as_str) {
        Some(name) => match Property::from_name(name) {
            Some(p) => p,
            None => {
                return error_reply(
                    400,
                    "field \"property\" must be \"uap\" or \"monotonicity\"",
                )
            }
        },
        None => {
            return error_reply(
                400,
                "missing field \"property\" (\"uap\" or \"monotonicity\")",
            )
        }
    };
    let spec = match parse_spec(&state.registry, state.job_threads, &req.body, property) {
        Ok(spec) => spec,
        Err(ParseFail(status, msg)) => return error_reply(status, &msg),
    };
    let trace = begin_request_trace(req);
    let traceparent = trace.traceparent();
    match admit(state, req, spec, true, Some(trace)) {
        Ok(Admitted::New(id, _)) => {
            let body = Json::obj([
                ("job_id", Json::from(id as f64)),
                ("status", Json::from("queued")),
            ]);
            Reply::json(202, body.to_string()).with_header("traceparent", traceparent)
        }
        Ok(Admitted::Existing(id, slot)) => {
            // Idempotent replay: report the original job, not a new one.
            let body = Json::obj([
                ("job_id", Json::from(id as f64)),
                ("status", Json::from(slot.state().status())),
                ("idempotent", Json::from(true)),
            ]);
            Reply::json(200, body.to_string())
        }
        Err(reply) => reply,
    }
}

/// Rebuilds a recovered non-terminal job from its journaled submit record
/// and re-enqueues it under its original id (restart recovery path).
pub(crate) fn resubmit_recovered(
    state: &Arc<ServerState>,
    id: u64,
    property: &str,
    body: &str,
) -> Result<Arc<JobSlot>, String> {
    let property = Property::from_name(property)
        .ok_or_else(|| format!("journal names unknown property {property:?}"))?;
    let spec = parse_spec(
        &state.registry,
        state.job_threads,
        body.as_bytes(),
        property,
    )
    .map_err(|ParseFail(_, msg)| format!("journaled body no longer parses: {msg}"))?;
    // Recovered jobs run untraced: the original request's context died
    // with the crashed process.
    let (meta, job) = job_for(state, id, spec, true, None);
    state
        .queue
        .submit(id, meta, job)
        .map_err(|_| "queue full during recovery".to_string())
}

/// Restores a replayed cacheable verdict into the LRU so post-restart
/// queries hit the cache instead of re-solving. Returns whether the
/// envelope was restored (a journal from before a model was unloaded may
/// no longer parse — skipped, not fatal).
pub(crate) fn restore_cached_verdict(
    state: &Arc<ServerState>,
    property: &str,
    body: &str,
    envelope: &Json,
) -> bool {
    let Some(property) = Property::from_name(property) else {
        return false;
    };
    let Ok(spec) = parse_spec(
        &state.registry,
        state.job_threads,
        body.as_bytes(),
        property,
    ) else {
        return false;
    };
    let Some(result) = envelope.get("result") else {
        return false;
    };
    let tier = |field: &str| {
        envelope
            .get("tier_millis")
            .and_then(|t| t.get(field))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    state.cache.put(
        spec.cache_key(),
        CachedResult {
            verdict: result.to_string(),
            solve_millis: envelope
                .get("solve_millis")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            tier_millis: TierMillis {
                analysis: tier("analysis"),
                lp: tier("lp"),
                milp: tier("milp"),
            },
            certificate: None,
        },
    );
    true
}

fn job_status(state: &Arc<ServerState>, path: &str) -> Reply {
    let id: u64 = match path.strip_prefix("/v1/jobs/").and_then(|s| s.parse().ok()) {
        Some(id) => id,
        None => return error_reply(400, "job id must be an integer"),
    };
    let slot = match state.jobs.lock().expect("jobs lock").get(&id).cloned() {
        Some(slot) => slot,
        None => return error_reply(404, "no such job"),
    };
    let job_state = slot.state();
    let (result, error) = match &job_state {
        JobState::Done(response) => (response.clone(), Json::Null),
        JobState::Failed(message) => (Json::Null, Json::from(message.as_str())),
        JobState::Quarantined => (
            Json::Null,
            Json::from("quarantined: crashed the server repeatedly; will not be retried"),
        ),
        _ => (Json::Null, Json::Null),
    };
    let body = Json::obj([
        ("job_id", Json::from(id as f64)),
        ("status", Json::from(job_state.status())),
        ("result", result),
        ("error", error),
    ]);
    Reply::json(200, body.to_string())
}
