//! Model registry: networks loaded once, keyed by name + content hash.
//!
//! The one-shot CLI pays model load and plan lowering on every query; the
//! server pays them once at startup. Each entry pins the network, its
//! lowered [`AnalysisPlan`], and the [`network_fingerprint`] content hash
//! that namespaces the result cache — so a model file edited and reloaded
//! under the same name can never alias stale cached verdicts.

use raven_nn::{load_network, network_fingerprint, AnalysisPlan, Network};
use std::path::Path;
use std::sync::Arc;

/// One loaded model.
#[derive(Debug)]
pub struct ModelEntry {
    /// Registry name (the file stem for disk-loaded models).
    pub name: String,
    /// Content hash of the canonical serialization.
    pub hash: u64,
    /// The executable network.
    pub net: Network,
    /// The analysis lowering, computed once.
    pub plan: AnalysisPlan,
}

impl ModelEntry {
    /// The content hash as the fixed-width hex string used in API
    /// responses and cache diagnostics.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// An immutable set of models, resolved by name.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: Vec<Arc<ModelEntry>>,
}

impl ModelRegistry {
    /// An empty registry (useful for in-process tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a network under `name`, replacing any previous entry with
    /// the same name.
    pub fn add_network(&mut self, name: &str, net: Network) {
        self.entries.retain(|e| e.name != name);
        let entry = ModelEntry {
            name: name.to_string(),
            hash: network_fingerprint(&net),
            plan: net.to_plan(),
            net,
        };
        self.entries.push(Arc::new(entry));
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Loads every `*.net` file in `dir` (non-recursive), keyed by file
    /// stem.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending file on I/O or parse
    /// failure — a server must not start with a half-loaded model set.
    pub fn load_dir(dir: &Path) -> Result<Self, String> {
        let mut registry = Self::new();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read models dir {}: {e}", dir.display()))?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "net"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let net =
                load_network(&path).map_err(|e| format!("loading {}: {e}", path.display()))?;
            registry.add_network(&name, net);
        }
        Ok(registry)
    }

    /// Resolves a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.entries.iter().find(|e| e.name == name).cloned()
    }

    /// All entries, sorted by name.
    pub fn entries(&self) -> &[Arc<ModelEntry>] {
        &self.entries
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_nn::{save_network, ActKind, NetworkBuilder};

    fn tiny(seed: u64) -> Network {
        NetworkBuilder::new(2)
            .dense(3, seed)
            .activation(ActKind::Relu)
            .dense(2, seed + 1)
            .build()
    }

    #[test]
    fn add_and_get_resolve_by_name() {
        let mut r = ModelRegistry::new();
        r.add_network("b", tiny(1));
        r.add_network("a", tiny(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.entries()[0].name, "a", "entries are name-sorted");
        let a = r.get("a").unwrap();
        assert_eq!(a.plan.input_dim(), 2);
        assert_eq!(a.hash_hex().len(), 16);
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn replacing_a_model_changes_the_hash() {
        let mut r = ModelRegistry::new();
        r.add_network("m", tiny(1));
        let h1 = r.get("m").unwrap().hash;
        r.add_network("m", tiny(9));
        assert_eq!(r.len(), 1);
        assert_ne!(r.get("m").unwrap().hash, h1);
    }

    #[test]
    fn load_dir_reads_net_files_and_rejects_garbage() {
        let dir = std::env::temp_dir().join("raven_serve_registry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        save_network(&tiny(4), &dir.join("demo.net")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let r = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.get("demo").is_some());
        // A corrupt model file fails the whole load, by design.
        std::fs::write(dir.join("bad.net"), "raven-net v1\ninput 2\ndense oops\n").unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
