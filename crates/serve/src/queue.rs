//! Bounded job queue, worker pool, and watchdog supervision.
//!
//! Every verification — synchronous endpoint or async job — goes through
//! one bounded queue drained by a fixed pool of worker threads, giving the
//! server its load-shedding and reliability properties:
//!
//! * **Backpressure**: `submit` fails immediately when the queue is full;
//!   the API layer turns that into HTTP 429 instead of letting latency
//!   grow without bound.
//! * **Graceful drain**: shutdown stops *admission* but lets workers
//!   finish every job already accepted (running and queued) before
//!   joining — an accepted job is a promise.
//! * **Supervision**: a watchdog thread detects jobs running past
//!   `deadline + grace` (the solver budget should have degraded them; if
//!   it didn't, the solver is wedged) and cancels them through their
//!   per-job cancel flag. Panicked jobs are retried with per-job
//!   exponential backoff (when retries are configured) before failing,
//!   and worker threads that die unexpectedly are respawned.
//! * **Durability hooks**: optional callbacks fire when a worker picks a
//!   job up and when it reaches a terminal state, letting the server
//!   journal `Started`/`Completed`/`Failed` records without the queue
//!   knowing what a journal is.
//!
//! Worker-count resolution reuses `raven::par::resolve_threads` (0 = all
//! cores), the same convention as the in-verifier parallel layer.

use raven_json::Json;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

thread_local! {
    /// 1-based attempt number of the job executing on this worker thread
    /// (0 outside a job) — lets a job body observe that it is a retry.
    static CURRENT_ATTEMPT: Cell<u32> = const { Cell::new(0) };
}

/// The attempt number of the job running on the calling worker thread
/// (1 for a first run, 2+ for panic-recovery retries, 0 outside a job).
pub(crate) fn current_attempt() -> u32 {
    CURRENT_ATTEMPT.with(|a| a.get())
}

/// The work a job performs: produce a response object or an error string.
/// `Fn` (not `FnOnce`) so a panicked attempt can be retried.
pub type JobFn = Box<dyn Fn() -> Result<Json, String> + Send>;

/// Callback fired when a worker picks a job up (once per attempt).
pub type StartedHook = Box<dyn Fn(u64) + Send + Sync>;

/// Callback fired when a job reaches a terminal state.
pub type TerminalHook = Box<dyn Fn(u64, &JobState) + Send + Sync>;

/// Observable lifecycle of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully, response attached.
    Done(Json),
    /// Finished with an error.
    Failed(String),
    /// Poison: replay found it crashed the process repeatedly; it will
    /// not be retried (only set during restart recovery).
    Quarantined,
}

impl JobState {
    /// Short status string used in API responses.
    pub fn status(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Quarantined => "quarantined",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Failed(_) | JobState::Quarantined
        )
    }
}

/// Shared slot a submitter can wait on.
#[derive(Debug)]
pub struct JobSlot {
    state: Mutex<JobState>,
    cv: Condvar,
}

impl JobSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(JobState::Queued),
            cv: Condvar::new(),
        })
    }

    /// A slot pre-set to `state` — restart recovery materializes replayed
    /// terminal jobs (done / failed / quarantined) this way.
    pub fn preset(state: JobState) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(state),
            cv: Condvar::new(),
        })
    }

    fn set(&self, state: JobState) {
        *self.state.lock().expect("job slot lock") = state;
        self.cv.notify_all();
    }

    /// Snapshot of the current state.
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job slot lock").clone()
    }

    /// Blocks until the job reaches a terminal state or `timeout` elapses;
    /// returns `None` on timeout.
    pub fn wait_terminal(&self, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("job slot lock");
        while !state.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (next, wait) = self.cv.wait_timeout(state, left).expect("job slot wait");
            state = next;
            if wait.timed_out() && !state.is_terminal() {
                return None;
            }
        }
        Some(state.clone())
    }
}

/// Per-job scheduling metadata the queue and watchdog act on.
#[derive(Debug, Clone, Default)]
pub struct JobMeta {
    /// The job's solve deadline (measured from worker pickup). The
    /// watchdog kills the job `grace` past it; `None` disables
    /// supervision for this job.
    pub deadline: Option<Duration>,
    /// Per-job cancel flag; the job's `RunHooks` must watch it (the
    /// watchdog sets it to kill a wedged job without touching its
    /// neighbours). `None` makes the job unkillable.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Distributed-trace context minted at admission. The worker installs
    /// it on its thread for the duration of the job (every attempt), so
    /// solver spans attach to the owning request; the queue discards the
    /// trace buffer as a backstop once the job is terminal.
    pub trace: Option<raven_obs::TraceCtx>,
}

/// One accepted-but-not-yet-running job.
struct Pending {
    id: u64,
    job: JobFn,
    slot: Arc<JobSlot>,
    meta: JobMeta,
    /// Completed execution attempts (0 for a fresh job).
    attempts: u32,
    /// Retry backoff: not eligible to run before this instant.
    not_before: Option<Instant>,
    /// Submission time, recorded only while telemetry is enabled (feeds
    /// the queue-wait histogram when a worker picks the job up).
    submitted_at: Option<Instant>,
}

/// A job currently executing on a worker, visible to the watchdog.
struct Running {
    started: Instant,
    meta: JobMeta,
    /// Set by the watchdog when it cancels this job (distinguishes a
    /// watchdog kill from a shutdown cancellation).
    killed: Arc<AtomicBool>,
}

struct QueueInner {
    queue: VecDeque<Pending>,
    running: HashMap<u64, Running>,
    shutdown: bool,
}

/// Counter snapshot for `/v1/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Queue capacity (bound on `queued`).
    pub capacity: usize,
    /// Total accepted submissions.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Panicked attempts re-enqueued with backoff.
    pub retried: u64,
    /// Wedged jobs cancelled by the watchdog.
    pub watchdog_kills: u64,
}

/// Supervision tunables (watchdog + retry policy).
#[derive(Debug, Clone, Copy)]
pub struct Supervision {
    /// How long past a job's deadline the watchdog waits before killing
    /// it. The solver budget should have degraded the job at its
    /// deadline; `grace` later, the solver is assumed wedged.
    pub grace: Duration,
    /// Maximum re-executions of a panicked job before it fails for good.
    pub max_retries: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Self {
            grace: Duration::from_secs(2),
            max_retries: 0,
        }
    }
}

/// Durability callbacks (set once at construction, before any worker runs).
#[derive(Default)]
pub struct QueueHooks {
    /// Fired when a worker picks a job up (once per attempt), before the
    /// job body executes — journal `Started` records hang off this.
    pub on_started: Option<StartedHook>,
    /// Fired when a job reaches a terminal state (after the slot is set).
    pub on_terminal: Option<TerminalHook>,
}

/// The bounded queue; workers are attached by [`JobQueue::spawn_workers`].
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
    supervision: Supervision,
    hooks: QueueHooks,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    watchdog_kills: AtomicU64,
    /// Live worker threads (guard-decremented even on panic-unwind) vs the
    /// target count, compared by the watchdog to respawn dead workers.
    workers_alive: AtomicUsize,
    workers_target: AtomicUsize,
}

/// `submit` failure: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// Decrements `workers_alive` when a worker thread exits for any reason,
/// including a panic unwinding through the worker loop.
struct WorkerGuard<'a>(&'a AtomicUsize);

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl JobQueue {
    /// Creates a queue admitting at most `capacity` waiting jobs, with
    /// default supervision and no durability hooks.
    pub fn new(capacity: usize) -> Arc<Self> {
        Self::with_options(capacity, Supervision::default(), QueueHooks::default())
    }

    /// Creates a queue with explicit supervision tunables and hooks.
    pub fn with_options(capacity: usize, supervision: Supervision, hooks: QueueHooks) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                running: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity,
            supervision,
            hooks,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            watchdog_kills: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(0),
            workers_target: AtomicUsize::new(0),
        })
    }

    /// Submits a job, returning its wait slot.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue holds `capacity` waiting jobs or the
    /// queue is shutting down (no new promises during drain).
    pub fn submit(&self, id: u64, meta: JobMeta, job: JobFn) -> Result<Arc<JobSlot>, QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.shutdown || inner.queue.len() >= self.capacity {
            drop(inner);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            crate::metrics::QUEUE_REJECTED.inc();
            return Err(QueueFull);
        }
        let slot = JobSlot::new();
        inner.queue.push_back(Pending {
            id,
            job,
            slot: slot.clone(),
            meta,
            attempts: 0,
            not_before: None,
            submitted_at: raven_obs::enabled().then(Instant::now),
        });
        crate::metrics::QUEUE_DEPTH.set(inner.queue.len() as i64);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        crate::metrics::QUEUE_SUBMITTED.inc();
        drop(inner);
        self.cv.notify_one();
        Ok(slot)
    }

    /// Spawns `workers` threads draining the queue plus the watchdog
    /// thread supervising them; all handles are returned for joining.
    pub fn spawn_workers(self: &Arc<Self>, workers: usize) -> Vec<std::thread::JoinHandle<()>> {
        let workers = raven::par::resolve_threads(workers);
        self.workers_target.store(workers, Ordering::SeqCst);
        let mut handles: Vec<_> = (0..workers).map(|i| self.spawn_worker(i)).collect();
        let queue = self.clone();
        handles.push(
            std::thread::Builder::new()
                .name("raven-serve-watchdog".to_string())
                .spawn(move || queue.watchdog_loop())
                .expect("spawn watchdog thread"),
        );
        handles
    }

    fn spawn_worker(self: &Arc<Self>, index: usize) -> std::thread::JoinHandle<()> {
        self.workers_alive.fetch_add(1, Ordering::SeqCst);
        let queue = self.clone();
        std::thread::Builder::new()
            .name(format!("raven-serve-worker-{index}"))
            .spawn(move || {
                // Span-stack hygiene on (re)spawn: the watchdog respawns
                // workers through this same path after a fatal panic, and
                // the replacement thread must start with no span ancestry.
                raven_obs::reset_thread_spans();
                let _guard = WorkerGuard(&queue.workers_alive);
                queue.worker_loop();
            })
            .expect("spawn worker thread")
    }

    /// Pops the first runnable pending job (its backoff window elapsed),
    /// or reports how long until one becomes runnable.
    fn pop_ready(inner: &mut QueueInner) -> Result<Pending, Option<Duration>> {
        let now = Instant::now();
        let position = inner
            .queue
            .iter()
            .position(|p| p.not_before.is_none_or(|t| t <= now));
        match position {
            Some(i) => Ok(inner.queue.remove(i).expect("indexed pending job")),
            None => Err(inner
                .queue
                .iter()
                .filter_map(|p| p.not_before)
                .min()
                .map(|t| t.saturating_duration_since(now))),
        }
    }

    fn worker_loop(&self) {
        loop {
            let mut inner = self.inner.lock().expect("queue lock");
            loop {
                match Self::pop_ready(&mut inner) {
                    Ok(pending) => {
                        self.execute(inner, pending);
                        break; // re-enter the outer loop with a fresh lock
                    }
                    Err(Some(wait)) => {
                        // Only backoff jobs remain: sleep until the
                        // earliest becomes runnable (or a new submission
                        // arrives and notifies).
                        let (next, _) = self
                            .cv
                            .wait_timeout(inner, wait)
                            .expect("queue backoff wait");
                        inner = next;
                    }
                    Err(None) => {
                        if inner.shutdown && inner.running.is_empty() {
                            return;
                        }
                        if inner.shutdown {
                            // Other workers may still retry-requeue their
                            // running jobs; poll rather than block forever.
                            let (next, _) = self
                                .cv
                                .wait_timeout(inner, Duration::from_millis(50))
                                .expect("queue drain wait");
                            inner = next;
                        } else {
                            inner = self.cv.wait(inner).expect("queue wait");
                        }
                    }
                }
            }
        }
    }

    /// Runs one picked job to a terminal state or a retry re-enqueue.
    /// Consumes the queue lock (held on entry, released while executing).
    fn execute(&self, mut inner: std::sync::MutexGuard<'_, QueueInner>, pending: Pending) {
        let Pending {
            id,
            job,
            slot,
            meta,
            attempts,
            not_before: _,
            submitted_at,
        } = pending;
        let killed = Arc::new(AtomicBool::new(false));
        inner.running.insert(
            id,
            Running {
                started: Instant::now(),
                meta: meta.clone(),
                killed: killed.clone(),
            },
        );
        crate::metrics::QUEUE_DEPTH.set(inner.queue.len() as i64);
        crate::metrics::WORKERS_BUSY.add(1);
        drop(inner);
        if let Some(t) = submitted_at {
            crate::metrics::WAIT_SECONDS.observe(t.elapsed().as_secs_f64());
        }
        let service_timer = raven_obs::Timer::start(&crate::metrics::SERVICE_SECONDS);
        slot.set(JobState::Running);
        if let Some(hook) = &self.hooks.on_started {
            hook(id);
        }
        // Job-start hygiene: a span leaked by a previous panicked job on
        // this (reused) thread must never parent this job's spans.
        raven_obs::reset_thread_spans();
        // Install the owning request's trace context for the job body (and
        // record which attempt this is, for the tail sampler's retry rule).
        raven_obs::set_current_trace(meta.trace);
        CURRENT_ATTEMPT.with(|a| a.set(attempts + 1));
        // A panicking job must not kill the worker: catch it and either
        // retry (transient, bounded) or record a failure.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&job));
        CURRENT_ATTEMPT.with(|a| a.set(0));
        raven_obs::set_current_trace(None);
        // A panic unwound past the job's spans without popping cleanly in
        // every case; clear again so the stack is empty either way.
        raven_obs::reset_thread_spans();
        drop(service_timer);
        crate::metrics::WORKERS_BUSY.sub(1);
        let attempts = attempts + 1;
        let terminal = match outcome {
            Ok(Ok(response)) => Some(JobState::Done(response)),
            Ok(Err(message)) => {
                if killed.load(Ordering::SeqCst) {
                    // The run was cancelled by the watchdog, not shutdown:
                    // name the real cause. No retry — the job already
                    // consumed deadline + grace once.
                    Some(JobState::Failed(format!(
                        "job exceeded its deadline plus grace and was \
                         cancelled by the watchdog ({message})"
                    )))
                } else {
                    Some(JobState::Failed(message))
                }
            }
            Err(_) => {
                if attempts <= self.supervision.max_retries {
                    None // retry below
                } else {
                    Some(JobState::Failed("verification panicked".to_string()))
                }
            }
        };
        let mut inner = self.inner.lock().expect("queue lock");
        inner.running.remove(&id);
        match terminal {
            Some(state) => {
                match &state {
                    JobState::Done(_) => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        self.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                slot.set(state.clone());
                drop(inner);
                if let Some(hook) = &self.hooks.on_terminal {
                    hook(id, &state);
                }
                // Backstop: a job that panicked past its own trace finish
                // leaves its ring buffer behind — release it (idempotent;
                // a normally-finished trace was already drained).
                if let Some(ctx) = meta.trace {
                    raven_obs::discard_trace(ctx);
                }
                let inner = self.inner.lock().expect("queue lock");
                // Wake drain waiters (and fellow workers, harmlessly).
                self.cv.notify_all();
                drop(inner);
            }
            None => {
                // Exponential backoff: 100ms, 200ms, 400ms, ... capped at
                // a few seconds so drains stay bounded.
                let backoff =
                    Duration::from_millis(100u64.saturating_mul(1 << (attempts - 1).min(5)));
                self.retried.fetch_add(1, Ordering::Relaxed);
                crate::metrics::JOB_RETRIES.inc();
                slot.set(JobState::Queued);
                // Bypass the capacity check: the job was already admitted.
                inner.queue.push_back(Pending {
                    id,
                    job,
                    slot,
                    meta,
                    attempts,
                    not_before: Some(Instant::now() + backoff),
                    submitted_at: raven_obs::enabled().then(Instant::now),
                });
                crate::metrics::QUEUE_DEPTH.set(inner.queue.len() as i64);
                self.cv.notify_all();
                drop(inner);
            }
        }
    }

    /// Watchdog: kills jobs wedged past `deadline + grace` (through their
    /// per-job cancel flag) and respawns worker threads that died. Exits
    /// when the queue has shut down and drained.
    fn watchdog_loop(self: Arc<Self>) {
        loop {
            {
                let inner = self.inner.lock().expect("queue lock");
                if inner.shutdown && inner.queue.is_empty() && inner.running.is_empty() {
                    return;
                }
                let now = Instant::now();
                for running in inner.running.values() {
                    let (Some(deadline), Some(cancel)) =
                        (running.meta.deadline, running.meta.cancel.as_ref())
                    else {
                        continue;
                    };
                    let overdue = now.saturating_duration_since(running.started)
                        > deadline + self.supervision.grace;
                    if overdue && !running.killed.swap(true, Ordering::SeqCst) {
                        cancel.store(true, Ordering::SeqCst);
                        self.watchdog_kills.fetch_add(1, Ordering::Relaxed);
                        crate::metrics::WATCHDOG_KILLS.inc();
                    }
                }
                if !inner.shutdown {
                    let alive = self.workers_alive.load(Ordering::SeqCst);
                    let target = self.workers_target.load(Ordering::SeqCst);
                    for i in alive..target {
                        drop(self.spawn_worker(i));
                        crate::metrics::WORKER_RESTARTS.inc();
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stops admission and blocks until every accepted job has finished
    /// (the workers then exit on their own).
    pub fn shutdown_and_drain(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.shutdown = true;
        self.cv.notify_all();
        while !inner.queue.is_empty() || !inner.running.is_empty() {
            // Timed wait: backoff-delayed retries reach runnability by
            // clock, not by notification.
            let (next, _) = self
                .cv
                .wait_timeout(inner, Duration::from_millis(50))
                .expect("drain wait");
            inner = next;
        }
    }

    /// Live counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("queue lock");
        QueueStats {
            queued: inner.queue.len(),
            running: inner.running.len(),
            capacity: self.capacity,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            watchdog_kills: self.watchdog_kills.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_job(n: f64) -> JobFn {
        Box::new(move || Ok(Json::Num(n)))
    }

    #[test]
    fn jobs_complete_and_counters_advance() {
        let queue = JobQueue::new(8);
        let workers = queue.spawn_workers(2);
        let slot = queue.submit(1, JobMeta::default(), ok_job(7.0)).unwrap();
        let state = slot.wait_terminal(Duration::from_secs(5)).unwrap();
        assert_eq!(state, JobState::Done(Json::Num(7.0)));
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        let stats = queue.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!((stats.queued, stats.running), (0, 0));
    }

    #[test]
    fn full_queue_rejects_with_429_semantics() {
        // No workers: nothing drains, so capacity is exhausted by
        // submission alone — deterministic.
        let queue = JobQueue::new(2);
        queue.submit(1, JobMeta::default(), ok_job(1.0)).unwrap();
        queue.submit(2, JobMeta::default(), ok_job(2.0)).unwrap();
        assert_eq!(
            queue
                .submit(3, JobMeta::default(), ok_job(3.0))
                .unwrap_err(),
            QueueFull
        );
        assert_eq!(queue.stats().rejected, 1);
        // Drain by spawning a worker afterwards.
        let workers = queue.spawn_workers(1);
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(queue.stats().completed, 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_returning() {
        let queue = JobQueue::new(16);
        let workers = queue.spawn_workers(1);
        let slots: Vec<_> = (0..5)
            .map(|i| {
                queue
                    .submit(
                        i,
                        JobMeta::default(),
                        Box::new(move || {
                            std::thread::sleep(Duration::from_millis(20));
                            Ok(Json::Num(i as f64))
                        }) as JobFn,
                    )
                    .unwrap()
            })
            .collect();
        queue.shutdown_and_drain();
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.state(), JobState::Done(Json::Num(i as f64)), "job {i}");
        }
        assert!(
            queue.submit(99, JobMeta::default(), ok_job(0.0)).is_err(),
            "no admission after shutdown"
        );
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn failed_and_panicking_jobs_are_contained() {
        let queue = JobQueue::new(8);
        let workers = queue.spawn_workers(1);
        let bad = queue
            .submit(
                1,
                JobMeta::default(),
                Box::new(|| Err("nope".to_string())) as JobFn,
            )
            .unwrap();
        let panicky = queue
            .submit(
                2,
                JobMeta::default(),
                Box::new(|| -> Result<Json, String> { panic!("boom") }) as JobFn,
            )
            .unwrap();
        let good = queue.submit(3, JobMeta::default(), ok_job(1.0)).unwrap();
        assert_eq!(
            bad.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Failed("nope".to_string())
        );
        assert!(matches!(
            panicky.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Failed(_)
        ));
        assert!(matches!(
            good.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Done(_)
        ));
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(queue.stats().failed, 2);
    }

    #[test]
    fn wait_terminal_times_out_on_unserviced_queue() {
        let queue = JobQueue::new(4);
        let slot = queue.submit(1, JobMeta::default(), ok_job(0.0)).unwrap();
        assert!(slot.wait_terminal(Duration::from_millis(30)).is_none());
        assert_eq!(slot.state().status(), "queued");
    }

    #[test]
    fn panicked_jobs_retry_with_backoff_until_success() {
        use std::sync::atomic::AtomicU32;
        let queue = JobQueue::with_options(
            8,
            Supervision {
                grace: Duration::from_secs(2),
                max_retries: 2,
            },
            QueueHooks::default(),
        );
        let workers = queue.spawn_workers(1);
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        let job: JobFn = Box::new(move || {
            // First two attempts panic; the third succeeds.
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            Ok(Json::Num(42.0))
        });
        let slot = queue.submit(1, JobMeta::default(), job).unwrap();
        let state = slot.wait_terminal(Duration::from_secs(10)).unwrap();
        assert_eq!(state, JobState::Done(Json::Num(42.0)));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        let stats = queue.stats();
        assert_eq!(stats.retried, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn retries_exhaust_into_failure() {
        let queue = JobQueue::with_options(
            8,
            Supervision {
                grace: Duration::from_secs(2),
                max_retries: 1,
            },
            QueueHooks::default(),
        );
        let workers = queue.spawn_workers(1);
        let job: JobFn = Box::new(|| panic!("always"));
        let slot = queue.submit(1, JobMeta::default(), job).unwrap();
        let state = slot.wait_terminal(Duration::from_secs(10)).unwrap();
        assert!(matches!(state, JobState::Failed(_)), "{state:?}");
        let stats = queue.stats();
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.failed, 1);
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn watchdog_kills_jobs_stuck_past_deadline_plus_grace() {
        let queue = JobQueue::with_options(
            8,
            Supervision {
                grace: Duration::from_millis(100),
                max_retries: 0,
            },
            QueueHooks::default(),
        );
        let workers = queue.spawn_workers(1);
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = cancel.clone();
        // A "wedged" job: ignores its deadline, polls only its cancel flag.
        let job: JobFn = Box::new(move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            while !flag.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Ok(Json::Num(0.0)); // test failed: never killed
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err("cancelled".to_string())
        });
        let meta = JobMeta {
            deadline: Some(Duration::from_millis(100)),
            cancel: Some(cancel),
            trace: None,
        };
        let slot = queue.submit(1, meta, job).unwrap();
        let state = slot.wait_terminal(Duration::from_secs(10)).unwrap();
        match state {
            JobState::Failed(message) => {
                assert!(message.contains("watchdog"), "names the killer: {message}");
            }
            other => panic!("expected watchdog failure, got {other:?}"),
        }
        assert_eq!(queue.stats().watchdog_kills, 1);
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn started_and_terminal_hooks_fire_per_attempt() {
        use std::sync::atomic::AtomicU32;
        let starts = Arc::new(AtomicU32::new(0));
        let terminals = Arc::new(AtomicU32::new(0));
        let (s, t) = (starts.clone(), terminals.clone());
        let queue = JobQueue::with_options(
            8,
            Supervision {
                grace: Duration::from_secs(2),
                max_retries: 1,
            },
            QueueHooks {
                on_started: Some(Box::new(move |_| {
                    s.fetch_add(1, Ordering::SeqCst);
                })),
                on_terminal: Some(Box::new(move |_, state| {
                    assert!(state.is_terminal());
                    t.fetch_add(1, Ordering::SeqCst);
                })),
            },
        );
        let workers = queue.spawn_workers(1);
        let attempts = Arc::new(AtomicU32::new(0));
        let seen = attempts.clone();
        let job: JobFn = Box::new(move || {
            if seen.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            Ok(Json::Num(1.0))
        });
        let slot = queue.submit(1, JobMeta::default(), job).unwrap();
        slot.wait_terminal(Duration::from_secs(10)).unwrap();
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(starts.load(Ordering::SeqCst), 2, "one start per attempt");
        assert_eq!(terminals.load(Ordering::SeqCst), 1, "one terminal total");
    }

    #[test]
    fn quarantined_is_terminal_and_reports_its_status() {
        let slot = JobSlot::preset(JobState::Quarantined);
        assert_eq!(slot.state().status(), "quarantined");
        assert_eq!(
            slot.wait_terminal(Duration::from_millis(10)),
            Some(JobState::Quarantined)
        );
    }
}
