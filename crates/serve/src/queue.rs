//! Bounded job queue and worker pool.
//!
//! Every verification — synchronous endpoint or async job — goes through
//! one bounded queue drained by a fixed pool of worker threads, giving the
//! server its two load-shedding properties:
//!
//! * **Backpressure**: `submit` fails immediately when the queue is full;
//!   the API layer turns that into HTTP 429 instead of letting latency
//!   grow without bound.
//! * **Graceful drain**: shutdown stops *admission* but lets workers
//!   finish every job already accepted (running and queued) before
//!   joining — an accepted job is a promise.
//!
//! Worker-count resolution reuses `raven::par::resolve_threads` (0 = all
//! cores), the same convention as the in-verifier parallel layer.

use raven_json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The work a job performs: produce a response object or an error string.
pub type JobFn = Box<dyn FnOnce() -> Result<Json, String> + Send>;

/// Observable lifecycle of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully, response attached.
    Done(Json),
    /// Finished with an error.
    Failed(String),
}

impl JobState {
    /// Short status string used in API responses.
    pub fn status(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// Shared slot a submitter can wait on.
#[derive(Debug)]
pub struct JobSlot {
    state: Mutex<JobState>,
    cv: Condvar,
}

impl JobSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(JobState::Queued),
            cv: Condvar::new(),
        })
    }

    fn set(&self, state: JobState) {
        *self.state.lock().expect("job slot lock") = state;
        self.cv.notify_all();
    }

    /// Snapshot of the current state.
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job slot lock").clone()
    }

    /// Blocks until the job reaches a terminal state or `timeout` elapses;
    /// returns `None` on timeout.
    pub fn wait_terminal(&self, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("job slot lock");
        while !state.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (next, wait) = self.cv.wait_timeout(state, left).expect("job slot wait");
            state = next;
            if wait.timed_out() && !state.is_terminal() {
                return None;
            }
        }
        Some(state.clone())
    }
}

/// One accepted-but-not-yet-running job.
struct Pending {
    job: JobFn,
    slot: Arc<JobSlot>,
    /// Submission time, recorded only while telemetry is enabled (feeds
    /// the queue-wait histogram when a worker picks the job up).
    submitted_at: Option<Instant>,
}

struct QueueInner {
    queue: VecDeque<Pending>,
    running: usize,
    shutdown: bool,
}

/// Counter snapshot for `/v1/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Queue capacity (bound on `queued`).
    pub capacity: usize,
    /// Total accepted submissions.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
}

/// The bounded queue; workers are attached by [`JobQueue::spawn_workers`].
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
}

/// `submit` failure: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl JobQueue {
    /// Creates a queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Submits a job, returning its wait slot.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue holds `capacity` waiting jobs or the
    /// queue is shutting down (no new promises during drain).
    pub fn submit(&self, _id: u64, job: JobFn) -> Result<Arc<JobSlot>, QueueFull> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.shutdown || inner.queue.len() >= self.capacity {
            drop(inner);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            crate::metrics::QUEUE_REJECTED.inc();
            return Err(QueueFull);
        }
        let slot = JobSlot::new();
        inner.queue.push_back(Pending {
            job,
            slot: slot.clone(),
            submitted_at: raven_obs::enabled().then(Instant::now),
        });
        crate::metrics::QUEUE_DEPTH.set(inner.queue.len() as i64);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        crate::metrics::QUEUE_SUBMITTED.inc();
        drop(inner);
        self.cv.notify_one();
        Ok(slot)
    }

    /// Spawns `workers` threads draining the queue until shutdown.
    pub fn spawn_workers(self: &Arc<Self>, workers: usize) -> Vec<std::thread::JoinHandle<()>> {
        let workers = raven::par::resolve_threads(workers);
        (0..workers)
            .map(|i| {
                let queue = self.clone();
                std::thread::Builder::new()
                    .name(format!("raven-serve-worker-{i}"))
                    .spawn(move || queue.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            let mut inner = self.inner.lock().expect("queue lock");
            loop {
                if let Some(pending) = inner.queue.pop_front() {
                    inner.running += 1;
                    crate::metrics::QUEUE_DEPTH.set(inner.queue.len() as i64);
                    crate::metrics::WORKERS_BUSY.add(1);
                    drop(inner);
                    let Pending {
                        job,
                        slot,
                        submitted_at,
                    } = pending;
                    if let Some(t) = submitted_at {
                        crate::metrics::WAIT_SECONDS.observe(t.elapsed().as_secs_f64());
                    }
                    let service_timer = raven_obs::Timer::start(&crate::metrics::SERVICE_SECONDS);
                    slot.set(JobState::Running);
                    // A panicking job must not kill the worker: catch it and
                    // record a failure (the job closure is transient state).
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    drop(service_timer);
                    crate::metrics::WORKERS_BUSY.sub(1);
                    match outcome {
                        Ok(Ok(response)) => {
                            self.completed.fetch_add(1, Ordering::Relaxed);
                            slot.set(JobState::Done(response));
                        }
                        Ok(Err(message)) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            slot.set(JobState::Failed(message));
                        }
                        Err(_) => {
                            self.failed.fetch_add(1, Ordering::Relaxed);
                            slot.set(JobState::Failed("verification panicked".to_string()));
                        }
                    }
                    let mut inner = self.inner.lock().expect("queue lock");
                    inner.running -= 1;
                    // Wake drain waiters (and fellow workers, harmlessly).
                    self.cv.notify_all();
                    drop(inner);
                    break; // re-enter the outer loop with a fresh lock
                }
                if inner.shutdown {
                    return;
                }
                inner = self.cv.wait(inner).expect("queue wait");
            }
        }
    }

    /// Stops admission and blocks until every accepted job has finished
    /// (the workers then exit on their own).
    pub fn shutdown_and_drain(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.shutdown = true;
        self.cv.notify_all();
        while !inner.queue.is_empty() || inner.running > 0 {
            inner = self.cv.wait(inner).expect("drain wait");
        }
    }

    /// Live counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("queue lock");
        QueueStats {
            queued: inner.queue.len(),
            running: inner.running,
            capacity: self.capacity,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_job(n: f64) -> JobFn {
        Box::new(move || Ok(Json::Num(n)))
    }

    #[test]
    fn jobs_complete_and_counters_advance() {
        let queue = JobQueue::new(8);
        let workers = queue.spawn_workers(2);
        let slot = queue.submit(1, ok_job(7.0)).unwrap();
        let state = slot.wait_terminal(Duration::from_secs(5)).unwrap();
        assert_eq!(state, JobState::Done(Json::Num(7.0)));
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        let stats = queue.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!((stats.queued, stats.running), (0, 0));
    }

    #[test]
    fn full_queue_rejects_with_429_semantics() {
        // No workers: nothing drains, so capacity is exhausted by
        // submission alone — deterministic.
        let queue = JobQueue::new(2);
        queue.submit(1, ok_job(1.0)).unwrap();
        queue.submit(2, ok_job(2.0)).unwrap();
        assert_eq!(queue.submit(3, ok_job(3.0)).unwrap_err(), QueueFull);
        assert_eq!(queue.stats().rejected, 1);
        // Drain by spawning a worker afterwards.
        let workers = queue.spawn_workers(1);
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(queue.stats().completed, 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_returning() {
        let queue = JobQueue::new(16);
        let workers = queue.spawn_workers(1);
        let slots: Vec<_> = (0..5)
            .map(|i| {
                queue
                    .submit(
                        i,
                        Box::new(move || {
                            std::thread::sleep(Duration::from_millis(20));
                            Ok(Json::Num(i as f64))
                        }) as JobFn,
                    )
                    .unwrap()
            })
            .collect();
        queue.shutdown_and_drain();
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.state(), JobState::Done(Json::Num(i as f64)), "job {i}");
        }
        assert!(
            queue.submit(99, ok_job(0.0)).is_err(),
            "no admission after shutdown"
        );
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn failed_and_panicking_jobs_are_contained() {
        let queue = JobQueue::new(8);
        let workers = queue.spawn_workers(1);
        let bad = queue
            .submit(1, Box::new(|| Err("nope".to_string())) as JobFn)
            .unwrap();
        let panicky = queue
            .submit(
                2,
                Box::new(|| -> Result<Json, String> { panic!("boom") }) as JobFn,
            )
            .unwrap();
        let good = queue.submit(3, ok_job(1.0)).unwrap();
        assert_eq!(
            bad.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Failed("nope".to_string())
        );
        assert!(matches!(
            panicky.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Failed(_)
        ));
        assert!(matches!(
            good.wait_terminal(Duration::from_secs(5)).unwrap(),
            JobState::Done(_)
        ));
        queue.shutdown_and_drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(queue.stats().failed, 2);
    }

    #[test]
    fn wait_terminal_times_out_on_unserviced_queue() {
        let queue = JobQueue::new(4);
        let slot = queue.submit(1, ok_job(0.0)).unwrap();
        assert!(slot.wait_terminal(Duration::from_millis(30)).is_none());
        assert_eq!(slot.state().status(), "queued");
    }
}
