//! Per-request trace lifecycle for the service layer: attribution
//! snapshots, the tail-sampled trace store behind `/v1/traces`, and the
//! JSONL / Chrome trace-event renderers.
//!
//! The flow per traced job: the API mints a [`raven_obs::TraceCtx`] at
//! admission (honoring an incoming `traceparent` header) and hangs it off
//! the job's `JobMeta`; the queue worker installs it on its thread for the
//! job's duration; [`JobTrace`] — opened inside the job closure — snapshots
//! the solver counters at start, drains the trace's ring buffer at end,
//! synthesizes the request root span, asks the [`raven_obs::TailSampler`]
//! whether to keep the trace, and injects the trace id plus the per-job
//! counter deltas into the response envelope as **non-verdict** metadata
//! (a sibling of `result`, like the certificate — verdict bytes never
//! change with tracing on, off, or unsampled).
//!
//! Attribution honesty: the counters are process-wide, so the deltas are
//! exact when one job runs at a time and an upper bound under concurrency
//! (a neighbour job's pivots can land inside this job's window). They are
//! attribution hints for scheduling/debugging, never verdict inputs.

use crate::metrics;
use raven_json::Json;
use raven_obs::{Counter, TailSampler, TraceCtx, TraceOutcome, TraceRecord};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The counters whose per-job deltas are attributed to each request.
const ATTRIBUTION: [(&str, &Counter); 5] = [
    ("simplex_pivots", &raven_lp::metrics::SIMPLEX_PIVOTS),
    ("lp_dual_pivots", &raven_lp::metrics::LP_DUAL_PIVOTS),
    ("milp_nodes", &raven_lp::metrics::MILP_NODES),
    ("lp_solves", &raven_lp::metrics::LP_SOLVES),
    ("cache_hits", &metrics::CACHE_HITS),
];

/// A start-of-job counter snapshot; `deltas` at end-of-job yields the
/// request's work attribution.
#[derive(Clone, Copy, Debug)]
struct AttributionSnapshot {
    values: [u64; ATTRIBUTION.len()],
    fleet_rejected: u64,
}

impl AttributionSnapshot {
    fn take() -> Self {
        let mut values = [0u64; ATTRIBUTION.len()];
        for (slot, (_, counter)) in values.iter_mut().zip(ATTRIBUTION.iter()) {
            *slot = counter.get();
        }
        Self {
            values,
            fleet_rejected: metrics::FLEET_REJECTED.get(),
        }
    }

    fn deltas(&self) -> Vec<(&'static str, u64)> {
        ATTRIBUTION
            .iter()
            .zip(self.values.iter())
            .map(|((name, counter), &before)| (*name, counter.get().saturating_sub(before)))
            .collect()
    }
}

/// One retained (tail-sampled) trace.
#[derive(Clone, Debug)]
pub struct StoredTrace {
    pub trace_id: u128,
    pub job_id: u64,
    pub kind: String,
    pub model: String,
    pub keep_reason: &'static str,
    pub duration_millis: f64,
    pub degraded: bool,
    pub errored: bool,
    pub attribution: Vec<(&'static str, u64)>,
    pub records: Vec<TraceRecord>,
    /// Records lost to the per-trace ring-buffer cap.
    pub dropped: u64,
}

/// Bounded store of recently retained traces, newest first on listing.
pub struct TraceStore {
    sampler: TailSampler,
    capacity: usize,
    inner: Mutex<VecDeque<StoredTrace>>,
}

impl TraceStore {
    pub fn new(sampler: TailSampler, capacity: usize) -> Self {
        Self {
            sampler,
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, trace: StoredTrace) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.len() >= self.capacity {
            inner.pop_front();
        }
        inner.push_back(trace);
    }

    /// Summaries of retained traces, newest first.
    pub fn list(&self) -> Json {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let traces: Vec<Json> = inner.iter().rev().map(summary_json).collect();
        Json::obj([
            ("count", Json::from(traces.len())),
            ("traces", Json::Arr(traces)),
        ])
    }

    /// The retained trace with this id, if any (latest wins on reuse).
    pub fn get(&self, trace_id: u128) -> Option<StoredTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.iter().rev().find(|t| t.trace_id == trace_id).cloned()
    }
}

/// Drop-in wrapper around one traced job execution. `begin` reads the
/// context the queue installed on this thread; `finish` drains, samples,
/// stores, and annotates the envelope.
pub(crate) struct JobTrace {
    ctx: TraceCtx,
    start: Instant,
    start_us: u64,
    snapshot: AttributionSnapshot,
}

impl JobTrace {
    /// Starts per-job accounting when a trace context is installed on the
    /// calling thread (i.e. the request is traced); `None` otherwise.
    pub(crate) fn begin() -> Option<Self> {
        let ctx = raven_obs::current_trace()?;
        Some(Self {
            ctx,
            start: Instant::now(),
            start_us: raven_obs::now_us(),
            snapshot: AttributionSnapshot::take(),
        })
    }

    /// Ends the trace: computes the outcome and attribution, lets the tail
    /// sampler decide retention, and injects the trace id + attribution
    /// into a successful envelope as non-verdict metadata.
    pub(crate) fn finish(
        self,
        store: &TraceStore,
        job_id: u64,
        kind: &str,
        model: &str,
        result: &mut Result<Json, String>,
    ) {
        let duration = self.start.elapsed();
        let attribution = self.snapshot.deltas();
        let degraded = result
            .as_ref()
            .ok()
            .and_then(|env| env.get("result"))
            .and_then(|r| r.get("degraded"))
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let outcome = TraceOutcome {
            duration,
            degraded,
            errored: result.is_err(),
            retried: crate::queue::current_attempt() > 1,
            certificate_rejected: metrics::FLEET_REJECTED.get() > self.snapshot.fleet_rejected,
        };
        let mut data = raven_obs::end_trace(self.ctx);
        let keep = store.sampler.keep(self.ctx.trace_id, &outcome);
        if let Some(reason) = keep {
            // Synthesize the request root: every thread-root span recorded
            // while the context was installed named it as parent.
            data.records.push(TraceRecord {
                kind: "span",
                name: "request".to_string(),
                id: self.ctx.parent_span,
                parent: 0,
                thread: "raven-serve".to_string(),
                start_us: self.start_us,
                dur_us: duration.as_micros() as u64,
                remote: false,
                fields: Vec::new(),
            });
            metrics::TRACES_SAMPLED.inc();
            store.push(StoredTrace {
                trace_id: self.ctx.trace_id,
                job_id,
                kind: kind.to_string(),
                model: model.to_string(),
                keep_reason: reason.as_str(),
                duration_millis: duration.as_secs_f64() * 1e3,
                degraded,
                errored: outcome.errored,
                attribution: attribution.clone(),
                records: data.records,
                dropped: data.dropped,
            });
        } else {
            metrics::TRACES_DROPPED.inc();
        }
        if let Ok(Json::Obj(fields)) = result {
            fields.push((
                "trace".to_string(),
                trace_meta_json(&self.ctx, keep, &attribution),
            ));
        }
    }
}

/// The `trace` envelope field: id, sampling decision, and attribution —
/// non-verdict metadata, a sibling of `result`.
fn trace_meta_json(
    ctx: &TraceCtx,
    keep: Option<raven_obs::KeepReason>,
    attribution: &[(&'static str, u64)],
) -> Json {
    let mut fields = vec![
        ("trace_id", Json::from(format!("{:032x}", ctx.trace_id))),
        ("sampled", Json::from(keep.is_some())),
    ];
    if let Some(reason) = keep {
        fields.push(("keep_reason", Json::from(reason.as_str())));
    }
    fields.push(("attribution", attribution_json(attribution)));
    Json::obj(fields)
}

fn attribution_json(attribution: &[(&'static str, u64)]) -> Json {
    Json::Obj(
        attribution
            .iter()
            .map(|(name, delta)| (name.to_string(), Json::from(*delta as f64)))
            .collect(),
    )
}

fn summary_json(trace: &StoredTrace) -> Json {
    Json::obj([
        ("trace_id", Json::from(format!("{:032x}", trace.trace_id))),
        ("job_id", Json::from(trace.job_id as f64)),
        ("kind", Json::from(trace.kind.as_str())),
        ("model", Json::from(trace.model.as_str())),
        ("keep_reason", Json::from(trace.keep_reason)),
        ("duration_millis", Json::from(trace.duration_millis)),
        ("degraded", Json::from(trace.degraded)),
        ("errored", Json::from(trace.errored)),
        ("spans", Json::from(trace.records.len())),
        ("dropped", Json::from(trace.dropped as f64)),
        ("attribution", attribution_json(&trace.attribution)),
    ])
}

/// Serializes buffered records for a fleet result frame.
pub(crate) fn records_to_json(records: &[TraceRecord]) -> Json {
    Json::Arr(records.iter().map(record_json).collect())
}

fn record_json(rec: &TraceRecord) -> Json {
    let mut fields = vec![
        ("type", Json::from(rec.kind)),
        ("name", Json::from(rec.name.as_str())),
        ("id", Json::from(rec.id as f64)),
        ("parent", Json::from(rec.parent as f64)),
        ("thread", Json::from(rec.thread.as_str())),
        ("start_us", Json::from(rec.start_us as f64)),
        ("dur_us", Json::from(rec.dur_us as f64)),
        ("remote", Json::from(rec.remote)),
    ];
    if !rec.fields.is_empty() {
        fields.push((
            "fields",
            Json::Obj(
                rec.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

/// Stitches records shipped home in a fleet result frame into the live
/// trace buffer: span ids are re-minted (a worker's id sequence collides
/// with ours), worker-root spans are re-parented under the dispatch span,
/// timestamps are rebased onto the dispatch start, and thread labels are
/// prefixed with the worker name. Returns how many records were stitched.
pub(crate) fn stitch_remote_records(
    ctx: TraceCtx,
    worker: &str,
    dispatch_span: u64,
    base_us: u64,
    spans: &Json,
) -> usize {
    let Json::Arr(items) = spans else {
        return 0;
    };
    // First pass: re-mint every remote span id.
    let mut id_map = std::collections::HashMap::new();
    for item in items {
        if let Some(id) = item.get("id").and_then(Json::as_f64) {
            let id = id as u64;
            if id != 0 {
                id_map.entry(id).or_insert_with(raven_obs::next_span_id);
            }
        }
    }
    let effective_root = if dispatch_span != 0 {
        dispatch_span
    } else {
        ctx.parent_span
    };
    let mut stitched = 0usize;
    for item in items {
        let Some(name) = item.get("name").and_then(Json::as_str) else {
            continue;
        };
        let num = |key: &str| item.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let kind = match item.get("type").and_then(Json::as_str) {
            Some("event") => "event",
            _ => "span",
        };
        let parent = num("parent");
        let fields = match item.get("fields") {
            Some(Json::Obj(kvs)) => kvs
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.as_str()
                            .map(str::to_string)
                            .unwrap_or_else(|| v.to_string()),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        raven_obs::record_into(
            ctx,
            TraceRecord {
                kind,
                name: name.to_string(),
                id: id_map.get(&num("id")).copied().unwrap_or(0),
                // A worker-root record hangs under the dispatch span; an
                // interior one follows its (re-minted) remote parent.
                parent: id_map.get(&parent).copied().unwrap_or(effective_root),
                thread: format!(
                    "{worker}/{}",
                    item.get("thread").and_then(Json::as_str).unwrap_or("?")
                ),
                start_us: base_us.saturating_add(num("start_us")),
                dur_us: num("dur_us"),
                remote: true,
                fields,
            },
        );
        stitched += 1;
    }
    if stitched > 0 {
        metrics::TRACES_REMOTE_SPANS.add(stitched as u64);
    }
    stitched
}

/// Renders a stored trace as native JSONL: one meta line, then one line
/// per record — the same record shape the process-wide sink emits, so
/// `scripts/trace2folded.rs` folds it directly.
pub(crate) fn render_jsonl(trace: &StoredTrace) -> String {
    let mut out = String::with_capacity(256 + trace.records.len() * 128);
    let meta = Json::obj([
        ("type", Json::from("trace")),
        ("trace_id", Json::from(format!("{:032x}", trace.trace_id))),
        ("job_id", Json::from(trace.job_id as f64)),
        ("kind", Json::from(trace.kind.as_str())),
        ("model", Json::from(trace.model.as_str())),
        ("keep_reason", Json::from(trace.keep_reason)),
        ("duration_millis", Json::from(trace.duration_millis)),
        ("dropped", Json::from(trace.dropped as f64)),
        ("attribution", attribution_json(&trace.attribution)),
    ]);
    out.push_str(&meta.to_string());
    out.push('\n');
    let trace_hex = format!("{:032x}", trace.trace_id);
    for rec in &trace.records {
        let mut line = record_json(rec);
        if let Json::Obj(fields) = &mut line {
            fields.push(("trace".to_string(), Json::from(trace_hex.as_str())));
        }
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Renders a stored trace in the Chrome trace-event format (load it in
/// `chrome://tracing` or Perfetto): complete (`X`) events for spans,
/// instant (`i`) events for trace events, and `thread_name` metadata per
/// distinct thread label (remote threads keep their `worker/` prefix).
pub(crate) fn render_chrome(trace: &StoredTrace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let tid = |thread: &str, labels: &mut Vec<String>| -> usize {
        match labels.iter().position(|t| t == thread) {
            Some(i) => i,
            None => {
                labels.push(thread.to_string());
                labels.len() - 1
            }
        }
    };
    for rec in &trace.records {
        let t = tid(&rec.thread, &mut labels);
        let mut fields = vec![
            ("name", Json::from(rec.name.as_str())),
            (
                "cat",
                Json::from(if rec.remote { "remote" } else { "local" }),
            ),
            ("ph", Json::from(if rec.kind == "span" { "X" } else { "i" })),
            ("ts", Json::from(rec.start_us as f64)),
            ("pid", Json::from(1.0)),
            ("tid", Json::from(t as f64)),
        ];
        if rec.kind == "span" {
            fields.push(("dur", Json::from(rec.dur_us as f64)));
        } else {
            fields.push(("s", Json::from("t")));
        }
        let mut args: Vec<(String, Json)> = vec![
            ("id".to_string(), Json::from(rec.id as f64)),
            ("parent".to_string(), Json::from(rec.parent as f64)),
        ];
        for (k, v) in &rec.fields {
            args.push((k.clone(), Json::from(v.as_str())));
        }
        fields.push(("args", Json::Obj(args)));
        events.push(Json::obj(fields));
    }
    for (i, label) in labels.iter().enumerate() {
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(1.0)),
            ("tid", Json::from(i as f64)),
            ("args", Json::obj([("name", Json::from(label.as_str()))])),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
}

/// Parses the `{trace_slow_ms, trace_sample_rate}` server knobs into the
/// sampler handed to [`TraceStore::new`].
pub fn sampler_from(slow_ms: u64, sample_rate: f64) -> TailSampler {
    TailSampler {
        slow: Duration::from_millis(slow_ms),
        sample_rate: sample_rate.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_record(name: &str, id: u64, parent: u64) -> TraceRecord {
        TraceRecord {
            kind: "span",
            name: name.to_string(),
            id,
            parent,
            thread: "t0".to_string(),
            start_us: 10,
            dur_us: 5,
            remote: false,
            fields: Vec::new(),
        }
    }

    fn stored(trace_id: u128) -> StoredTrace {
        StoredTrace {
            trace_id,
            job_id: 1,
            kind: "uap".to_string(),
            model: "demo".to_string(),
            keep_reason: "slow",
            duration_millis: 12.5,
            degraded: false,
            errored: false,
            attribution: vec![("simplex_pivots", 42)],
            records: vec![span_record("request", 7, 0), span_record("solve", 8, 7)],
            dropped: 0,
        }
    }

    #[test]
    fn store_is_bounded_and_lists_newest_first() {
        let store = TraceStore::new(sampler_from(500, 1.0), 2);
        store.push(stored(1));
        store.push(stored(2));
        store.push(stored(3));
        let listing = store.list();
        assert_eq!(listing.get("count").and_then(Json::as_f64), Some(2.0));
        let Some(Json::Arr(traces)) = listing.get("traces") else {
            panic!("traces array");
        };
        assert_eq!(
            traces[0].get("trace_id").and_then(Json::as_str),
            Some(format!("{:032x}", 3u128).as_str())
        );
        assert!(store.get(1).is_none(), "evicted");
        assert!(store.get(3).is_some());
    }

    #[test]
    fn jsonl_lines_parse_and_carry_the_trace_id() {
        let text = render_jsonl(&stored(0xabcd));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let meta = Json::parse(lines[0]).expect("meta parses");
        assert_eq!(meta.get("type").and_then(Json::as_str), Some("trace"));
        for line in &lines[1..] {
            let rec = Json::parse(line).expect("record parses");
            assert_eq!(rec.get("type").and_then(Json::as_str), Some("span"));
            assert_eq!(
                rec.get("trace").and_then(Json::as_str),
                Some(format!("{:032x}", 0xabcdu128).as_str())
            );
        }
    }

    #[test]
    fn chrome_export_has_span_and_metadata_events() {
        let chrome = render_chrome(&stored(9));
        let Some(Json::Arr(events)) = chrome.get("traceEvents") else {
            panic!("traceEvents array");
        };
        // 2 spans + 1 thread_name metadata record.
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("X") || e.get("dur").is_some()));
    }

    #[test]
    fn stitching_remints_ids_and_reparents_roots() {
        let ctx = raven_obs::begin_trace(55, 3);
        let frame = Json::Arr(vec![
            Json::obj([
                ("type", Json::from("span")),
                ("name", Json::from("solve")),
                ("id", Json::from(2.0)),
                ("parent", Json::from(1.0)),
                ("thread", Json::from("main")),
                ("start_us", Json::from(4.0)),
                ("dur_us", Json::from(6.0)),
            ]),
            Json::obj([
                ("type", Json::from("span")),
                ("name", Json::from("remote_job")),
                ("id", Json::from(1.0)),
                ("parent", Json::from(0.0)),
                ("thread", Json::from("main")),
                ("start_us", Json::from(0.0)),
                ("dur_us", Json::from(9.0)),
            ]),
        ]);
        let stitched = stitch_remote_records(ctx, "w1", 77, 1000, &frame);
        assert_eq!(stitched, 2);
        let data = raven_obs::end_trace(ctx);
        assert_eq!(data.records.len(), 2);
        let root = data
            .records
            .iter()
            .find(|r| r.name == "remote_job")
            .expect("root present");
        let child = data
            .records
            .iter()
            .find(|r| r.name == "solve")
            .expect("child present");
        assert_eq!(root.parent, 77, "worker root hangs under dispatch span");
        assert_eq!(child.parent, root.id, "interior parent remapped");
        assert_ne!(root.id, 1, "ids re-minted");
        assert!(root.remote && child.remote);
        assert_eq!(root.thread, "w1/main");
        assert_eq!(root.start_us, 1000, "timestamps rebased");
    }

    #[test]
    fn attribution_deltas_reflect_counter_movement() {
        let snap = AttributionSnapshot::take();
        metrics::CACHE_HITS.inc();
        let deltas = snap.deltas();
        let cache = deltas
            .iter()
            .find(|(name, _)| *name == "cache_hits")
            .expect("cache_hits tracked");
        assert!(cache.1 >= 1);
    }
}
