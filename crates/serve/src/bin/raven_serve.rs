//! `raven_serve` — the verification service binary.
//!
//! ```text
//! raven_serve --models-dir models [--addr 127.0.0.1:8080] [--workers 2]
//!             [--queue-capacity 32] [--cache-capacity 256]
//!             [--request-timeout-secs 60] [--threads 1]
//! ```
//!
//! The first ctrl-c / SIGTERM starts a graceful shutdown (drain accepted
//! jobs, answer their connections, exit). A second signal escalates and
//! cancels in-flight verifications at their next phase boundary.

use raven_serve::{registry::ModelRegistry, Server, ServerConfig};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const USAGE: &str = "\
usage: raven_serve --models-dir DIR [options]

options:
  --models-dir DIR            directory of *.net model files (required)
  --addr HOST:PORT            bind address (default 127.0.0.1:8080; port 0 = ephemeral)
  --workers N                 verification worker threads (default 2; 0 = all cores)
  --queue-capacity N          queued jobs before 429 (default 32)
  --cache-capacity N          cached verdicts, LRU (default 256; 0 disables)
  --request-timeout-secs N    sync request wait before 504 (default 60)
  --threads N                 per-job solver threads (default 1; 0 = all cores)
  --deadline-ms N             default per-job solve deadline in milliseconds;
                              jobs that exhaust it answer with a sound degraded
                              verdict (default unlimited; per-request
                              \"deadline_ms\" overrides)
  --max-body-bytes N          largest accepted request body (default 67108864
                              = 64 MiB; oversized bodies answer 413)
  --journal-dir DIR           write-ahead job journal directory; enables
                              crash recovery, idempotent retries, and verdict
                              replay across restarts (default: disabled)
  --journal-segment-bytes N   rotate journal segments past this size
                              (default 4 MiB)
  --journal-cap-bytes N       keep the journal directory below this size by
                              compacting/deleting old segments (default 64 MiB)
  --watchdog-grace-ms N       cancel jobs stuck this long past their deadline
                              (default 2000)
  --job-retries N             re-run a panicked job up to N times with
                              exponential backoff before failing (default 1)
  --client-timeout-ms N       per-connection client socket read/write timeout
                              (default 10000)
  --fleet-addr HOST:PORT      bind a fleet listener for raven_worker
                              processes; remote results are served only
                              after their proof certificate replays
                              in-process (default: no fleet)
  --fleet-timeout-ms N        socket-level patience per fleet dispatch, on
                              top of the job's solve deadline (default 10000)
  --fleet-shards N            split a fleet-eligible UAP job's input region
                              into N sub-boxes dispatched to distinct
                              workers; per-shard certificates replay before
                              the sound merge (default 1 = whole-job
                              dispatch)
  --shard-retries N           re-dispatch a failed shard up to N times with
                              exponential backoff before solving it locally
                              (default 2)
  --fleet-when-saturated B    1 = only dispatch remotely when the local
                              worker pool is saturated, 0 = always prefer
                              remote (default 1)
  --worker-probation-ms N     quarantine length after repeated certificate
                              rejections (default 60000)
  --worker-reject-strikes N   certificate rejections before quarantine
                              (default 2)
  --strict-certificates       recompute a job whose emitted certificate
                              fails its own spot check instead of serving
                              the unverifiable response
  --trace-slow-ms N           tail sampling always keeps traces of requests
                              at least this slow (default 500; degraded,
                              errored, retried, and certificate-rejected
                              requests are always kept)
  --trace-sample-rate R       probability in [0,1] of keeping an otherwise
                              uninteresting request's trace (default 1.0)
  --trace-capacity N          retained traces behind /v1/traces before the
                              oldest is evicted (default 256)
";

/// Signals received so far (1 = graceful, 2+ = force cancel).
static SIGNALS: AtomicUsize = AtomicUsize::new(0);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single atomic increment, nothing else.
    SIGNALS.fetch_add(1, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT and SIGTERM via the libc `signal` that
/// std already links — no external crate needed for a flag-only handler.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[derive(Debug)]
struct Args {
    models_dir: String,
    config: ServerConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut models_dir = None;
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        // The service binary retries a panicked job once by default; the
        // library default (0) keeps one-attempt semantics for embedders.
        job_retries: 1,
        ..ServerConfig::default()
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--models-dir" => models_dir = Some(value("--models-dir")?),
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = parse_num(&value("--workers")?, "--workers")?;
            }
            "--queue-capacity" => {
                config.queue_capacity = parse_num(&value("--queue-capacity")?, "--queue-capacity")?;
            }
            "--cache-capacity" => {
                config.cache_capacity = parse_num(&value("--cache-capacity")?, "--cache-capacity")?;
            }
            "--request-timeout-secs" => {
                let secs: usize =
                    parse_num(&value("--request-timeout-secs")?, "--request-timeout-secs")?;
                config.request_timeout = Duration::from_secs(secs as u64);
            }
            "--threads" => {
                config.job_threads = parse_num(&value("--threads")?, "--threads")?;
            }
            "--deadline-ms" => {
                let ms: usize = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
                config.default_deadline = Some(Duration::from_millis(ms as u64));
            }
            "--max-body-bytes" => {
                config.max_body_bytes = parse_num(&value("--max-body-bytes")?, "--max-body-bytes")?;
            }
            "--journal-dir" => {
                config.journal_dir = Some(std::path::PathBuf::from(value("--journal-dir")?));
            }
            "--journal-segment-bytes" => {
                config.journal.segment_bytes = parse_num(
                    &value("--journal-segment-bytes")?,
                    "--journal-segment-bytes",
                )? as u64;
            }
            "--journal-cap-bytes" => {
                config.journal.cap_bytes =
                    parse_num(&value("--journal-cap-bytes")?, "--journal-cap-bytes")? as u64;
            }
            "--watchdog-grace-ms" => {
                let ms: usize = parse_num(&value("--watchdog-grace-ms")?, "--watchdog-grace-ms")?;
                config.watchdog_grace = Duration::from_millis(ms as u64);
            }
            "--job-retries" => {
                config.job_retries = parse_num(&value("--job-retries")?, "--job-retries")? as u32;
            }
            "--client-timeout-ms" => {
                let ms: usize = parse_num(&value("--client-timeout-ms")?, "--client-timeout-ms")?;
                config.client_timeout = Duration::from_millis(ms as u64);
            }
            "--fleet-addr" => config.fleet_addr = Some(value("--fleet-addr")?),
            "--fleet-timeout-ms" => {
                let ms: usize = parse_num(&value("--fleet-timeout-ms")?, "--fleet-timeout-ms")?;
                config.fleet.io_timeout = Duration::from_millis(ms as u64);
            }
            "--worker-probation-ms" => {
                let ms: usize =
                    parse_num(&value("--worker-probation-ms")?, "--worker-probation-ms")?;
                config.fleet.probation = Duration::from_millis(ms as u64);
            }
            "--worker-reject-strikes" => {
                config.fleet.reject_strikes = parse_num(
                    &value("--worker-reject-strikes")?,
                    "--worker-reject-strikes",
                )? as u32;
            }
            "--fleet-shards" => {
                let n: usize = parse_num(&value("--fleet-shards")?, "--fleet-shards")?;
                if n == 0 {
                    return Err("--fleet-shards must be at least 1".to_string());
                }
                config.fleet.shards = n as u32;
            }
            "--shard-retries" => {
                config.fleet.shard_retries =
                    parse_num(&value("--shard-retries")?, "--shard-retries")? as u32;
            }
            "--fleet-when-saturated" => {
                config.fleet.when_saturated = match value("--fleet-when-saturated")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(format!(
                            "--fleet-when-saturated: expected 0 or 1, got {other}"
                        ))
                    }
                };
            }
            "--strict-certificates" => config.strict_certificates = true,
            "--trace-slow-ms" => {
                config.trace_slow_ms =
                    parse_num(&value("--trace-slow-ms")?, "--trace-slow-ms")? as u64;
            }
            "--trace-sample-rate" => {
                let raw = value("--trace-sample-rate")?;
                let rate: f64 = raw
                    .parse()
                    .map_err(|e| format!("--trace-sample-rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--trace-sample-rate must be in [0, 1]".to_string());
                }
                config.trace_sample_rate = rate;
            }
            "--trace-capacity" => {
                config.trace_capacity = parse_num(&value("--trace-capacity")?, "--trace-capacity")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let models_dir = models_dir.ok_or_else(|| "missing --models-dir".to_string())?;
    Ok(Args { models_dir, config })
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse().map_err(|e| format!("{flag}: {e}"))
}

fn main() -> ExitCode {
    // Chaos faults for spawned-process durability tests (no-op unless the
    // RAVEN_SERVE_CHAOS_* variables are set and chaos is compiled in).
    raven_serve::chaos::arm_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let registry = match ModelRegistry::load_dir(Path::new(&args.models_dir)) {
        Ok(registry) => registry,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if registry.is_empty() {
        eprintln!("error: no *.net models found in {}", args.models_dir);
        return ExitCode::FAILURE;
    }
    let server = match Server::bind(&args.config, registry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr().expect("listener has an address");
    for entry in server.state().registry.entries() {
        eprintln!("loaded model {} ({})", entry.name, entry.hash_hex());
    }
    if let Some(fleet_addr) = server.fleet_addr() {
        eprintln!("raven-serve fleet listening on {fleet_addr}");
    }
    eprintln!("raven-serve listening on http://{addr}");

    install_signal_handlers();
    let shutdown = server.shutdown_handle();
    std::thread::Builder::new()
        .name("raven-serve-signals".to_string())
        .spawn(move || {
            let mut seen = 0;
            loop {
                let now = SIGNALS.load(Ordering::SeqCst);
                if now > seen {
                    seen = now;
                    if seen == 1 {
                        eprintln!("shutdown requested: draining accepted jobs (again to force)");
                        shutdown.shutdown();
                    } else {
                        eprintln!("force cancel: stopping in-flight verifications");
                        shutdown.force_cancel();
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
        .expect("spawn signal monitor");

    server.run();
    eprintln!("raven-serve stopped");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let parsed = parse_args(&args(&[
            "--models-dir",
            "models",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-capacity",
            "2",
            "--cache-capacity",
            "10",
            "--request-timeout-secs",
            "5",
            "--threads",
            "3",
            "--deadline-ms",
            "250",
            "--max-body-bytes",
            "1048576",
            "--journal-dir",
            "/tmp/wal",
            "--journal-segment-bytes",
            "65536",
            "--journal-cap-bytes",
            "1000000",
            "--watchdog-grace-ms",
            "500",
            "--job-retries",
            "3",
            "--client-timeout-ms",
            "2500",
            "--fleet-addr",
            "127.0.0.1:0",
            "--fleet-timeout-ms",
            "3000",
            "--worker-probation-ms",
            "1234",
            "--worker-reject-strikes",
            "5",
            "--fleet-shards",
            "4",
            "--shard-retries",
            "3",
            "--fleet-when-saturated",
            "0",
            "--strict-certificates",
            "--trace-slow-ms",
            "250",
            "--trace-sample-rate",
            "0.25",
            "--trace-capacity",
            "64",
        ]))
        .unwrap();
        assert_eq!(parsed.models_dir, "models");
        assert_eq!(parsed.config.addr, "127.0.0.1:0");
        assert_eq!(parsed.config.workers, 4);
        assert_eq!(parsed.config.queue_capacity, 2);
        assert_eq!(parsed.config.cache_capacity, 10);
        assert_eq!(parsed.config.request_timeout, Duration::from_secs(5));
        assert_eq!(parsed.config.job_threads, 3);
        assert_eq!(
            parsed.config.default_deadline,
            Some(Duration::from_millis(250))
        );
        assert_eq!(parsed.config.max_body_bytes, 1048576);
        assert_eq!(
            parsed.config.journal_dir.as_deref(),
            Some(Path::new("/tmp/wal"))
        );
        assert_eq!(parsed.config.journal.segment_bytes, 65536);
        assert_eq!(parsed.config.journal.cap_bytes, 1000000);
        assert_eq!(parsed.config.watchdog_grace, Duration::from_millis(500));
        assert_eq!(parsed.config.job_retries, 3);
        assert_eq!(parsed.config.client_timeout, Duration::from_millis(2500));
        assert_eq!(parsed.config.fleet_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(parsed.config.fleet.io_timeout, Duration::from_millis(3000));
        assert_eq!(parsed.config.fleet.probation, Duration::from_millis(1234));
        assert_eq!(parsed.config.fleet.reject_strikes, 5);
        assert_eq!(parsed.config.fleet.shards, 4);
        assert_eq!(parsed.config.fleet.shard_retries, 3);
        assert!(!parsed.config.fleet.when_saturated);
        assert!(parsed.config.strict_certificates);
        assert_eq!(parsed.config.trace_slow_ms, 250);
        assert_eq!(parsed.config.trace_sample_rate, 0.25);
        assert_eq!(parsed.config.trace_capacity, 64);
    }

    #[test]
    fn trace_defaults_keep_everything() {
        let parsed = parse_args(&args(&["--models-dir", "m"])).unwrap();
        assert_eq!(parsed.config.trace_slow_ms, 500);
        assert_eq!(parsed.config.trace_sample_rate, 1.0);
        assert_eq!(parsed.config.trace_capacity, 256);
        let bad = parse_args(&args(&["--models-dir", "m", "--trace-sample-rate", "1.5"]));
        assert!(bad.unwrap_err().contains("[0, 1]"));
    }

    #[test]
    fn fleet_defaults_are_off() {
        let parsed = parse_args(&args(&["--models-dir", "m"])).unwrap();
        assert!(parsed.config.fleet_addr.is_none());
        assert!(!parsed.config.strict_certificates);
        assert_eq!(parsed.config.client_timeout, Duration::from_secs(10));
        assert_eq!(parsed.config.fleet.shards, 1);
        assert_eq!(parsed.config.fleet.shard_retries, 2);
        assert!(parsed.config.fleet.when_saturated);
        assert!(
            parse_args(&args(&["--models-dir", "m", "--fleet-shards", "0"]))
                .unwrap_err()
                .contains("--fleet-shards")
        );
        assert!(
            parse_args(&args(&["--models-dir", "m", "--fleet-when-saturated", "2"]))
                .unwrap_err()
                .contains("0 or 1")
        );
    }

    #[test]
    fn binary_defaults_enable_one_retry_and_no_journal() {
        let parsed = parse_args(&args(&["--models-dir", "m"])).unwrap();
        assert_eq!(parsed.config.job_retries, 1);
        assert!(parsed.config.journal_dir.is_none());
        assert_eq!(parsed.config.max_body_bytes, 64 * 1024 * 1024);
    }

    #[test]
    fn rejects_missing_models_dir_and_unknown_flags() {
        assert!(parse_args(&args(&[])).unwrap_err().contains("--models-dir"));
        assert!(parse_args(&args(&["--models-dir", "m", "--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
        assert!(parse_args(&args(&["--models-dir"]))
            .unwrap_err()
            .contains("needs a value"));
    }
}
