//! `raven_worker` — a fleet worker process for `raven_serve`.
//!
//! ```text
//! raven_worker --connect HOST:PORT --models-dir models
//!              [--name NAME] [--threads 1] [--reconnect-ms 1000]
//!              [--cache 64] [--once]
//! ```
//!
//! The worker connects to the server's `--fleet-addr` listener, announces
//! its loaded models by content hash, and solves whatever jobs the server
//! ships. The server treats this process as **untrusted**: every result
//! must carry a proof certificate, and the server replays it in-process
//! before serving the verdict. A worker therefore cannot influence served
//! verdict bytes — only latency.

use raven_serve::fleet::{run_worker, WorkerOptions};
use raven_serve::registry::ModelRegistry;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "\
usage: raven_worker --connect HOST:PORT --models-dir DIR [options]

options:
  --connect HOST:PORT   the server's --fleet-addr listener (required)
  --models-dir DIR      directory of *.net model files (required); hashes
                        must match the server's or no jobs are dispatched
  --name NAME           self-reported worker name, the server's reputation
                        key (default worker-<pid>)
  --threads N           per-job solver threads (default 1; 0 = all cores)
  --reconnect-ms N      delay between reconnect attempts (default 1000)
  --cache N             worker-side LRU result cache capacity, keyed like
                        the server's verdict cache with the shard index
                        folded in, so a retried shard on a warm worker
                        skips the re-solve (default 64; 0 disables)
  --once                exit after the first disconnect instead of
                        reconnecting (tests)
";

/// SIGINT/SIGTERM raise this; the worker loop exits at the next frame
/// boundary (and cancels an in-flight solve at its next phase boundary).
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[derive(Debug)]
struct Args {
    connect: String,
    models_dir: String,
    name: Option<String>,
    threads: usize,
    reconnect: Duration,
    cache: usize,
    once: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut connect = None;
    let mut models_dir = None;
    let mut name = None;
    let mut threads = 1usize;
    let mut reconnect = Duration::from_millis(1000);
    let mut cache = 64usize;
    let mut once = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag_name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag_name} needs a value"))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--models-dir" => models_dir = Some(value("--models-dir")?),
            "--name" => name = Some(value("--name")?),
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--reconnect-ms" => {
                let ms: u64 = value("--reconnect-ms")?
                    .parse()
                    .map_err(|e| format!("--reconnect-ms: {e}"))?;
                reconnect = Duration::from_millis(ms);
            }
            "--cache" => {
                cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--once" => once = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        connect: connect.ok_or_else(|| "missing --connect".to_string())?,
        models_dir: models_dir.ok_or_else(|| "missing --models-dir".to_string())?,
        name,
        threads,
        reconnect,
        cache,
        once,
    })
}

fn main() -> ExitCode {
    // Byzantine chaos modes for the fleet test suite (no-op unless the
    // RAVEN_WORKER_CHAOS variable is set and chaos is compiled in).
    raven_serve::chaos::arm_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let registry = match ModelRegistry::load_dir(Path::new(&args.models_dir)) {
        Ok(registry) => registry,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if registry.is_empty() {
        eprintln!("error: no *.net models found in {}", args.models_dir);
        return ExitCode::FAILURE;
    }
    // Like the server: a long-running process keeps its telemetry live,
    // and traced job frames need span timings to ship home. Observe-only —
    // verdict bytes are unaffected.
    raven_obs::set_enabled(true);
    install_signal_handlers();
    let opts = WorkerOptions {
        connect: args.connect,
        name: args
            .name
            .unwrap_or_else(|| format!("worker-{}", std::process::id())),
        registry,
        job_threads: args.threads,
        reconnect: args.reconnect,
        cache_capacity: args.cache,
        once: args.once,
    };
    match run_worker(&opts, &STOP) {
        Ok(()) => {
            eprintln!("raven-worker {} stopped", opts.name);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", opts.connect);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_defaults() {
        let parsed = parse_args(&args(&[
            "--connect",
            "127.0.0.1:9000",
            "--models-dir",
            "models",
            "--name",
            "w1",
            "--threads",
            "2",
            "--reconnect-ms",
            "250",
            "--cache",
            "8",
            "--once",
        ]))
        .unwrap();
        assert_eq!(parsed.connect, "127.0.0.1:9000");
        assert_eq!(parsed.models_dir, "models");
        assert_eq!(parsed.name.as_deref(), Some("w1"));
        assert_eq!(parsed.threads, 2);
        assert_eq!(parsed.reconnect, Duration::from_millis(250));
        assert_eq!(parsed.cache, 8);
        assert!(parsed.once);

        let defaults = parse_args(&args(&["--connect", "a:1", "--models-dir", "m"])).unwrap();
        assert!(defaults.name.is_none());
        assert_eq!(defaults.threads, 1);
        assert_eq!(defaults.reconnect, Duration::from_millis(1000));
        assert_eq!(defaults.cache, 64);
        assert!(!defaults.once);
    }

    #[test]
    fn rejects_missing_required_flags() {
        assert!(parse_args(&args(&["--models-dir", "m"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(parse_args(&args(&["--connect", "a:1"]))
            .unwrap_err()
            .contains("--models-dir"));
        assert!(parse_args(&args(&["--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
    }
}
