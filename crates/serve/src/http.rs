//! Minimal HTTP/1.1 on `std::net` — just enough for a JSON API.
//!
//! One request per connection (`Connection: close`), bounded header and
//! body sizes, explicit `Content-Length` framing (no chunked encoding).
//! This is deliberately not a general web server: it parses exactly the
//! subset the service emits and rejects everything else with a 4xx.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Ceiling on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with query string stripped.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A request-reading failure, carrying the HTTP status to answer with.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to respond with (400/408/413/431/505).
    pub status: u16,
    /// Human-readable description (goes into the JSON error body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns an [`HttpError`] (with the status to answer) on malformed
/// framing, oversized head/body, timeouts, or unsupported HTTP versions.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| io_error_status(&e, "reading request head"))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, "unsupported http version"));
    }
    let path = target.split('?').next().unwrap_or("").to_string();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "bad content-length"))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::new(413, "request body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| io_error_status(&e, "reading request body"))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_string(),
        path,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn io_error_status(e: &std::io::Error, context: &str) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            HttpError::new(408, format!("timeout {context}"))
        }
        _ => HttpError::new(400, format!("io error {context}: {e}")),
    }
}

/// Writes a response with the given status, content type, and extra
/// headers, then closes the exchange.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    // Best-effort: the peer may already be gone; nothing useful to do then.
    let _ = write!(stream, "{head}\r\n{body}");
    let _ = stream.flush();
}

/// Writes a JSON response with the given status and closes the exchange.
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) {
    write_response(stream, status, "application/json", &[], body);
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket into `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, 1024);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /v1/verify/uap?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/verify/uap");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_and_bad_framing() {
        let big = parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(big.status, 413);
        let bad = parse_raw(b"NOT-HTTP\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let version = parse_raw(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(version.status, 505);
        let truncated =
            parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(truncated.status, 400);
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_json_response(&mut stream, 429, r#"{"error":"queue full"}"#);
        drop(stream);
        let text = reader.join().unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with(r#"{"error":"queue full"}"#));
    }

    #[test]
    fn response_writer_supports_extra_headers_and_content_type() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(
            &mut stream,
            429,
            "text/plain; charset=utf-8",
            &[("Retry-After", "1".to_string())],
            "slow down",
        );
        drop(stream);
        let text = reader.join().unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Content-Type: text/plain; charset=utf-8"));
        assert!(head.contains("Retry-After: 1"));
        assert_eq!(body, "slow down");
    }
}
