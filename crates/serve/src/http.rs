//! Minimal HTTP/1.1 on `std::net` — just enough for a JSON API.
//!
//! One request per connection (`Connection: close`), bounded header and
//! body sizes, `Content-Length` or `Transfer-Encoding: chunked` framing.
//! The body cap is enforced twice: upfront against a declared
//! `Content-Length` (413 before reading a single body byte) and again
//! *mid-read* (a chunked or lying peer is cut off with 413 the moment the
//! decoded body crosses the cap, not after it finishes uploading).
//! This is deliberately not a general web server: it parses exactly the
//! subset the service emits and rejects everything else with a 4xx.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Ceiling on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path with query string stripped.
    pub path: String,
    /// The query string (after `?`), when the target carried one.
    pub query: Option<String>,
    /// Raw body bytes (empty when no `Content-Length` and not chunked).
    pub body: Vec<u8>,
    /// `Idempotency-Key` header value, when the client sent one.
    pub idempotency_key: Option<String>,
    /// W3C `traceparent` header value, when the client sent one (the
    /// verification endpoints continue the caller's trace instead of
    /// minting a fresh trace id).
    pub traceparent: Option<String>,
}

impl Request {
    /// A header-less request (test/recovery construction helper).
    pub fn new(method: &str, path: &str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            method: method.to_string(),
            path: path.to_string(),
            query: None,
            body: body.into(),
            idempotency_key: None,
            traceparent: None,
        }
    }
}

/// A request-reading failure, carrying the HTTP status to answer with.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to respond with (400/408/413/431/505).
    pub status: u16,
    /// Human-readable description (goes into the JSON error body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns an [`HttpError`] (with the status to answer) on malformed
/// framing, oversized head/body, timeouts, or unsupported HTTP versions.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| io_error_status(&e, "reading request head"))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "non-utf8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, "unsupported http version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut content_length = 0usize;
    let mut chunked = false;
    let mut idempotency_key = None;
    let mut traceparent = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::new(400, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if !value.trim().eq_ignore_ascii_case("chunked") {
                return Err(HttpError::new(400, "unsupported transfer-encoding"));
            }
            chunked = true;
        } else if name.eq_ignore_ascii_case("idempotency-key") {
            let key = value.trim();
            if !key.is_empty() {
                idempotency_key = Some(key.to_string());
            }
        } else if name.eq_ignore_ascii_case("traceparent") {
            let tp = value.trim();
            if !tp.is_empty() {
                traceparent = Some(tp.to_string());
            }
        }
    }
    let mut rest = buf[head_end + 4..].to_vec();
    let body = if chunked {
        read_chunked_body(stream, rest, max_body)?
    } else {
        // Declared length over the cap: reject before reading body bytes.
        if content_length > max_body {
            return Err(HttpError::new(413, "request body too large"));
        }
        while rest.len() < content_length {
            // Mid-read guard: a peer lying about Content-Length cannot
            // grow the buffer past the cap (+ one read of slack).
            if rest.len() > max_body {
                return Err(HttpError::new(413, "request body too large"));
            }
            let n = stream
                .read(&mut chunk)
                .map_err(|e| io_error_status(&e, "reading request body"))?;
            if n == 0 {
                return Err(HttpError::new(400, "connection closed mid-body"));
            }
            rest.extend_from_slice(&chunk[..n]);
        }
        rest.truncate(content_length);
        rest
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
        idempotency_key,
        traceparent,
    })
}

/// Decodes a `Transfer-Encoding: chunked` body, rejecting with 413 the
/// moment the *decoded* size crosses `max_body` — the upload is cut off
/// mid-stream, not buffered to completion first.
fn read_chunked_body(
    stream: &mut TcpStream,
    mut buf: Vec<u8>,
    max_body: usize,
) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    let mut chunk = [0u8; 4096];
    // `buf` holds bytes already read past the head; top it up on demand.
    let mut fill = |buf: &mut Vec<u8>, needed: usize| -> Result<(), HttpError> {
        while buf.len() < needed {
            let n = stream
                .read(&mut chunk)
                .map_err(|e| io_error_status(&e, "reading chunked body"))?;
            if n == 0 {
                return Err(HttpError::new(400, "connection closed mid-chunk"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        Ok(())
    };
    loop {
        // Read the size line (hex size, optional extension, CRLF).
        let line_end = loop {
            if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            if buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::new(400, "chunk size line too long"));
            }
            {
                let needed = buf.len() + 1;
                fill(&mut buf, needed)?;
            }
        };
        let size_line = std::str::from_utf8(&buf[..line_end])
            .map_err(|_| HttpError::new(400, "non-utf8 chunk size"))?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::new(400, "bad chunk size"))?;
        buf.drain(..line_end + 2);
        if size == 0 {
            // Trailer section: consume through the final blank line.
            loop {
                let end = loop {
                    if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                        break pos;
                    }
                    {
                        let needed = buf.len() + 1;
                        fill(&mut buf, needed)?;
                    }
                };
                buf.drain(..end + 2);
                if end == 0 {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > max_body {
            return Err(HttpError::new(413, "request body too large"));
        }
        fill(&mut buf, size + 2)?;
        body.extend_from_slice(&buf[..size]);
        if &buf[size..size + 2] != b"\r\n" {
            return Err(HttpError::new(400, "missing chunk terminator"));
        }
        buf.drain(..size + 2);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn io_error_status(e: &std::io::Error, context: &str) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            HttpError::new(408, format!("timeout {context}"))
        }
        _ => HttpError::new(400, format!("io error {context}: {e}")),
    }
}

/// Writes a response with the given status, content type, and extra
/// headers, then closes the exchange.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    // Best-effort: the peer may already be gone; nothing useful to do then.
    let _ = write!(stream, "{head}\r\n{body}");
    let _ = stream.flush();
}

/// Writes a JSON response with the given status and closes the exchange.
pub fn write_json_response(stream: &mut TcpStream, status: u16, body: &str) {
    write_response(stream, status, "application/json", &[], body);
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw bytes through a real socket into `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, 1024);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /v1/verify/uap?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\n{\"a\"",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/verify/uap");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_and_bad_framing() {
        let big = parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(big.status, 413);
        let bad = parse_raw(b"NOT-HTTP\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let version = parse_raw(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(version.status, 505);
        let truncated =
            parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(truncated.status, 400);
    }

    #[test]
    fn captures_idempotency_key_header() {
        let req = parse_raw(
            b"POST /v1/verify/uap HTTP/1.1\r\nIdempotency-Key: retry-42\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(req.idempotency_key.as_deref(), Some("retry-42"));
        let req = parse_raw(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.idempotency_key, None);
        let blank =
            parse_raw(b"POST /x HTTP/1.1\r\nIdempotency-Key:   \r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(blank.idempotency_key, None, "blank key ignored");
    }

    #[test]
    fn captures_traceparent_header_and_query_string() {
        let req = parse_raw(
            b"POST /v1/verify/uap HTTP/1.1\r\ntraceparent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(
            req.traceparent.as_deref(),
            Some("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
        );
        let req = parse_raw(b"GET /v1/traces/abc?format=chrome HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/traces/abc");
        assert_eq!(req.query.as_deref(), Some("format=chrome"));
        let req = parse_raw(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.traceparent, None);
        assert_eq!(req.query, None);
    }

    #[test]
    fn decodes_chunked_bodies() {
        let req = parse_raw(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"Wikipedia");
    }

    #[test]
    fn chunked_body_over_cap_is_cut_off_mid_read() {
        // parse_raw caps the body at 1024 bytes; declare a 2 KiB chunk.
        let mut raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n800\r\n".to_vec();
        raw.extend_from_slice(&[b'x'; 0x800]);
        raw.extend_from_slice(b"\r\n0\r\n\r\n");
        let err = parse_raw(&raw).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn chunked_rejects_malformed_framing() {
        let bad_size =
            parse_raw(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n").unwrap_err();
        assert_eq!(bad_size.status, 400);
        let bad_term =
            parse_raw(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabXX0\r\n\r\n")
                .unwrap_err();
        assert_eq!(bad_term.status, 400);
        let gzip = parse_raw(b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n").unwrap_err();
        assert_eq!(gzip.status, 400);
    }

    #[test]
    fn lying_content_length_is_capped_mid_read() {
        // Content-Length within the cap, but the peer streams far more:
        // the reader must stop at the declared length, and the mid-read
        // guard bounds buffering even if the declaration were honored
        // lazily. Declared 4, sent 4 — then assert the guard path exists
        // by declaring just over the cap.
        let over = parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 1025\r\n\r\n").unwrap_err();
        assert_eq!(over.status, 413);
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_json_response(&mut stream, 429, r#"{"error":"queue full"}"#);
        drop(stream);
        let text = reader.join().unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with(r#"{"error":"queue full"}"#));
    }

    #[test]
    fn response_writer_supports_extra_headers_and_content_type() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(
            &mut stream,
            429,
            "text/plain; charset=utf-8",
            &[("Retry-After", "1".to_string())],
            "slow down",
        );
        drop(stream);
        let text = reader.join().unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Content-Type: text/plain; charset=utf-8"));
        assert!(head.contains("Retry-After: 1"));
        assert_eq!(body, "slow down");
    }
}
